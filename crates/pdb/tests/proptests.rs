//! Property tests for the (S)PDB layer: mass conservation laws of the
//! measure-theoretic operations (push-forward, mixture, projection,
//! conditioning).

use proptest::prelude::*;

use gdatalog_data::{Instance, RelId, Tuple, Value};
use gdatalog_pdb::PossibleWorlds;

fn arb_instance() -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0u32..3, 0i64..5), 0..6).prop_map(|facts| {
        let mut d = Instance::new();
        for (r, v) in facts {
            d.insert(RelId(r), Tuple::from(vec![Value::int(v)]));
        }
        d
    })
}

/// Unnormalized world lists; the strategy normalizes them into a table of
/// mass ≤ 1 with the rest as deficit.
fn arb_worlds() -> impl Strategy<Value = PossibleWorlds> {
    (
        proptest::collection::vec((arb_instance(), 1u32..100), 1..6),
        0u32..50,
    )
        .prop_map(|(entries, deficit_weight)| {
            let total: u32 = entries.iter().map(|(_, w)| *w).sum::<u32>() + deficit_weight;
            let mut out = PossibleWorlds::new();
            for (d, w) in entries {
                out.add(d, f64::from(w) / f64::from(total));
            }
            out.add_nontermination(f64::from(deficit_weight) / f64::from(total));
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tables_are_mass_consistent(w in arb_worlds()) {
        prop_assert!(w.mass_is_consistent(1e-9));
        prop_assert!(w.mass() <= 1.0 + 1e-9);
    }

    /// Push-forward preserves total mass (it only merges worlds).
    #[test]
    fn map_preserves_mass(w in arb_worlds()) {
        let before = w.mass();
        let projected = w.project_relations(|r| r == RelId(0));
        prop_assert!((projected.mass() - before).abs() < 1e-9);
        prop_assert!(projected.len() <= w.len());
        // Deficit is carried through unchanged.
        prop_assert!(
            (projected.deficit().total() - w.deficit().total()).abs() < 1e-12
        );
    }

    /// Mixtures of consistent SPDBs are consistent, with mixed mass.
    #[test]
    fn mixture_mass_is_convex_combination(
        a in arb_worlds(),
        b in arb_worlds(),
        lambda in 0.0f64..1.0,
    ) {
        let expect = lambda * a.mass() + (1.0 - lambda) * b.mass();
        let mix = PossibleWorlds::mixture([(lambda, a), (1.0 - lambda, b)]);
        prop_assert!((mix.mass() - expect).abs() < 1e-9);
        prop_assert!(mix.mass_is_consistent(1e-9));
    }

    /// Conditioning renormalizes to probability 1 and preserves relative
    /// weights within the event.
    #[test]
    fn conditioning_is_a_probability(w in arb_worlds()) {
        let nonempty = |d: &Instance| !d.is_empty();
        match w.condition(nonempty) {
            None => {
                prop_assert!((w.probability(nonempty)).abs() < 1e-12);
            }
            Some(cond) => {
                prop_assert!((cond.mass() - 1.0).abs() < 1e-9);
                // Relative weights preserved: P(A | E) ∝ P(A ∩ E).
                let joint = w.probability(|d| nonempty(d) && d.relation_len(RelId(0)) > 0);
                let whole = w.probability(nonempty);
                let posterior = cond.probability(|d| d.relation_len(RelId(0)) > 0);
                prop_assert!((posterior - joint / whole).abs() < 1e-9);
            }
        }
    }

    /// Total variation is a metric: zero on identical tables, symmetric,
    /// bounded by 1 on (sub-)probability tables.
    #[test]
    fn total_variation_is_metric_like(a in arb_worlds(), b in arb_worlds()) {
        prop_assert!(a.total_variation(&a) < 1e-12);
        let d1 = a.total_variation(&b);
        let d2 = b.total_variation(&a);
        prop_assert!((d1 - d2).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d1));
    }

    /// Marginals are monotone under union-growing events and bounded by
    /// the table mass.
    #[test]
    fn marginals_bounded_by_mass(w in arb_worlds()) {
        let fact = gdatalog_data::Fact::new(RelId(0), Tuple::from(vec![Value::int(0)]));
        let m = w.marginal(&fact);
        prop_assert!(m >= 0.0 && m <= w.mass() + 1e-12);
    }
}
