//! Monte-Carlo estimates of (sub-)probabilistic databases.

use std::collections::BTreeMap;

use gdatalog_data::{Fact, Instance, RelId};

/// An empirical SPDB: a bag of sampled instances plus a count of runs that
/// ended in the error event (budget exhaustion — the `err` element of
/// §4.2 of the paper).
#[derive(Debug, Clone, Default)]
pub struct EmpiricalPdb {
    samples: Vec<Instance>,
    errors: usize,
}

impl EmpiricalPdb {
    /// An empty estimate.
    pub fn new() -> EmpiricalPdb {
        EmpiricalPdb::default()
    }

    /// Records a successfully terminated run.
    pub fn push(&mut self, instance: Instance) {
        self.samples.push(instance);
    }

    /// Records a run that hit the budget (error event).
    pub fn push_error(&mut self) {
        self.errors += 1;
    }

    /// Merges another estimate into this one.
    pub fn merge(&mut self, other: EmpiricalPdb) {
        self.samples.extend(other.samples);
        self.errors += other.errors;
    }

    /// Successfully terminated samples.
    pub fn samples(&self) -> &[Instance] {
        &self.samples
    }

    /// Number of error runs.
    pub fn errors(&self) -> usize {
        self.errors
    }

    /// Total number of runs.
    pub fn runs(&self) -> usize {
        self.samples.len() + self.errors
    }

    /// Estimated SPDB mass (fraction of runs that terminated).
    pub fn mass(&self) -> f64 {
        if self.runs() == 0 {
            0.0
        } else {
            self.samples.len() as f64 / self.runs() as f64
        }
    }

    /// Estimated probability of "the world satisfies `pred`" (errors count
    /// as not satisfying, matching sub-probability semantics).
    pub fn estimate(&self, mut pred: impl FnMut(&Instance) -> bool) -> f64 {
        if self.runs() == 0 {
            return 0.0;
        }
        self.samples.iter().filter(|d| pred(d)).count() as f64 / self.runs() as f64
    }

    /// Estimated marginal `P(f ∈ D)`.
    pub fn marginal(&self, fact: &Fact) -> f64 {
        self.estimate(|d| d.contains(fact.rel, &fact.tuple))
    }

    /// Collapses the samples into an empirical distribution over canonical
    /// instances (suitable for chi-square comparison against an exact
    /// [`crate::PossibleWorlds`] table).
    pub fn to_distribution(&self) -> BTreeMap<Instance, f64> {
        let mut out: BTreeMap<Instance, f64> = BTreeMap::new();
        let n = self.runs().max(1) as f64;
        for s in &self.samples {
            *out.entry(s.clone()).or_insert(0.0) += 1.0 / n;
        }
        out
    }

    /// Projects every sample to the relations accepted by `keep`.
    pub fn project_relations(&self, mut keep: impl FnMut(RelId) -> bool) -> EmpiricalPdb {
        EmpiricalPdb {
            samples: self
                .samples
                .iter()
                .map(|d| d.project_relations(&mut keep))
                .collect(),
            errors: self.errors,
        }
    }

    /// Extracts, from every sample, the numeric value at `col` of each fact
    /// in `rel` — the raw material for KS tests against a target
    /// distribution (e.g. Example 3.5's heights).
    pub fn column_values(&self, rel: RelId, col: usize) -> Vec<f64> {
        let mut out = Vec::new();
        for s in &self.samples {
            for t in s.relation(rel) {
                if let Some(x) = t[col].as_f64() {
                    out.push(x);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    #[test]
    fn estimates_and_mass() {
        let mut e = EmpiricalPdb::new();
        let mut d1 = Instance::new();
        d1.insert(r(0), tuple![1i64]);
        e.push(d1.clone());
        e.push(d1);
        e.push(Instance::new());
        e.push_error();
        assert_eq!(e.runs(), 4);
        assert!((e.mass() - 0.75).abs() < 1e-12);
        assert!((e.estimate(|d| !d.is_empty()) - 0.5).abs() < 1e-12);
        let f = Fact::new(r(0), tuple![1i64]);
        assert!((e.marginal(&f) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distribution_sums_to_mass() {
        let mut e = EmpiricalPdb::new();
        let mut d1 = Instance::new();
        d1.insert(r(0), tuple![1i64]);
        e.push(d1);
        e.push(Instance::new());
        e.push_error();
        let dist = e.to_distribution();
        let total: f64 = dist.values().sum();
        assert!((total - e.mass()).abs() < 1e-12);
        assert_eq!(dist.len(), 2);
    }

    #[test]
    fn column_extraction() {
        let mut e = EmpiricalPdb::new();
        let mut d = Instance::new();
        d.insert(r(0), tuple!["a", 1.5]);
        d.insert(r(0), tuple!["b", 2.5]);
        e.push(d);
        let vals = e.column_values(r(0), 1);
        assert_eq!(vals, vec![1.5, 2.5]);
    }

    #[test]
    fn merge_combines_runs() {
        let mut a = EmpiricalPdb::new();
        a.push(Instance::new());
        let mut b = EmpiricalPdb::new();
        b.push_error();
        a.merge(b);
        assert_eq!(a.runs(), 2);
        assert_eq!(a.errors(), 1);
    }
}
