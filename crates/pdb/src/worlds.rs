//! Exact sub-probabilistic databases as finite world tables.

use std::collections::BTreeMap;

use gdatalog_data::{Catalog, Fact, Instance, RelId};

/// Explicit attribution of missing probability mass (Def. 2.7: an SPDB of
/// mass `α` leaves `1 − α` for the error event).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MassDeficit {
    /// Mass of chase paths cut off by the step/depth budget (potentially
    /// non-terminating runs — the paper's `err` outcome in §4.2).
    pub nontermination: f64,
    /// Mass lost to truncating countably-infinite discrete supports during
    /// exact enumeration.
    pub truncation: f64,
}

impl MassDeficit {
    /// Total missing mass.
    pub fn total(&self) -> f64 {
        self.nontermination + self.truncation
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &MassDeficit) {
        self.nontermination += other.nontermination;
        self.truncation += other.truncation;
    }

    /// Scales both components (used when mixing SPDBs).
    pub fn scaled(&self, factor: f64) -> MassDeficit {
        MassDeficit {
            nontermination: self.nontermination * factor,
            truncation: self.truncation * factor,
        }
    }
}

/// An exact (sub-)probabilistic database over finitely many worlds: a map
/// from canonical [`Instance`]s to probabilities, plus the mass deficit.
///
/// Invariant: `Σ probabilities + deficit.total() ≈ 1` for SPDBs produced by
/// the engine; [`PossibleWorlds::mass_is_consistent`] checks it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PossibleWorlds {
    worlds: BTreeMap<Instance, f64>,
    deficit: MassDeficit,
}

impl PossibleWorlds {
    /// An empty world table (mass 0).
    pub fn new() -> PossibleWorlds {
        PossibleWorlds::default()
    }

    /// A Dirac distribution on one instance.
    pub fn dirac(instance: Instance) -> PossibleWorlds {
        let mut w = PossibleWorlds::new();
        w.add(instance, 1.0);
        w
    }

    /// Adds probability mass to a world (merging with an existing entry).
    pub fn add(&mut self, instance: Instance, p: f64) {
        if p == 0.0 {
            return;
        }
        *self.worlds.entry(instance).or_insert(0.0) += p;
    }

    /// Adds to the non-termination deficit.
    pub fn add_nontermination(&mut self, p: f64) {
        self.deficit.nontermination += p;
    }

    /// Adds to the truncation deficit.
    pub fn add_truncation(&mut self, p: f64) {
        self.deficit.truncation += p;
    }

    /// The deficit record.
    pub fn deficit(&self) -> MassDeficit {
        self.deficit
    }

    /// Multiplies every world probability and the deficit by `factor` —
    /// the change-of-scale a log-space weight stream applies when its
    /// running maximum moves (see `NormalizingSink::log_space`).
    pub fn scale(&mut self, factor: f64) {
        for p in self.worlds.values_mut() {
            *p *= factor;
        }
        self.deficit = self.deficit.scaled(factor);
    }

    /// Total probability mass of the listed worlds (the SPDB mass `α`).
    pub fn mass(&self) -> f64 {
        self.worlds.values().sum()
    }

    /// Number of distinct worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// Whether no world carries mass.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Iterates `(instance, probability)` in canonical instance order.
    pub fn iter(&self) -> impl Iterator<Item = (&Instance, f64)> {
        self.worlds.iter().map(|(d, &p)| (d, p))
    }

    /// Consumes the table, yielding owned `(instance, probability)` pairs in
    /// canonical instance order. The deficit record is discarded; read it
    /// with [`PossibleWorlds::deficit`] first if needed.
    pub fn into_worlds(self) -> impl Iterator<Item = (Instance, f64)> {
        self.worlds.into_iter()
    }

    /// Checks `mass + deficit ≈ 1` within `tol`.
    pub fn mass_is_consistent(&self, tol: f64) -> bool {
        (self.mass() + self.deficit.total() - 1.0).abs() <= tol
    }

    /// Probability of the event "the world satisfies `pred`".
    pub fn probability(&self, mut pred: impl FnMut(&Instance) -> bool) -> f64 {
        self.worlds
            .iter()
            .filter(|(d, _)| pred(d))
            .map(|(_, p)| p)
            .sum()
    }

    /// Marginal probability of a fact: `P(f ∈ D)`.
    pub fn marginal(&self, fact: &Fact) -> f64 {
        self.probability(|d| d.contains(fact.rel, &fact.tuple))
    }

    /// Maps every world through `f`, merging coinciding images. This is the
    /// push-forward along a (measurable) transformation — used for the
    /// schema projection of Remark 4.9 and for queries (Fact 2.6).
    pub fn map(&self, mut f: impl FnMut(&Instance) -> Instance) -> PossibleWorlds {
        let mut out = PossibleWorlds {
            worlds: BTreeMap::new(),
            deficit: self.deficit,
        };
        for (d, &p) in &self.worlds {
            out.add(f(d), p);
        }
        out
    }

    /// Restricts every world to the relations accepted by `keep`.
    pub fn project_relations(&self, mut keep: impl FnMut(RelId) -> bool) -> PossibleWorlds {
        self.map(|d| d.project_relations(&mut keep))
    }

    /// Mixture `Σ weight_i · table_i` of SPDBs (used for probabilistic
    /// inputs: Theorems 4.8/5.5/6.2 — the output on an input SPDB is the
    /// mixture of the outputs on its worlds).
    pub fn mixture(parts: impl IntoIterator<Item = (f64, PossibleWorlds)>) -> PossibleWorlds {
        let mut out = PossibleWorlds::new();
        for (w, part) in parts {
            for (d, p) in part.iter() {
                out.add(d.clone(), w * p);
            }
            let d = part.deficit().scaled(w);
            out.deficit.merge(&d);
        }
        out
    }

    /// Total variation distance to another world table, counting deficit
    /// differences (see `gdatalog_stats::total_variation`).
    pub fn total_variation(&self, other: &PossibleWorlds) -> f64 {
        let mut acc = 0.0;
        for (d, &p) in &self.worlds {
            let q = other.worlds.get(d).copied().unwrap_or(0.0);
            acc += (p - q).abs();
        }
        for (d, &q) in &other.worlds {
            if !self.worlds.contains_key(d) {
                acc += q;
            }
        }
        acc += (self.deficit.total() - other.deficit.total()).abs();
        acc / 2.0
    }

    /// Conditions the SPDB on a **positive-probability** event: the worlds
    /// satisfying `pred` renormalized by their total mass.
    ///
    /// This is the first step toward the full PPDL of Bárány et al. (the
    /// constraint component the paper leaves out, §7). Only events of
    /// positive probability are supported — conditioning on measure-zero
    /// events is exactly the Borel–Kolmogorov territory the paper's
    /// conclusion warns about, and is deliberately not offered.
    ///
    /// Returns `None` when the event has zero probability. The deficit is
    /// dropped: conditioning is relative to *terminated* worlds.
    pub fn condition(&self, mut pred: impl FnMut(&Instance) -> bool) -> Option<PossibleWorlds> {
        let mass: f64 = self
            .worlds
            .iter()
            .filter(|(d, _)| pred(d))
            .map(|(_, p)| p)
            .sum();
        if mass <= 0.0 {
            return None;
        }
        let mut out = PossibleWorlds::new();
        for (d, &p) in &self.worlds {
            if pred(d) {
                out.add(d.clone(), p / mass);
            }
        }
        Some(out)
    }

    /// Renders the table as sorted `(canonical text, probability)` rows —
    /// the format used in EXPERIMENTS.md.
    pub fn table(&self, catalog: &Catalog) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = self
            .worlds
            .iter()
            .map(|(d, &p)| {
                let mut text = gdatalog_data::canonical_text(d, catalog);
                if text.is_empty() {
                    text = "(empty)".to_string();
                } else {
                    text = text.trim_end().replace('\n', "  ");
                }
                (text, p)
            })
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

impl FromIterator<(Instance, f64)> for PossibleWorlds {
    fn from_iter<I: IntoIterator<Item = (Instance, f64)>>(iter: I) -> PossibleWorlds {
        let mut out = PossibleWorlds::new();
        for (d, p) in iter {
            out.add(d, p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::{tuple, RelId};

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    fn world(facts: &[(u32, i64)]) -> Instance {
        let mut d = Instance::new();
        for &(rel, v) in facts {
            d.insert(r(rel), tuple![v]);
        }
        d
    }

    #[test]
    fn add_merges_equal_worlds() {
        let mut w = PossibleWorlds::new();
        w.add(world(&[(0, 1)]), 0.25);
        w.add(world(&[(0, 1)]), 0.25);
        w.add(world(&[(0, 2)]), 0.5);
        assert_eq!(w.len(), 2);
        assert!((w.mass() - 1.0).abs() < 1e-12);
        assert!(w.mass_is_consistent(1e-12));
    }

    #[test]
    fn marginal_probability() {
        let mut w = PossibleWorlds::new();
        w.add(world(&[(0, 1)]), 0.3);
        w.add(world(&[(0, 1), (1, 5)]), 0.2);
        w.add(world(&[(1, 5)]), 0.5);
        let f = Fact::new(r(0), tuple![1i64]);
        assert!((w.marginal(&f) - 0.5).abs() < 1e-12);
        use gdatalog_data::Fact;
        let g = Fact::new(r(1), tuple![5i64]);
        assert!((w.marginal(&g) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn projection_merges_worlds() {
        let mut w = PossibleWorlds::new();
        w.add(world(&[(0, 1), (1, 7)]), 0.5);
        w.add(world(&[(0, 1), (1, 8)]), 0.5);
        let p = w.project_relations(|rel| rel == r(0));
        assert_eq!(p.len(), 1);
        assert!((p.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deficit_accounting() {
        let mut w = PossibleWorlds::new();
        w.add(world(&[(0, 1)]), 0.7);
        w.add_nontermination(0.2);
        w.add_truncation(0.1);
        assert!(w.mass_is_consistent(1e-12));
        assert!((w.deficit().total() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn mixture_weights_parts() {
        let mut a = PossibleWorlds::new();
        a.add(world(&[(0, 1)]), 1.0);
        let mut b = PossibleWorlds::new();
        b.add(world(&[(0, 2)]), 0.5);
        b.add_nontermination(0.5);
        let mix = PossibleWorlds::mixture([(0.4, a), (0.6, b)]);
        assert!((mix.probability(|d| d.contains(r(0), &tuple![1i64])) - 0.4).abs() < 1e-12);
        assert!((mix.probability(|d| d.contains(r(0), &tuple![2i64])) - 0.3).abs() < 1e-12);
        assert!((mix.deficit().nontermination - 0.3).abs() < 1e-12);
        assert!(mix.mass_is_consistent(1e-12));
    }

    #[test]
    fn total_variation_between_tables() {
        let mut a = PossibleWorlds::new();
        a.add(world(&[(0, 1)]), 0.5);
        a.add(world(&[(0, 2)]), 0.5);
        let mut b = PossibleWorlds::new();
        b.add(world(&[(0, 1)]), 0.25);
        b.add(world(&[(0, 2)]), 0.75);
        assert!((a.total_variation(&b) - 0.25).abs() < 1e-12);
        assert_eq!(a.total_variation(&a), 0.0);
    }

    #[test]
    fn conditioning_renormalizes() {
        let mut w = PossibleWorlds::new();
        w.add(world(&[(0, 1)]), 0.2);
        w.add(world(&[(0, 2)]), 0.3);
        w.add(world(&[(1, 9)]), 0.5);
        let cond = w
            .condition(|d| d.relation_len(r(0)) > 0)
            .expect("positive probability");
        assert_eq!(cond.len(), 2);
        assert!((cond.mass() - 1.0).abs() < 1e-12);
        assert!((cond.probability(|d| d.contains(r(0), &tuple![1i64])) - 0.4).abs() < 1e-12);
        // Zero-probability events are rejected (Borel–Kolmogorov guard).
        assert!(w.condition(|d| d.len() > 10).is_none());
    }

    #[test]
    fn table_rendering_sorted() {
        let mut cat = Catalog::new();
        cat.declare_named(
            "R",
            vec![gdatalog_data::ColType::Int],
            gdatalog_data::RelationKind::Intensional,
        )
        .unwrap();
        let mut w = PossibleWorlds::new();
        w.add(world(&[(0, 2)]), 0.5);
        w.add(world(&[(0, 1)]), 0.25);
        w.add(Instance::new(), 0.25);
        let t = w.table(&cat);
        assert_eq!(t[0].0, "(empty)");
        assert_eq!(t[1].0, "R(1).");
        assert_eq!(t[2].0, "R(2).");
    }
}
