//! Measurable sets, syntactically.
//!
//! The paper builds the instance σ-algebra `D` from **counting events**
//! `C(F, n)` — "the instance contains exactly `n` facts from the measurable
//! fact set `F`" (§2.3). Here measurable fact sets are represented by
//! [`FactSet`]: a relation selector with per-column constraints (equality
//! and intervals), which are exactly the generators used in the paper's
//! construction of the fact space σ-algebra. [`Event`] closes counting
//! events under boolean combinations.

use gdatalog_data::{Fact, Instance, RelId, Tuple, Value};

/// A per-column predicate: a generator of the column σ-algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum ColPred {
    /// Any value.
    Any,
    /// Exactly this value.
    Eq(Value),
    /// A numeric interval `[lo, hi)`; either bound may be infinite. Matches
    /// `Int` and `Real` values by their numeric value.
    Range {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// One of finitely many values.
    OneOf(Vec<Value>),
}

impl ColPred {
    /// Whether `v` satisfies the predicate.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            ColPred::Any => true,
            ColPred::Eq(w) => v == w,
            ColPred::Range { lo, hi } => match v.as_f64() {
                Some(x) => x >= *lo && x < *hi,
                None => false,
            },
            ColPred::OneOf(vs) => vs.contains(v),
        }
    }
}

/// A measurable set of facts: facts of `rel` whose columns satisfy the
/// predicates. `cols` shorter than the arity leaves trailing columns
/// unconstrained.
#[derive(Debug, Clone, PartialEq)]
pub struct FactSet {
    /// The relation.
    pub rel: RelId,
    /// Column predicates.
    pub cols: Vec<ColPred>,
}

impl FactSet {
    /// All facts of a relation.
    pub fn whole_relation(rel: RelId) -> FactSet {
        FactSet { rel, cols: vec![] }
    }

    /// The singleton set of one fact.
    pub fn singleton(fact: &Fact) -> FactSet {
        FactSet {
            rel: fact.rel,
            cols: fact
                .tuple
                .values()
                .iter()
                .cloned()
                .map(ColPred::Eq)
                .collect(),
        }
    }

    /// Whether a tuple of `rel` belongs to the set.
    pub fn matches(&self, rel: RelId, tuple: &Tuple) -> bool {
        rel == self.rel
            && self
                .cols
                .iter()
                .zip(tuple.values())
                .all(|(p, v)| p.matches(v))
    }

    /// Number of facts of `instance` in the set — the counting statistic of
    /// `C(F, n)`.
    pub fn count_in(&self, instance: &Instance) -> usize {
        instance
            .relation(self.rel)
            .iter()
            .filter(|t| self.matches(self.rel, t))
            .count()
    }
}

/// Comparison operator for counting events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountOp {
    /// Exactly `n` (the paper's `C(F, n)`).
    Exactly,
    /// At least `n`.
    AtLeast,
    /// At most `n`.
    AtMost,
}

/// A measurable instance event: boolean combinations of counting events.
/// These generate the instance σ-algebra `D` (§2.3).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The whole space.
    True,
    /// Counting event `|D ∩ F| op n`.
    Count {
        /// The fact set `F`.
        set: FactSet,
        /// The comparison.
        op: CountOp,
        /// The count `n`.
        n: usize,
    },
    /// Conjunction.
    And(Box<Event>, Box<Event>),
    /// Disjunction.
    Or(Box<Event>, Box<Event>),
    /// Complement.
    Not(Box<Event>),
}

impl Event {
    /// The counting event `C(F, n)` of the paper.
    pub fn count_exactly(set: FactSet, n: usize) -> Event {
        Event::Count {
            set,
            op: CountOp::Exactly,
            n,
        }
    }

    /// The event "fact `f` is present" (`|D ∩ {f}| ≥ 1`).
    pub fn contains_fact(fact: &Fact) -> Event {
        Event::Count {
            set: FactSet::singleton(fact),
            op: CountOp::AtLeast,
            n: 1,
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Event) -> Event {
        Event::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Event) -> Event {
        Event::Or(Box::new(self), Box::new(other))
    }

    /// Complement helper.
    #[allow(clippy::should_implement_trait)] // `e.not()` mirrors the event-algebra notation
    pub fn not(self) -> Event {
        Event::Not(Box::new(self))
    }

    /// Whether `instance` lies in the event.
    pub fn eval(&self, instance: &Instance) -> bool {
        match self {
            Event::True => true,
            Event::Count { set, op, n } => {
                let c = set.count_in(instance);
                match op {
                    CountOp::Exactly => c == *n,
                    CountOp::AtLeast => c >= *n,
                    CountOp::AtMost => c <= *n,
                }
            }
            Event::And(a, b) => a.eval(instance) && b.eval(instance),
            Event::Or(a, b) => a.eval(instance) || b.eval(instance),
            Event::Not(a) => !a.eval(instance),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    fn demo() -> Instance {
        let mut d = Instance::new();
        d.insert(r(0), tuple!["a", 1.0]);
        d.insert(r(0), tuple!["b", 2.5]);
        d.insert(r(0), tuple!["c", 7.0]);
        d.insert(r(1), tuple![42i64]);
        d
    }

    #[test]
    fn col_predicates() {
        assert!(ColPred::Any.matches(&Value::int(5)));
        assert!(ColPred::Eq(Value::sym("a")).matches(&Value::sym("a")));
        assert!(!ColPred::Eq(Value::sym("a")).matches(&Value::sym("b")));
        let range = ColPred::Range { lo: 1.0, hi: 3.0 };
        assert!(range.matches(&Value::real(1.0)));
        assert!(range.matches(&Value::int(2)));
        assert!(!range.matches(&Value::real(3.0)));
        assert!(!range.matches(&Value::sym("a")));
        assert!(ColPred::OneOf(vec![Value::int(1), Value::int(2)]).matches(&Value::int(2)));
    }

    #[test]
    fn fact_set_counting() {
        let d = demo();
        assert_eq!(FactSet::whole_relation(r(0)).count_in(&d), 3);
        let mid = FactSet {
            rel: r(0),
            cols: vec![ColPred::Any, ColPred::Range { lo: 0.0, hi: 3.0 }],
        };
        assert_eq!(mid.count_in(&d), 2);
        let f = Fact::new(r(1), tuple![42i64]);
        assert_eq!(FactSet::singleton(&f).count_in(&d), 1);
    }

    #[test]
    fn counting_events() {
        let d = demo();
        assert!(Event::count_exactly(FactSet::whole_relation(r(0)), 3).eval(&d));
        assert!(!Event::count_exactly(FactSet::whole_relation(r(0)), 2).eval(&d));
        let at_least_two = Event::Count {
            set: FactSet::whole_relation(r(0)),
            op: CountOp::AtLeast,
            n: 2,
        };
        assert!(at_least_two.eval(&d));
    }

    #[test]
    fn boolean_combinations() {
        let d = demo();
        let f = Fact::new(r(1), tuple![42i64]);
        let has42 = Event::contains_fact(&f);
        let empty_r0 = Event::count_exactly(FactSet::whole_relation(r(0)), 0);
        assert!(has42.clone().and(empty_r0.clone().not()).eval(&d));
        assert!(!has42.clone().and(empty_r0.clone()).eval(&d));
        assert!(has42.or(empty_r0).eval(&d));
        assert!(Event::True.eval(&d));
    }
}
