#![warn(missing_docs)]

//! # gdatalog-pdb
//!
//! (Sub-)probabilistic databases (§2.3 of the paper):
//!
//! * [`PossibleWorlds`] — an *exact* discrete SPDB: a finite table of
//!   canonical instances with probabilities, plus an explicit **mass
//!   deficit** attributing missing probability to non-termination
//!   (budget-cut chase paths — the paper's `err` element) or to support
//!   truncation (tails of countably-infinite discrete distributions).
//!   This is the operational counterpart of Def. 2.7.
//! * [`EmpiricalPdb`] — a Monte-Carlo estimate of an SPDB: a bag of sampled
//!   instances plus an error counter.
//! * [`events`] — *measurable sets, syntactically*: fact predicates built
//!   from per-column constraints (equality and intervals — exactly the
//!   generators of the fact σ-algebra used in the paper's construction),
//!   counting events `C(F, n)`, and their boolean combinations, which
//!   generate the instance σ-algebra `D`.
//! * [`query`] — relational algebra (σ, π, ⋈, ∪, −, ρ) and aggregation
//!   evaluated per world: the measurable queries of Fact 2.6, lifted from
//!   instances to (S)PDBs.
//! * [`streaming`] — run-by-run observers ([`WorldSink`]) that fold weighted
//!   possible-world streams into marginals, event probabilities, moments,
//!   and histograms in O(result) memory — the statistics of Fact 2.6
//!   evaluated natively on exact tables *and* Monte-Carlo streams.

pub mod empirical;
pub mod events;
pub mod expectation;
pub mod query;
pub mod streaming;
pub mod worlds;

pub use empirical::EmpiricalPdb;
pub use events::{ColPred, CountOp, Event, FactSet};
pub use expectation::{expected_relation_size, fact_marginals, moments_of, query_moments, Moments};
pub use query::{eval_query, eval_query_worlds, AggFun, Query};
pub use streaming::{
    scalar_aggregate, BatchObs, ColumnHistogram, DeficitKind, EmpiricalSink, EventProbabilitySink,
    HistogramSink, MarginalSink, MomentsSink, MultiplexSink, NormalizingSink, QuantileSink,
    RelationMarginalsSink, WeightStats, WorldSink, WorldTableSink,
};
pub use worlds::{MassDeficit, PossibleWorlds};
