//! Expectations of numeric queries over (sub-)probabilistic databases.
//!
//! Aggregate queries are measurable (Fact 2.6), so their answers are random
//! variables over the SPDB; this module computes their moments. On a
//! *sub*-probabilistic database the conventions are explicit: expectations
//! can be taken conditionally on termination (renormalized by the mass) or
//! with the deficit contributing a default value.

use gdatalog_data::{Fact, Instance, RelId, Tuple};

use crate::query::{eval_query, Query};
use crate::worlds::PossibleWorlds;

/// Mean and variance of a world statistic over a world table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Moments {
    /// Expected value.
    pub mean: f64,
    /// Variance.
    pub variance: f64,
    /// The probability mass the moments are taken over.
    pub mass: f64,
}

/// Moments of an arbitrary numeric world statistic `f(D)`, conditioned on
/// termination (i.e. normalized by the table's mass).
///
/// Returns `None` when the table is empty (mass 0).
pub fn moments_of(
    worlds: &PossibleWorlds,
    mut statistic: impl FnMut(&Instance) -> f64,
) -> Option<Moments> {
    let mass = worlds.mass();
    if mass <= 0.0 {
        return None;
    }
    let mut mean = 0.0;
    for (d, p) in worlds.iter() {
        mean += statistic(d) * p;
    }
    mean /= mass;
    let mut var = 0.0;
    for (d, p) in worlds.iter() {
        let x = statistic(d) - mean;
        var += x * x * p;
    }
    Some(Moments {
        mean,
        variance: var / mass,
        mass,
    })
}

/// Moments of a **scalar aggregate query** (a query whose answer in every
/// world is a single tuple whose last column is numeric — e.g.
/// `Query::aggregate` with empty `group_by`). Worlds where the answer is
/// empty contribute `empty_default`.
pub fn query_moments(
    worlds: &PossibleWorlds,
    query: &Query,
    empty_default: f64,
) -> Option<Moments> {
    moments_of(worlds, |d| {
        let ans = eval_query(query, d);
        ans.iter()
            .next()
            .and_then(|t| t.values().last())
            .and_then(gdatalog_data::Value::as_f64)
            .unwrap_or(empty_default)
    })
}

/// Expected cardinality of one relation (`E[|D ∩ R|]`), conditional on
/// termination.
pub fn expected_relation_size(worlds: &PossibleWorlds, rel: RelId) -> Option<Moments> {
    moments_of(worlds, |d| d.relation_len(rel) as f64)
}

/// All fact marginals of one relation: `P(R(t̄) ∈ D)` for every tuple that
/// occurs in some world, sorted by tuple.
pub fn fact_marginals(worlds: &PossibleWorlds, rel: RelId) -> Vec<(Fact, f64)> {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<Tuple, f64> = BTreeMap::new();
    for (d, p) in worlds.iter() {
        for t in d.relation(rel) {
            *acc.entry(t.clone()).or_insert(0.0) += p;
        }
    }
    acc.into_iter()
        .map(|(t, p)| (Fact::new(rel, t), p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::AggFun;
    use gdatalog_data::{tuple, RelId, Value};

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    /// Table: w.p. 0.5 the relation holds {1, 2}; w.p. 0.25 it holds {5};
    /// w.p. 0.25 it is empty.
    fn demo() -> PossibleWorlds {
        let mut w = PossibleWorlds::new();
        let mut d1 = Instance::new();
        d1.insert(r(0), tuple![1i64]);
        d1.insert(r(0), tuple![2i64]);
        w.add(d1, 0.5);
        let mut d2 = Instance::new();
        d2.insert(r(0), tuple![5i64]);
        w.add(d2, 0.25);
        w.add(Instance::new(), 0.25);
        w
    }

    #[test]
    fn expected_size() {
        let m = expected_relation_size(&demo(), r(0)).unwrap();
        // E = 0.5·2 + 0.25·1 + 0.25·0 = 1.25.
        assert!((m.mean - 1.25).abs() < 1e-12);
        // E[X²] = 0.5·4 + 0.25·1 = 2.25 → var = 2.25 − 1.5625 = 0.6875.
        assert!((m.variance - 0.6875).abs() < 1e-12);
        assert!((m.mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn query_moments_of_sum() {
        // Sum of column 0, empty worlds contribute 0.
        let q = Query::Rel(r(0)).aggregate(vec![], AggFun::Sum, 0);
        let m = query_moments(&demo(), &q, 0.0).unwrap();
        // E = 0.5·3 + 0.25·5 + 0.25·0 = 2.75.
        assert!((m.mean - 2.75).abs() < 1e-12);
    }

    #[test]
    fn marginals_enumerate_facts() {
        let ms = fact_marginals(&demo(), r(0));
        assert_eq!(ms.len(), 3);
        let lookup = |v: i64| {
            ms.iter()
                .find(|(f, _)| f.tuple == tuple![v])
                .map(|(_, p)| *p)
                .unwrap()
        };
        assert!((lookup(1) - 0.5).abs() < 1e-12);
        assert!((lookup(2) - 0.5).abs() < 1e-12);
        assert!((lookup(5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn subprobabilistic_conditioning_convention() {
        // Mass 0.5 table: moments are conditional on termination.
        let mut w = PossibleWorlds::new();
        let mut d = Instance::new();
        d.insert(r(0), tuple![10i64]);
        w.add(d, 0.5);
        w.add_nontermination(0.5);
        let m = expected_relation_size(&w, r(0)).unwrap();
        assert!((m.mean - 1.0).abs() < 1e-12, "conditional on termination");
        assert!((m.mass - 0.5).abs() < 1e-12);
        // Empty table → None.
        assert!(expected_relation_size(&PossibleWorlds::new(), r(0)).is_none());
        let _ = Value::int(0);
    }
}
