//! Relational algebra and aggregation, evaluated per world.
//!
//! Fact 2.6 of the paper: relational algebra and aggregate queries are
//! measurable functions on PDBs, so applying a query to an SPDB yields an
//! SPDB. Operationally: evaluate the query in every world and push the
//! probabilities forward ([`eval_query_worlds`]); on empirical PDBs,
//! evaluate per sample.

use std::collections::{BTreeMap, BTreeSet};

use gdatalog_data::{Instance, RelId, Tuple, Value};

use crate::events::ColPred;
use crate::worlds::PossibleWorlds;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFun {
    /// Row count.
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric average.
    Avg,
    /// Minimum (by value order).
    Min,
    /// Maximum (by value order).
    Max,
}

/// A relational-algebra query tree over a database instance.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// All tuples of a relation.
    Rel(RelId),
    /// Selection σ: keep tuples whose columns satisfy the predicates.
    Select {
        /// Input query.
        input: Box<Query>,
        /// `(column, predicate)` conjuncts.
        preds: Vec<(usize, ColPred)>,
    },
    /// Projection π (also handles column reordering/duplication).
    Project {
        /// Input query.
        input: Box<Query>,
        /// Output columns, as indices into the input.
        cols: Vec<usize>,
    },
    /// Natural-style equijoin ⋈ on explicit column pairs; output is the
    /// concatenation of both sides' tuples.
    Join {
        /// Left input.
        left: Box<Query>,
        /// Right input.
        right: Box<Query>,
        /// `(left column, right column)` equality constraints.
        on: Vec<(usize, usize)>,
    },
    /// Set union ∪ (inputs must have equal arity).
    Union(Box<Query>, Box<Query>),
    /// Set difference −.
    Diff(Box<Query>, Box<Query>),
    /// Grouped aggregation: one output tuple per group,
    /// `group_cols ++ [aggregate]`.
    Aggregate {
        /// Input query.
        input: Box<Query>,
        /// Group-by columns.
        group_by: Vec<usize>,
        /// The aggregate function.
        agg: AggFun,
        /// The aggregated column (ignored for `Count`).
        col: usize,
    },
}

impl Query {
    /// `σ` helper.
    pub fn select(self, preds: Vec<(usize, ColPred)>) -> Query {
        Query::Select {
            input: Box::new(self),
            preds,
        }
    }

    /// `π` helper.
    pub fn project(self, cols: Vec<usize>) -> Query {
        Query::Project {
            input: Box::new(self),
            cols,
        }
    }

    /// `⋈` helper.
    pub fn join(self, right: Query, on: Vec<(usize, usize)>) -> Query {
        Query::Join {
            left: Box::new(self),
            right: Box::new(right),
            on,
        }
    }

    /// Aggregation helper.
    pub fn aggregate(self, group_by: Vec<usize>, agg: AggFun, col: usize) -> Query {
        Query::Aggregate {
            input: Box::new(self),
            group_by,
            agg,
            col,
        }
    }
}

/// Evaluates a query in one world (set semantics).
pub fn eval_query(q: &Query, instance: &Instance) -> BTreeSet<Tuple> {
    match q {
        Query::Rel(rel) => instance.relation(*rel).clone(),
        Query::Select { input, preds } => eval_query(input, instance)
            .into_iter()
            .filter(|t| preds.iter().all(|(c, p)| p.matches(&t[*c])))
            .collect(),
        Query::Project { input, cols } => eval_query(input, instance)
            .into_iter()
            .map(|t| t.project(cols))
            .collect(),
        Query::Join { left, right, on } => {
            let l = eval_query(left, instance);
            let r = eval_query(right, instance);
            // Hash join on the key columns.
            let mut index: BTreeMap<Vec<Value>, Vec<&Tuple>> = BTreeMap::new();
            for t in &r {
                let key: Vec<Value> = on.iter().map(|&(_, rc)| t[rc].clone()).collect();
                index.entry(key).or_default().push(t);
            }
            let mut out = BTreeSet::new();
            for lt in &l {
                let key: Vec<Value> = on.iter().map(|&(lc, _)| lt[lc].clone()).collect();
                if let Some(matches) = index.get(&key) {
                    for rt in matches {
                        out.insert(lt.concat(rt));
                    }
                }
            }
            out
        }
        Query::Union(a, b) => {
            let mut out = eval_query(a, instance);
            out.extend(eval_query(b, instance));
            out
        }
        Query::Diff(a, b) => {
            let bb = eval_query(b, instance);
            eval_query(a, instance)
                .into_iter()
                .filter(|t| !bb.contains(t))
                .collect()
        }
        Query::Aggregate {
            input,
            group_by,
            agg,
            col,
        } => {
            let rows = eval_query(input, instance);
            let mut groups: BTreeMap<Tuple, Vec<&Tuple>> = BTreeMap::new();
            for t in &rows {
                groups.entry(t.project(group_by)).or_default().push(t);
            }
            groups
                .into_iter()
                .map(|(key, members)| {
                    let agg_val = match agg {
                        AggFun::Count => Value::int(members.len() as i64),
                        AggFun::Sum | AggFun::Avg => {
                            let mut s = 0.0;
                            let mut all_int = true;
                            for m in &members {
                                match &m[*col] {
                                    Value::Int(i) => s += *i as f64,
                                    Value::Real(r) => {
                                        all_int = false;
                                        s += r.get();
                                    }
                                    _ => all_int = false,
                                }
                            }
                            if *agg == AggFun::Avg {
                                Value::real(s / members.len() as f64)
                            } else if all_int {
                                Value::int(s as i64)
                            } else {
                                Value::real(s)
                            }
                        }
                        AggFun::Min => members
                            .iter()
                            .map(|m| m[*col].clone())
                            .min()
                            .expect("nonempty group"),
                        AggFun::Max => members
                            .iter()
                            .map(|m| m[*col].clone())
                            .max()
                            .expect("nonempty group"),
                    };
                    let mut vals: Vec<Value> = key.values().to_vec();
                    vals.push(agg_val);
                    Tuple::from(vals)
                })
                .collect()
        }
    }
}

/// Evaluates a query over a world table: the push-forward distribution on
/// query answers (a measurable map by Fact 2.6). The deficit mass is
/// reported separately by the input table.
pub fn eval_query_worlds(q: &Query, worlds: &PossibleWorlds) -> BTreeMap<BTreeSet<Tuple>, f64> {
    let mut out: BTreeMap<BTreeSet<Tuple>, f64> = BTreeMap::new();
    for (d, p) in worlds.iter() {
        *out.entry(eval_query(q, d)).or_insert(0.0) += p;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    fn demo() -> Instance {
        let mut d = Instance::new();
        d.insert(r(0), tuple!["a", 1i64]); // Emp(name, dept)
        d.insert(r(0), tuple!["b", 1i64]);
        d.insert(r(0), tuple!["c", 2i64]);
        d.insert(r(1), tuple![1i64, "sales"]); // Dept(id, label)
        d.insert(r(1), tuple![2i64, "hr"]);
        d
    }

    #[test]
    fn select_and_project() {
        let d = demo();
        let q = Query::Rel(r(0))
            .select(vec![(1, ColPred::Eq(Value::int(1)))])
            .project(vec![0]);
        let res = eval_query(&q, &d);
        assert_eq!(res.len(), 2);
        assert!(res.contains(&tuple!["a"]));
        assert!(res.contains(&tuple!["b"]));
    }

    #[test]
    fn join_emp_dept() {
        let d = demo();
        let q = Query::Rel(r(0)).join(Query::Rel(r(1)), vec![(1, 0)]);
        let res = eval_query(&q, &d);
        assert_eq!(res.len(), 3);
        assert!(res.contains(&tuple!["a", 1i64, 1i64, "sales"]));
        assert!(res.contains(&tuple!["c", 2i64, 2i64, "hr"]));
    }

    #[test]
    fn union_and_diff() {
        let d = demo();
        let names = Query::Rel(r(0)).project(vec![0]);
        let ab = names.clone().select(vec![(
            0,
            ColPred::OneOf(vec![Value::sym("a"), Value::sym("b")]),
        )]);
        let u = eval_query(
            &Query::Union(Box::new(ab.clone()), Box::new(names.clone())),
            &d,
        );
        assert_eq!(u.len(), 3);
        let diff = eval_query(&Query::Diff(Box::new(names), Box::new(ab)), &d);
        assert_eq!(diff.len(), 1);
        assert!(diff.contains(&tuple!["c"]));
    }

    #[test]
    fn aggregates() {
        let d = demo();
        // Count employees per department.
        let q = Query::Rel(r(0)).aggregate(vec![1], AggFun::Count, 0);
        let res = eval_query(&q, &d);
        assert!(res.contains(&tuple![1i64, 2i64]));
        assert!(res.contains(&tuple![2i64, 1i64]));
        // Min name overall (empty group-by).
        let q2 = Query::Rel(r(0)).aggregate(vec![], AggFun::Min, 0);
        let res2 = eval_query(&q2, &d);
        assert_eq!(res2.len(), 1);
        assert!(res2.contains(&tuple!["a"]));
    }

    #[test]
    fn avg_and_sum() {
        let mut d = Instance::new();
        d.insert(r(0), tuple!["x", 1.0]);
        d.insert(r(0), tuple!["y", 2.0]);
        let sum = eval_query(&Query::Rel(r(0)).aggregate(vec![], AggFun::Sum, 1), &d);
        assert!(sum.contains(&tuple![3.0]));
        let avg = eval_query(&Query::Rel(r(0)).aggregate(vec![], AggFun::Avg, 1), &d);
        assert!(avg.contains(&tuple![1.5]));
    }

    #[test]
    fn lifted_query_pushes_probabilities() {
        let mut w = PossibleWorlds::new();
        let mut d1 = Instance::new();
        d1.insert(r(0), tuple!["a", 1i64]);
        let mut d2 = Instance::new();
        d2.insert(r(0), tuple!["a", 2i64]);
        w.add(d1, 0.25);
        w.add(d2.clone(), 0.25);
        w.add(d2, 0.0); // no-op
        w.add(Instance::new(), 0.5);
        let q = Query::Rel(r(0)).project(vec![0]);
        let dist = eval_query_worlds(&q, &w);
        // Two distinct answers: {"a"} with p 0.5, {} with p 0.5.
        assert_eq!(dist.len(), 2);
        let singleton: BTreeSet<Tuple> = [tuple!["a"]].into_iter().collect();
        assert!((dist[&singleton] - 0.5).abs() < 1e-12);
    }
}
