//! Streaming observers over possible-world observations.
//!
//! Both evaluation strategies of the engine produce the same kind of
//! stream: a sequence of weighted possible worlds (exact enumeration emits
//! each world once with its probability; Monte-Carlo emits each sampled
//! world with weight `1/runs`), plus weighted *deficit* observations for
//! the mass that never becomes a world (budget-cut paths, truncated
//! supports, error runs). A [`WorldSink`] consumes such a stream and folds
//! it into a statistic **run-by-run**, so a million-run Monte-Carlo
//! marginal holds O(result) memory instead of retaining every sampled
//! instance.
//!
//! The sinks in this module are the statistics of Fact 2.6 of the paper —
//! marginals, event probabilities, moments of aggregate queries,
//! histograms, quantiles — each usable unchanged on exact world tables
//! and on Monte-Carlo streams, because both are streams of weighted
//! worlds whose weights sum to (at most) one. A [`MultiplexSink`] fans
//! one stream out to many sinks **by reference**
//! ([`WorldSink::observe_ref`]), which is how the engine answers a whole
//! query set from a single backend pass.
//!
//! A sink can be driven by hand, which is also how custom statistics are
//! tested before plugging them into an engine backend:
//!
//! ```
//! use gdatalog_data::{tuple, Fact, Instance, RelId};
//! use gdatalog_pdb::{DeficitKind, MarginalSink, WorldSink};
//!
//! let rel = RelId(0);
//! let mut sink = MarginalSink::new(Fact::new(rel, tuple![1i64]));
//! // Two weighted worlds and one budget-cut path (deficit).
//! let mut world = Instance::new();
//! world.insert(rel, tuple![1i64]);
//! sink.observe(world, 0.5);
//! sink.observe(Instance::new(), 0.25);
//! sink.observe_deficit(DeficitKind::Nontermination, 0.25);
//! // The marginal counts only worlds containing the fact.
//! assert!((sink.finish() - 0.5).abs() < 1e-12);
//! ```

use std::any::Any;
use std::collections::BTreeMap;

use gdatalog_data::{Fact, Instance, RelId, Tuple};

use crate::empirical::EmpiricalPdb;
use crate::events::Event;
use crate::expectation::Moments;
use crate::query::{eval_query, AggFun, Query};
use crate::worlds::PossibleWorlds;

/// Which kind of probability mass a deficit observation carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeficitKind {
    /// Mass of chase paths cut off by the step/depth budget (the paper's
    /// `err` outcome of §4.2); Monte-Carlo error runs report this kind.
    Nontermination,
    /// Mass lost to truncating countably-infinite discrete supports during
    /// exact enumeration.
    Truncation,
}

/// One observation of a lane batch, borrowed from the emitting backend —
/// the unit of [`WorldSink::observe_batch`]. Worlds are borrowed because
/// a batched Monte-Carlo executor may share one terminated instance
/// across the lanes of a group; weights are linear or log-space exactly
/// as in the corresponding itemwise `observe_*` method.
#[derive(Debug, Clone, Copy)]
pub enum BatchObs<'a> {
    /// A terminated world with a linear weight
    /// ([`WorldSink::observe_ref`]).
    World(&'a Instance, f64),
    /// A terminated world with a log-space weight
    /// ([`WorldSink::observe_log_ref`]).
    LogWorld(&'a Instance, f64),
    /// Deficit mass ([`WorldSink::observe_deficit`]).
    Deficit(DeficitKind, f64),
}

/// A consumer of weighted possible-world observations.
///
/// Implementations fold each observation into their statistic immediately;
/// they must not retain the observed instances (that is the whole point —
/// see the module docs). The `fork`/`join` pair supports deterministic
/// parallel folding: a backend may `fork` one empty sink per worker, fold
/// disjoint chunks of the stream into them, and `join` them back **in
/// chunk order**, so the merged result does not depend on thread timing.
pub trait WorldSink: Send {
    /// Folds one weighted world into the statistic. Exact streams pass each
    /// world once with its probability; Monte-Carlo streams pass each
    /// sampled world with weight `1/runs`.
    fn observe(&mut self, world: Instance, weight: f64);

    /// Folds one weighted world **by reference** — the fan-out path of
    /// [`MultiplexSink`], where one observed world feeds many sinks.
    /// Statistic sinks override this (they only read the instance), so a
    /// K-way fan-out costs K folds and zero clones; collectors that retain
    /// the instance keep the default, which clones.
    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        self.observe(world.clone(), weight);
    }

    /// Folds one world carrying a **log-space** weight. Conditioned
    /// backends emit log-weights (prior log-probability plus per-world
    /// log-likelihood), which stay finite where the linear product
    /// underflows (log-likelihood ≲ −745). The default exponentiates and
    /// forwards to [`WorldSink::observe`] — correct for any sink, lossy
    /// only in the underflow regime; wrap the sink in
    /// [`NormalizingSink::log_space`] to fold such streams exactly.
    fn observe_log(&mut self, world: Instance, log_weight: f64) {
        self.observe(world, log_weight.exp());
    }

    /// By-reference variant of [`WorldSink::observe_log`]. The default
    /// clones and forwards to [`WorldSink::observe_log`], so a sink that
    /// overrides only the owned log method still sees log-space weights
    /// when observations arrive by reference (the batched Monte-Carlo
    /// path delivers conditioned worlds this way); statistic sinks
    /// override it to skip the clone.
    fn observe_log_ref(&mut self, world: &Instance, log_weight: f64) {
        self.observe_log(world.clone(), log_weight);
    }

    /// Folds one lane batch of observations in order. The default is the
    /// itemwise loop — behaviorally identical to calling the matching
    /// `observe_*` method per entry, which every override must preserve
    /// bit-for-bit (the batched Monte-Carlo path relies on it). Hot
    /// statistic sinks override this so an N-lane batch costs one virtual
    /// dispatch and a monomorphic fold loop instead of N dispatches.
    fn observe_batch(&mut self, batch: &[BatchObs<'_>]) {
        for obs in batch {
            match *obs {
                BatchObs::World(world, weight) => self.observe_ref(world, weight),
                BatchObs::LogWorld(world, lw) => self.observe_log_ref(world, lw),
                BatchObs::Deficit(kind, weight) => self.observe_deficit(kind, weight),
            }
        }
    }

    /// Folds weighted deficit mass (non-termination or truncation).
    fn observe_deficit(&mut self, kind: DeficitKind, weight: f64);

    /// Multiplies every weight folded so far by `factor ∈ (0, 1]`.
    ///
    /// This is the streaming log-sum-exp contract: a log-space
    /// [`NormalizingSink`] feeds its inner sink weights relative to the
    /// running maximum log-weight, and rescales the inner accumulation
    /// whenever a new maximum arrives. Every statistic in this module is
    /// linear in its weights (or weight-scale invariant), so rescaling
    /// commutes with folding.
    ///
    /// # Panics
    /// The default panics: a sink that does not implement `rescale` cannot
    /// sit under a log-space normalizer. Sinks driven directly by a
    /// backend (no normalizer) never receive this call.
    fn rescale(&mut self, factor: f64) {
        let _ = factor;
        unimplemented!("this sink cannot consume log-space weight streams (no rescale support)");
    }

    /// Creates an empty sink of the same type for a parallel worker, or
    /// `None` if this sink only supports sequential folding (the default).
    fn fork(&self) -> Option<Box<dyn WorldSink>> {
        None
    }

    /// Merges a sink previously produced by [`WorldSink::fork`] back into
    /// this one. Backends call `join` in deterministic chunk order.
    ///
    /// # Panics
    /// The default panics; sinks that return `Some` from `fork` override it.
    fn join(&mut self, forked: Box<dyn WorldSink>) {
        let _ = forked;
        unreachable!("join called on a sink that does not fork");
    }

    /// Upcast for [`WorldSink::join`] downcasting.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Implements `fork`/`join`/`into_any` for a sink with inherent
/// `forked(&self) -> Self` and `absorb(&mut self, Self)` methods.
macro_rules! forkable {
    () => {
        fn fork(&self) -> Option<Box<dyn WorldSink>> {
            Some(Box::new(self.forked()))
        }

        fn join(&mut self, forked: Box<dyn WorldSink>) {
            let other = forked
                .into_any()
                .downcast::<Self>()
                .expect("join requires a sink forked from self");
            self.absorb(*other);
        }

        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    };
}

// ---------------------------------------------------------------------------
// Self-normalization (conditioning support).
// ---------------------------------------------------------------------------

/// Weight bookkeeping of a (possibly conditioned) observation stream,
/// held in **shifted** form: the stream's weights are accumulated as
/// `exp(log wᵢ − scale)` against a log-space offset `scale`, so the sums
/// stay representable even when every individual weight underflows the
/// linear `f64` range (log-weight ≲ −745). Linear streams use `scale = 0`,
/// in which case the fields are plain weight sums bit-for-bit.
///
/// Everything needed to self-normalize a statistic is derivable: the
/// evidence mass ([`WeightStats::total`] / [`WeightStats::log_total`]),
/// the normalizing constant of the *inner* sink's scale
/// ([`WeightStats::normalizer`]), and the classical effective sample size
/// `(Σw)² / Σw²` of importance sampling ([`WeightStats::ess`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightStats {
    /// Log-space offset of the accumulated sums: `0` on linear streams,
    /// the running maximum observed log-weight on log-space streams
    /// (`-inf` while the log-space stream is empty).
    scale: f64,
    /// `Σ exp(log wᵢ − scale)` — the plain weight sum on linear streams.
    sum: f64,
    /// `Σ exp(2·(log wᵢ − scale))` — the squared-weight sum on linear
    /// streams.
    sq_sum: f64,
    /// Number of world observations.
    pub worlds: usize,
}

impl Default for WeightStats {
    fn default() -> WeightStats {
        WeightStats {
            scale: 0.0,
            sum: 0.0,
            sq_sum: 0.0,
            worlds: 0,
        }
    }
}

impl WeightStats {
    /// Empty statistics for a log-space stream (offset starts at `-inf`
    /// and tracks the running maximum log-weight).
    pub fn log_space() -> WeightStats {
        WeightStats {
            scale: f64::NEG_INFINITY,
            ..WeightStats::default()
        }
    }

    /// Total observed world weight `Σ wᵢ` in linear space (the evidence
    /// mass: `P(evidence)` on exact streams, the self-normalizing constant
    /// `1/N·ΣLᵢ` on likelihood-weighted Monte-Carlo streams). On linear
    /// streams this is exact; on log-space streams it is `exp(log_total)`
    /// and may underflow to `0.0` — that is precisely the regime
    /// [`WeightStats::log_total`] exists for.
    pub fn total(&self) -> f64 {
        if self.scale == 0.0 {
            // Avoid `exp(0) * sum` so linear accumulation stays
            // bit-identical to the historical plain sum.
            self.sum
        } else if self.sum > 0.0 {
            self.scale.exp() * self.sum
        } else {
            0.0
        }
    }

    /// `ln Σ wᵢ`, computed without leaving log space: finite whenever any
    /// observed weight was nonzero, `-inf` otherwise.
    pub fn log_total(&self) -> f64 {
        if self.sum > 0.0 {
            self.scale + self.sum.ln()
        } else {
            f64::NEG_INFINITY
        }
    }

    /// Sum of squared weights `Σ wᵢ²` in linear space (subject to the same
    /// underflow caveat as [`WeightStats::total`]).
    pub fn sq_total(&self) -> f64 {
        if self.scale == 0.0 {
            self.sq_sum
        } else if self.sq_sum > 0.0 {
            (2.0 * self.scale).exp() * self.sq_sum
        } else {
            0.0
        }
    }

    /// The normalizing constant **in the inner sink's scale**: a
    /// [`NormalizingSink`] forwards weight `exp(log wᵢ − scale)` for each
    /// observation, so dividing the inner statistic by `normalizer()`
    /// self-normalizes it regardless of the offset. On linear streams this
    /// equals [`WeightStats::total`] exactly.
    pub fn normalizer(&self) -> f64 {
        self.sum
    }

    /// Effective sample size `(Σw)² / Σw²` — equals the world count when
    /// all weights are equal (unconditioned Monte-Carlo) and collapses
    /// toward 1 when a few runs dominate the posterior. Invariant under
    /// the log-space offset (it cancels in the ratio).
    pub fn ess(&self) -> f64 {
        if self.sq_sum > 0.0 {
            self.sum * self.sum / self.sq_sum
        } else {
            0.0
        }
    }

    /// Folds one linear weight (must only be used while `scale == 0`).
    fn add_linear(&mut self, weight: f64) {
        self.sum += weight;
        self.sq_sum += weight * weight;
        self.worlds += 1;
    }
}

/// Wraps an inner sink, forwarding every observation while accumulating
/// [`WeightStats`] — the self-normalization device for conditioned
/// evaluation: backends emit **unnormalized** posterior weights (prior ×
/// likelihood), the wrapper records their total, and the caller divides
/// the inner statistic by [`WeightStats::normalizer`].
///
/// Two modes:
/// - [`NormalizingSink::new`] — **linear**: weights pass through
///   unchanged; accumulation is bit-identical to summing them directly.
/// - [`NormalizingSink::log_space`] — **log-space streaming
///   log-sum-exp**: observations arrive via [`WorldSink::observe_log`]
///   carrying log-weights; the wrapper keeps a running maximum `m` and
///   feeds the inner sink `exp(log w − m)`, calling
///   [`WorldSink::rescale`] on it whenever a new maximum arrives. All
///   inner statistics end up at the common offset `m`, so normalizing by
///   [`WeightStats::normalizer`] yields correct posteriors even when
///   every individual weight underflows linear `f64` (log-likelihood
///   ≲ −745).
///
/// Forks iff the inner sink forks (to a fresh wrapper of the same mode),
/// preserving the backends' deterministic chunked parallelism; join
/// reconciles the two sides' offsets deterministically before merging.
#[derive(Debug)]
pub struct NormalizingSink<S> {
    inner: S,
    stats: WeightStats,
    log_mode: bool,
}

impl<S: WorldSink + 'static> NormalizingSink<S> {
    /// Wraps `inner` in linear mode.
    pub fn new(inner: S) -> NormalizingSink<S> {
        NormalizingSink {
            inner,
            stats: WeightStats::default(),
            log_mode: false,
        }
    }

    /// Wraps `inner` in log-space mode. The inner sink must support
    /// [`WorldSink::rescale`] (every statistic sink in this module does).
    pub fn log_space(inner: S) -> NormalizingSink<S> {
        NormalizingSink {
            inner,
            stats: WeightStats::log_space(),
            log_mode: true,
        }
    }

    /// The inner sink and the accumulated weight statistics.
    pub fn finish(self) -> (S, WeightStats) {
        (self.inner, self.stats)
    }

    /// The weight statistics accumulated so far (the adaptive-run driver
    /// polls this between batches without consuming the sink).
    pub fn stats(&self) -> &WeightStats {
        &self.stats
    }

    /// Shared log-space fold: returns the weight (in the post-update
    /// offset's scale) to forward to the inner sink, after rescaling the
    /// inner accumulation if the running maximum moved.
    fn fold_log(&mut self, log_weight: f64) -> f64 {
        self.stats.worlds += 1;
        if log_weight == f64::NEG_INFINITY {
            // Zero-weight world: counts as observed, contributes nothing.
            // (Subtracting the -inf offset below would produce NaN.)
            return 0.0;
        }
        if log_weight > self.stats.scale {
            // New running maximum: shift the accumulated sums (and the
            // inner sink) down to the new offset. `factor` is 0 when the
            // stream was empty (scale still -inf) — harmless, the sums
            // are 0 and the inner sink holds no weight yet.
            let factor = (self.stats.scale - log_weight).exp();
            self.stats.sum = self.stats.sum * factor + 1.0;
            self.stats.sq_sum = self.stats.sq_sum * factor * factor + 1.0;
            // Only shift the inner sink once it holds weighted worlds: at
            // scale -inf it holds none, and rescaling by exp(-inf) = 0
            // would wrongly zero any *linear* deficit mass already
            // forwarded (raw adaptive streams carry deficits at weight 1).
            if self.stats.scale.is_finite() {
                self.inner.rescale(factor);
            }
            self.stats.scale = log_weight;
            1.0
        } else {
            let w = (log_weight - self.stats.scale).exp();
            self.stats.sum += w;
            self.stats.sq_sum += w * w;
            w
        }
    }
}

impl<S: WorldSink + 'static> WorldSink for NormalizingSink<S> {
    fn observe(&mut self, world: Instance, weight: f64) {
        if self.log_mode {
            self.observe_log(world, weight.ln());
            return;
        }
        self.stats.add_linear(weight);
        self.inner.observe(world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        if self.log_mode {
            self.observe_log_ref(world, weight.ln());
            return;
        }
        self.stats.add_linear(weight);
        self.inner.observe_ref(world, weight);
    }

    fn observe_log(&mut self, world: Instance, log_weight: f64) {
        if !self.log_mode {
            self.observe(world, log_weight.exp());
            return;
        }
        let w = self.fold_log(log_weight);
        self.inner.observe(world, w);
    }

    fn observe_log_ref(&mut self, world: &Instance, log_weight: f64) {
        if !self.log_mode {
            self.observe_ref(world, log_weight.exp());
            return;
        }
        let w = self.fold_log(log_weight);
        self.inner.observe_ref(world, w);
    }

    fn observe_deficit(&mut self, kind: DeficitKind, weight: f64) {
        // Deficit mass is not part of the normalized world-weight stream
        // (conditioned backends drop deficits before the sink); forward it
        // linearly. In log mode a later offset shift rescales it along
        // with everything else — acceptable, since only unconditioned
        // streams carry deficits and those use linear weights (offset 0).
        self.inner.observe_deficit(kind, weight);
    }

    fn rescale(&mut self, factor: f64) {
        self.stats.sum *= factor;
        self.stats.sq_sum *= factor * factor;
        self.inner.rescale(factor);
    }

    fn fork(&self) -> Option<Box<dyn WorldSink>> {
        // The inner fork is an empty sink of the same concrete type (the
        // `forkable!` contract), so the wrapper forks to a fresh wrapper
        // of the same mode.
        let forked = self.inner.fork()?;
        let inner = forked
            .into_any()
            .downcast::<S>()
            .expect("fork returns the sink's own type");
        Some(Box::new(NormalizingSink {
            inner: *inner,
            stats: if self.log_mode {
                WeightStats::log_space()
            } else {
                WeightStats::default()
            },
            log_mode: self.log_mode,
        }))
    }

    fn join(&mut self, forked: Box<dyn WorldSink>) {
        let mut other = forked
            .into_any()
            .downcast::<NormalizingSink<S>>()
            .expect("join requires a sink forked from self");
        // Reconcile the two sides' offsets: rescale the lower-offset side
        // up to the larger offset before summing. Linear mode has both
        // offsets at 0, so this path degenerates to plain addition.
        let target = self.stats.scale.max(other.stats.scale);
        // A side whose offset is still -inf observed no worlds: its inner
        // sums are zero and any deficit mass it holds is linear — adopt
        // the target offset without rescaling it.
        if target > self.stats.scale && self.stats.scale.is_finite() {
            let factor = (self.stats.scale - target).exp();
            self.stats.sum *= factor;
            self.stats.sq_sum *= factor * factor;
            self.inner.rescale(factor);
        } else if target > other.stats.scale && other.stats.scale.is_finite() {
            let factor = (other.stats.scale - target).exp();
            other.stats.sum *= factor;
            other.stats.sq_sum *= factor * factor;
            other.inner.rescale(factor);
        }
        self.stats.scale = target;
        self.stats.sum += other.stats.sum;
        self.stats.sq_sum += other.stats.sq_sum;
        self.stats.worlds += other.stats.worlds;
        self.inner.join(Box::new(other.inner));
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ---------------------------------------------------------------------------
// Fan-out (single-pass multi-query support).
// ---------------------------------------------------------------------------

/// Fans one weighted-world stream out to many sinks — the single-pass
/// multi-query device: every observation is folded into each inner sink
/// **by reference** ([`WorldSink::observe_ref`]), so answering K
/// statistics costs one backend pass plus K folds, with no per-sink
/// instance cloning for statistic sinks.
///
/// Inner sinks are kept in insertion order; [`MultiplexSink::into_sinks`]
/// returns them in the same order, which is how a caller maps the folded
/// sinks back to its queries. Forks iff **every** inner sink forks;
/// forked multiplexers join their inner sinks pairwise in chunk order,
/// preserving the backends' deterministic chunked parallelism.
pub struct MultiplexSink {
    sinks: Vec<Box<dyn WorldSink>>,
}

impl MultiplexSink {
    /// A fan-out over `sinks` (insertion order is answer order).
    pub fn new(sinks: Vec<Box<dyn WorldSink>>) -> MultiplexSink {
        MultiplexSink { sinks }
    }

    /// Number of inner sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the fan-out is empty (a valid null sink).
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// The folded inner sinks, in insertion order.
    pub fn into_sinks(self) -> Vec<Box<dyn WorldSink>> {
        self.sinks
    }
}

impl WorldSink for MultiplexSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        for sink in &mut self.sinks {
            sink.observe_ref(world, weight);
        }
    }

    fn observe_log_ref(&mut self, world: &Instance, log_weight: f64) {
        for sink in &mut self.sinks {
            sink.observe_log_ref(world, log_weight);
        }
    }

    fn observe_batch(&mut self, batch: &[BatchObs<'_>]) {
        // Whole-batch fan-out: each inner sink folds the batch with its
        // own (possibly monomorphic) batch loop.
        for sink in &mut self.sinks {
            sink.observe_batch(batch);
        }
    }

    fn observe_deficit(&mut self, kind: DeficitKind, weight: f64) {
        for sink in &mut self.sinks {
            sink.observe_deficit(kind, weight);
        }
    }

    fn rescale(&mut self, factor: f64) {
        for sink in &mut self.sinks {
            sink.rescale(factor);
        }
    }

    fn fork(&self) -> Option<Box<dyn WorldSink>> {
        let forked: Option<Vec<Box<dyn WorldSink>>> =
            self.sinks.iter().map(|sink| sink.fork()).collect();
        Some(Box::new(MultiplexSink { sinks: forked? }))
    }

    fn join(&mut self, forked: Box<dyn WorldSink>) {
        let other = forked
            .into_any()
            .downcast::<MultiplexSink>()
            .expect("join requires a sink forked from self");
        assert_eq!(
            self.sinks.len(),
            other.sinks.len(),
            "join requires a multiplexer forked from self"
        );
        for (mine, theirs) in self.sinks.iter_mut().zip(other.sinks) {
            mine.join(theirs);
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ---------------------------------------------------------------------------
// World-table collector (exact results).
// ---------------------------------------------------------------------------

/// Collects the stream back into an exact [`PossibleWorlds`] table.
///
/// Feeding it an exact enumeration reproduces the table bit-for-bit;
/// feeding it a Monte-Carlo stream yields the empirical distribution over
/// canonical instances (weights `1/runs` merged per world).
#[derive(Debug, Default)]
pub struct WorldTableSink {
    worlds: PossibleWorlds,
}

impl WorldTableSink {
    /// An empty collector.
    pub fn new() -> WorldTableSink {
        WorldTableSink::default()
    }

    /// The collected table.
    pub fn finish(self) -> PossibleWorlds {
        self.worlds
    }

    fn forked(&self) -> WorldTableSink {
        WorldTableSink::new()
    }

    fn absorb(&mut self, other: WorldTableSink) {
        let deficit = other.worlds.deficit();
        self.worlds.add_nontermination(deficit.nontermination);
        self.worlds.add_truncation(deficit.truncation);
        for (d, p) in other.worlds.into_worlds() {
            self.worlds.add(d, p);
        }
    }
}

impl WorldSink for WorldTableSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.worlds.add(world, weight);
    }

    fn observe_deficit(&mut self, kind: DeficitKind, weight: f64) {
        match kind {
            DeficitKind::Nontermination => self.worlds.add_nontermination(weight),
            DeficitKind::Truncation => self.worlds.add_truncation(weight),
        }
    }

    fn rescale(&mut self, factor: f64) {
        self.worlds.scale(factor);
    }

    forkable!();
}

// ---------------------------------------------------------------------------
// Empirical collector (Monte-Carlo results).
// ---------------------------------------------------------------------------

/// Collects a Monte-Carlo stream into an [`EmpiricalPdb`] (each observation
/// is one retained sample, each deficit observation one error run).
///
/// This sink intentionally *materializes* every observed instance — it is
/// the one statistic whose result is O(runs); use the other sinks when a
/// summary suffices.
#[derive(Debug, Default)]
pub struct EmpiricalSink {
    pdb: EmpiricalPdb,
}

impl EmpiricalSink {
    /// An empty collector.
    pub fn new() -> EmpiricalSink {
        EmpiricalSink::default()
    }

    /// The collected estimate.
    pub fn finish(self) -> EmpiricalPdb {
        self.pdb
    }

    fn forked(&self) -> EmpiricalSink {
        EmpiricalSink::new()
    }

    fn absorb(&mut self, other: EmpiricalSink) {
        self.pdb.merge(other.pdb);
    }
}

impl WorldSink for EmpiricalSink {
    fn observe(&mut self, world: Instance, _weight: f64) {
        self.pdb.push(world);
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {
        self.pdb.push_error();
    }

    fn rescale(&mut self, _factor: f64) {
        // Unweighted collector: every observation is one retained sample.
    }

    forkable!();
}

// ---------------------------------------------------------------------------
// Marginal of a single fact.
// ---------------------------------------------------------------------------

/// Streams the marginal probability `P(f ∈ D)` of one fact.
///
/// Deficit mass counts against the marginal (sub-probability semantics:
/// an error run does not contain the fact), matching both
/// [`PossibleWorlds::marginal`] and [`EmpiricalPdb::marginal`].
#[derive(Debug, Clone)]
pub struct MarginalSink {
    fact: Fact,
    mass: f64,
}

impl MarginalSink {
    /// Streams the marginal of `fact`.
    pub fn new(fact: Fact) -> MarginalSink {
        MarginalSink { fact, mass: 0.0 }
    }

    /// The accumulated marginal probability.
    pub fn finish(&self) -> f64 {
        self.mass
    }

    fn forked(&self) -> MarginalSink {
        MarginalSink::new(self.fact.clone())
    }

    fn absorb(&mut self, other: MarginalSink) {
        self.mass += other.mass;
    }
}

impl WorldSink for MarginalSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        if world.contains(self.fact.rel, &self.fact.tuple) {
            self.mass += weight;
        }
    }

    fn observe_log_ref(&mut self, world: &Instance, log_weight: f64) {
        self.observe_ref(world, log_weight.exp());
    }

    fn observe_batch(&mut self, batch: &[BatchObs<'_>]) {
        // Monomorphic batch fold: one probe per lane, no per-world
        // dispatch, no allocation.
        for obs in batch {
            let (world, weight) = match *obs {
                BatchObs::World(world, weight) => (world, weight),
                BatchObs::LogWorld(world, lw) => (world, lw.exp()),
                BatchObs::Deficit(..) => continue,
            };
            if world.contains(self.fact.rel, &self.fact.tuple) {
                self.mass += weight;
            }
        }
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    fn rescale(&mut self, factor: f64) {
        self.mass *= factor;
    }

    forkable!();
}

// ---------------------------------------------------------------------------
// Probability of a measurable event.
// ---------------------------------------------------------------------------

/// Streams the probability of a measurable [`Event`] (§2.3 of the paper).
/// Deficit mass counts as not satisfying the event.
#[derive(Debug, Clone)]
pub struct EventProbabilitySink {
    event: Event,
    mass: f64,
}

impl EventProbabilitySink {
    /// Streams the probability of `event`.
    pub fn new(event: Event) -> EventProbabilitySink {
        EventProbabilitySink { event, mass: 0.0 }
    }

    /// The accumulated event probability.
    pub fn finish(&self) -> f64 {
        self.mass
    }

    fn forked(&self) -> EventProbabilitySink {
        EventProbabilitySink::new(self.event.clone())
    }

    fn absorb(&mut self, other: EventProbabilitySink) {
        self.mass += other.mass;
    }
}

impl WorldSink for EventProbabilitySink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        if self.event.eval(world) {
            self.mass += weight;
        }
    }

    fn observe_log_ref(&mut self, world: &Instance, log_weight: f64) {
        self.observe_ref(world, log_weight.exp());
    }

    fn observe_batch(&mut self, batch: &[BatchObs<'_>]) {
        for obs in batch {
            let (world, weight) = match *obs {
                BatchObs::World(world, weight) => (world, weight),
                BatchObs::LogWorld(world, lw) => (world, lw.exp()),
                BatchObs::Deficit(..) => continue,
            };
            if self.event.eval(world) {
                self.mass += weight;
            }
        }
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    fn rescale(&mut self, factor: f64) {
        self.mass *= factor;
    }

    forkable!();
}

// ---------------------------------------------------------------------------
// Moments of an aggregate query.
// ---------------------------------------------------------------------------

/// Streams the mean/variance of a scalar aggregate statistic of a query:
/// per world, `query` is evaluated and `agg` is applied to the **last
/// column** of its answer tuples (the convention of
/// [`crate::expectation::query_moments`]); worlds with an empty answer
/// contribute `empty_default`. Moments are conditional on termination
/// (normalized by the observed world mass, excluding deficits).
#[derive(Debug, Clone)]
pub struct MomentsSink {
    query: Query,
    agg: AggFun,
    empty_default: f64,
    weight: f64,
    weighted_sum: f64,
    weighted_sq_sum: f64,
}

impl MomentsSink {
    /// Streams moments of `agg` over the answers of `query`.
    pub fn new(query: Query, agg: AggFun, empty_default: f64) -> MomentsSink {
        MomentsSink {
            query,
            agg,
            empty_default,
            weight: 0.0,
            weighted_sum: 0.0,
            weighted_sq_sum: 0.0,
        }
    }

    /// The accumulated moments, or `None` if no world mass was observed.
    pub fn finish(&self) -> Option<Moments> {
        if self.weight <= 0.0 {
            return None;
        }
        let mean = self.weighted_sum / self.weight;
        let variance = (self.weighted_sq_sum / self.weight - mean * mean).max(0.0);
        Some(Moments {
            mean,
            variance,
            mass: self.weight,
        })
    }

    fn forked(&self) -> MomentsSink {
        MomentsSink::new(self.query.clone(), self.agg, self.empty_default)
    }

    fn absorb(&mut self, other: MomentsSink) {
        self.weight += other.weight;
        self.weighted_sum += other.weighted_sum;
        self.weighted_sq_sum += other.weighted_sq_sum;
    }
}

/// Applies `agg` to the last column of an answer set, the scalar-statistic
/// convention shared by [`MomentsSink`] and
/// [`crate::expectation::query_moments`]. Returns `None` on an empty set.
pub fn scalar_aggregate(answers: &std::collections::BTreeSet<Tuple>, agg: AggFun) -> Option<f64> {
    if answers.is_empty() {
        return None;
    }
    let nums = || {
        answers
            .iter()
            .filter_map(|t| t.values().last())
            .filter_map(gdatalog_data::Value::as_f64)
    };
    Some(match agg {
        AggFun::Count => answers.len() as f64,
        AggFun::Sum => nums().sum(),
        AggFun::Avg => {
            let (n, s) = nums().fold((0usize, 0.0), |(n, s), x| (n + 1, s + x));
            if n == 0 {
                return None;
            }
            s / n as f64
        }
        AggFun::Min => nums().fold(f64::INFINITY, f64::min),
        AggFun::Max => nums().fold(f64::NEG_INFINITY, f64::max),
    })
}

impl MomentsSink {
    /// The per-world scalar: aggregate of the query's answers, or the
    /// empty default. Bare relation scans aggregate directly over the
    /// instance's stored `BTreeSet` — the same tuples in the same sorted
    /// fold order as `eval_query`'s clone, so the result is bit-identical
    /// while the Monte-Carlo hot path allocates nothing per world.
    fn world_scalar(&self, world: &Instance) -> f64 {
        let x = match &self.query {
            Query::Rel(rel) => scalar_aggregate(world.relation(*rel), self.agg),
            q => scalar_aggregate(&eval_query(q, world), self.agg),
        };
        x.unwrap_or(self.empty_default)
    }

    fn fold(&mut self, x: f64, weight: f64) {
        self.weight += weight;
        self.weighted_sum += x * weight;
        self.weighted_sq_sum += x * x * weight;
    }
}

impl WorldSink for MomentsSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        let x = self.world_scalar(world);
        self.fold(x, weight);
    }

    fn observe_log_ref(&mut self, world: &Instance, log_weight: f64) {
        self.observe_ref(world, log_weight.exp());
    }

    fn observe_batch(&mut self, batch: &[BatchObs<'_>]) {
        for obs in batch {
            let (world, weight) = match *obs {
                BatchObs::World(world, weight) => (world, weight),
                BatchObs::LogWorld(world, lw) => (world, lw.exp()),
                BatchObs::Deficit(..) => continue,
            };
            let x = self.world_scalar(world);
            self.fold(x, weight);
        }
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    fn rescale(&mut self, factor: f64) {
        self.weight *= factor;
        self.weighted_sum *= factor;
        self.weighted_sq_sum *= factor;
    }

    forkable!();
}

// ---------------------------------------------------------------------------
// Histogram of a numeric column.
// ---------------------------------------------------------------------------

/// A probability-weighted fixed-bin histogram over a numeric column: bin
/// `i` holds the expected number of facts per world whose column value
/// falls into the bin (for Monte-Carlo streams, the average count per run).
///
/// The binned range is the half-open interval `[lo, hi)`, split into
/// equal-width half-open bins `[lo + i·w, lo + (i+1)·w)`: a value exactly
/// at `lo` lands in bin 0, a value exactly at `hi` counts as overflow, and
/// every finite value lands in exactly one of bins / underflow / overflow.
/// `NaN` values compare false against both bounds, so they are counted in
/// their own [`nan`](ColumnHistogram::nan) bucket instead of being
/// silently misfiled.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnHistogram {
    /// Inclusive lower bound of the binned range.
    pub lo: f64,
    /// Exclusive upper bound of the binned range.
    pub hi: f64,
    /// Per-bin expected fact counts.
    pub bins: Vec<f64>,
    /// Expected count of values below `lo`.
    pub underflow: f64,
    /// Expected count of values at or above `hi`.
    pub overflow: f64,
    /// Expected count of `NaN` values (orderable into no bin).
    pub nan: f64,
    /// Total world mass observed (excludes deficits).
    pub mass: f64,
}

impl ColumnHistogram {
    /// The `[lo, hi)` midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Total expected count over all bins including under/overflow and the
    /// NaN bucket.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum::<f64>() + self.underflow + self.overflow + self.nan
    }

    /// Deposits one value with the given weight, following the `[lo, hi)`
    /// convention documented on the type: NaN goes to
    /// [`nan`](ColumnHistogram::nan), values below `lo` to underflow,
    /// values at or above `hi` to overflow, everything else to its
    /// half-open bin. A hand-built histogram with no bins (the sink never
    /// constructs one) counts in-range values as overflow rather than
    /// indexing an empty bin vector.
    pub fn deposit(&mut self, x: f64, weight: f64) {
        // NaN fails both ordered comparisons below; without this arm it
        // would fall through and be cast into bin 0 (`NaN as usize`
        // saturates to 0) — route it to the explicit counter instead.
        if x.is_nan() {
            self.nan += weight;
        } else if x < self.lo {
            self.underflow += weight;
        } else if x >= self.hi || self.bins.is_empty() {
            self.overflow += weight;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[i] += weight;
        }
    }
}

/// Streams a [`ColumnHistogram`] of the values at column `col` of relation
/// `rel`, weighting each fact by its world's probability.
#[derive(Debug, Clone)]
pub struct HistogramSink {
    rel: RelId,
    col: usize,
    hist: ColumnHistogram,
}

impl HistogramSink {
    /// Streams a histogram of `rel`'s column `col` with `bins` equal-width
    /// bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi`, both bounds are finite (an infinite range
    /// would make the bin width arithmetic produce NaN indices), and
    /// `bins > 0`.
    pub fn new(rel: RelId, col: usize, lo: f64, hi: f64, bins: usize) -> HistogramSink {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi && bins > 0,
            "invalid histogram spec: need finite lo < hi and bins > 0"
        );
        HistogramSink {
            rel,
            col,
            hist: ColumnHistogram {
                lo,
                hi,
                bins: vec![0.0; bins],
                underflow: 0.0,
                overflow: 0.0,
                nan: 0.0,
                mass: 0.0,
            },
        }
    }

    /// The accumulated histogram.
    pub fn finish(self) -> ColumnHistogram {
        self.hist
    }

    fn forked(&self) -> HistogramSink {
        HistogramSink::new(
            self.rel,
            self.col,
            self.hist.lo,
            self.hist.hi,
            self.hist.bins.len(),
        )
    }

    fn absorb(&mut self, other: HistogramSink) {
        for (a, b) in self.hist.bins.iter_mut().zip(&other.hist.bins) {
            *a += b;
        }
        self.hist.underflow += other.hist.underflow;
        self.hist.overflow += other.hist.overflow;
        self.hist.nan += other.hist.nan;
        self.hist.mass += other.hist.mass;
    }
}

impl WorldSink for HistogramSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        self.hist.mass += weight;
        for t in world.relation(self.rel) {
            let Some(x) = t[self.col].as_f64() else {
                continue;
            };
            self.hist.deposit(x, weight);
        }
    }

    fn observe_log_ref(&mut self, world: &Instance, log_weight: f64) {
        self.observe_ref(world, log_weight.exp());
    }

    fn observe_batch(&mut self, batch: &[BatchObs<'_>]) {
        for obs in batch {
            let (world, weight) = match *obs {
                BatchObs::World(world, weight) => (world, weight),
                BatchObs::LogWorld(world, lw) => (world, lw.exp()),
                BatchObs::Deficit(..) => continue,
            };
            self.observe_ref(world, weight);
        }
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    fn rescale(&mut self, factor: f64) {
        for bin in &mut self.hist.bins {
            *bin *= factor;
        }
        self.hist.underflow *= factor;
        self.hist.overflow *= factor;
        self.hist.nan *= factor;
        self.hist.mass *= factor;
    }

    forkable!();
}

// ---------------------------------------------------------------------------
// Quantile of a numeric column.
// ---------------------------------------------------------------------------

/// A total-order key for `f64` accumulator maps (via [`f64::total_cmp`]).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &OrdF64) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &OrdF64) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Streams the weighted `q`-quantile of the values at column `col` of
/// relation `rel`: each value occurrence carries its world's weight, and
/// the quantile is the smallest value whose cumulative weight reaches `q`
/// of the total observed value weight — O(distinct values) memory,
/// invariant under rescaling the weights (so the conditioned and
/// unconditioned readings coincide). Non-numeric and NaN values carry no
/// value mass (NaN belongs to no quantile — the same totality concern as
/// [`ColumnHistogram`]'s explicit NaN bucket).
#[derive(Debug, Clone)]
pub struct QuantileSink {
    rel: RelId,
    col: usize,
    q: f64,
    acc: BTreeMap<OrdF64, f64>,
}

impl QuantileSink {
    /// Streams the `q`-quantile of `rel`'s column `col`.
    ///
    /// # Panics
    /// Panics unless `q ∈ [0, 1]`.
    pub fn new(rel: RelId, col: usize, q: f64) -> QuantileSink {
        assert!(
            (0.0..=1.0).contains(&q),
            "invalid quantile spec: need q in [0, 1], got {q}"
        );
        QuantileSink {
            rel,
            col,
            q,
            acc: BTreeMap::new(),
        }
    }

    /// The accumulated quantile, or `None` if no value weight was
    /// observed (no world contained a numeric value in the column).
    pub fn finish(&self) -> Option<f64> {
        let total: f64 = self.acc.values().sum();
        if total <= 0.0 {
            return None;
        }
        let target = self.q * total;
        let mut cum = 0.0;
        let mut last = None;
        for (value, weight) in &self.acc {
            cum += weight;
            last = Some(value.0);
            if cum >= target {
                return last;
            }
        }
        // Unreachable when the loop ran (the final cumulative sum equals
        // `total` by identical summation order), kept total for safety.
        last
    }

    fn forked(&self) -> QuantileSink {
        QuantileSink::new(self.rel, self.col, self.q)
    }

    fn absorb(&mut self, other: QuantileSink) {
        for (value, weight) in other.acc {
            *self.acc.entry(value).or_insert(0.0) += weight;
        }
    }
}

impl WorldSink for QuantileSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        for t in world.relation(self.rel) {
            let Some(x) = t[self.col].as_f64() else {
                continue;
            };
            // NaN is orderable into no quantile (total_cmp would sort it
            // after +inf and poison the top of the distribution); like
            // non-numeric values it carries no value mass. The engine's
            // own `Value` rejects NaN at construction, but the sink is
            // public API and must stay total on hand-fed streams.
            if x.is_nan() {
                continue;
            }
            *self.acc.entry(OrdF64(x)).or_insert(0.0) += weight;
        }
    }

    fn observe_log_ref(&mut self, world: &Instance, log_weight: f64) {
        self.observe_ref(world, log_weight.exp());
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    fn rescale(&mut self, factor: f64) {
        for weight in self.acc.values_mut() {
            *weight *= factor;
        }
    }

    forkable!();
}

// ---------------------------------------------------------------------------
// All fact marginals of one relation.
// ---------------------------------------------------------------------------

/// Streams the marginal `P(R(t̄) ∈ D)` of **every** tuple of one relation
/// that occurs in some observed world — O(distinct tuples) memory, matching
/// [`crate::expectation::fact_marginals`] on exact tables.
#[derive(Debug, Clone)]
pub struct RelationMarginalsSink {
    rel: RelId,
    acc: BTreeMap<Tuple, f64>,
}

impl RelationMarginalsSink {
    /// Streams all fact marginals of `rel`.
    pub fn new(rel: RelId) -> RelationMarginalsSink {
        RelationMarginalsSink {
            rel,
            acc: BTreeMap::new(),
        }
    }

    /// The accumulated marginals, sorted by tuple.
    pub fn finish(self) -> Vec<(Fact, f64)> {
        let rel = self.rel;
        self.acc
            .into_iter()
            .map(|(t, p)| (Fact::new(rel, t), p))
            .collect()
    }

    fn forked(&self) -> RelationMarginalsSink {
        RelationMarginalsSink::new(self.rel)
    }

    fn absorb(&mut self, other: RelationMarginalsSink) {
        for (t, p) in other.acc {
            *self.acc.entry(t).or_insert(0.0) += p;
        }
    }
}

impl WorldSink for RelationMarginalsSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        for t in world.relation(self.rel) {
            *self.acc.entry(t.clone()).or_insert(0.0) += weight;
        }
    }

    fn observe_log_ref(&mut self, world: &Instance, log_weight: f64) {
        self.observe_ref(world, log_weight.exp());
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    fn rescale(&mut self, factor: f64) {
        for p in self.acc.values_mut() {
            *p *= factor;
        }
    }

    forkable!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::FactSet;
    use gdatalog_data::{tuple, Value};

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    /// Feeds the demo table of `expectation::tests` into a sink: {1,2} w.p.
    /// 0.5, {5} w.p. 0.25, {} w.p. 0.25.
    fn feed_demo(sink: &mut dyn WorldSink) {
        let mut d1 = Instance::new();
        d1.insert(r(0), tuple![1i64]);
        d1.insert(r(0), tuple![2i64]);
        sink.observe(d1, 0.5);
        let mut d2 = Instance::new();
        d2.insert(r(0), tuple![5i64]);
        sink.observe(d2, 0.25);
        sink.observe(Instance::new(), 0.25);
    }

    #[test]
    fn world_table_round_trips() {
        let mut sink = WorldTableSink::new();
        feed_demo(&mut sink);
        sink.observe_deficit(DeficitKind::Truncation, 0.0);
        let w = sink.finish();
        assert_eq!(w.len(), 3);
        assert!(w.mass_is_consistent(1e-12));
    }

    #[test]
    fn marginal_streams() {
        let mut sink = MarginalSink::new(Fact::new(r(0), tuple![1i64]));
        feed_demo(&mut sink);
        assert!((sink.finish() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn event_probability_streams() {
        let ev = Event::count_exactly(FactSet::whole_relation(r(0)), 2);
        let mut sink = EventProbabilitySink::new(ev);
        feed_demo(&mut sink);
        sink.observe_deficit(DeficitKind::Nontermination, 0.1);
        assert!((sink.finish() - 0.5).abs() < 1e-12, "deficit never counts");
    }

    #[test]
    fn moments_match_expectation_module() {
        // E[sum] = 0.5·3 + 0.25·5 + 0.25·0 = 2.75, as in query_moments.
        let q = Query::Rel(r(0));
        let mut sink = MomentsSink::new(q, AggFun::Sum, 0.0);
        feed_demo(&mut sink);
        let m = sink.finish().unwrap();
        assert!((m.mean - 2.75).abs() < 1e-12);
        assert!((m.mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_weights_by_world() {
        let mut sink = HistogramSink::new(r(0), 0, 0.0, 10.0, 10);
        feed_demo(&mut sink);
        let h = sink.finish();
        assert!(
            (h.bins[1] - 0.5).abs() < 1e-12,
            "value 1 from the 0.5 world"
        );
        assert!((h.bins[2] - 0.5).abs() < 1e-12);
        assert!((h.bins[5] - 0.25).abs() < 1e-12);
        assert!((h.total() - 1.25).abs() < 1e-12, "E[|R|]");
        assert!((h.mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_routes_nan_to_its_own_counter() {
        // Regression: NaN fails both `< lo` and `>= hi` and `NaN as usize`
        // is 0, so NaN used to be silently counted in bin 0. (The engine's
        // own `Value` type rejects NaN at construction, but the histogram
        // is public API and its binning arithmetic must stay total.)
        let mut sink = HistogramSink::new(r(0), 0, 0.0, 10.0, 10);
        let mut world = Instance::new();
        world.insert(r(0), tuple![0.5]);
        sink.observe(world, 1.0);
        let mut h = sink.finish();
        h.deposit(f64::NAN, 1.0);
        assert!((h.nan - 1.0).abs() < 1e-12, "NaN counted explicitly");
        assert!((h.bins[0] - 1.0).abs() < 1e-12, "only the real 0.5 value");
        assert!(
            (h.total() - 2.0).abs() < 1e-12,
            "total includes the NaN bucket"
        );
        // Infinities are orderable and go to the flow counters, not NaN.
        h.deposit(f64::INFINITY, 1.0);
        h.deposit(f64::NEG_INFINITY, 1.0);
        assert!((h.overflow - 1.0).abs() < 1e-12);
        assert!((h.underflow - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deposit_is_total_on_a_binless_histogram() {
        // All fields are pub, so a caller can hand-build a histogram with
        // no bins; deposit must stay total instead of indexing bins[-1].
        let mut h = ColumnHistogram {
            lo: 0.0,
            hi: 1.0,
            bins: Vec::new(),
            underflow: 0.0,
            overflow: 0.0,
            nan: 0.0,
            mass: 0.0,
        };
        h.deposit(0.5, 1.0);
        assert!((h.overflow - 1.0).abs() < 1e-12, "in-range → overflow");
        h.deposit(-1.0, 1.0);
        assert!((h.underflow - 1.0).abs() < 1e-12);
        assert!((h.total() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid histogram spec")]
    fn histogram_rejects_infinite_bounds() {
        // An infinite range makes the bin-width arithmetic produce NaN
        // indices (everything would land in bin 0).
        let _ = HistogramSink::new(r(0), 0, f64::NEG_INFINITY, f64::INFINITY, 10);
    }

    #[test]
    fn histogram_bin_convention_is_half_open() {
        // [lo, hi) with half-open bins: lo lands in bin 0, hi overflows.
        let mut sink = HistogramSink::new(r(0), 0, 0.0, 2.0, 2);
        let mut world = Instance::new();
        world.insert(r(0), tuple![0.0]);
        world.insert(r(0), tuple![1.0]);
        world.insert(r(0), tuple![2.0]);
        sink.observe(world, 1.0);
        let h = sink.finish();
        assert!((h.bins[0] - 1.0).abs() < 1e-12, "lo is inclusive");
        assert!((h.bins[1] - 1.0).abs() < 1e-12, "interior boundary goes up");
        assert!((h.overflow - 1.0).abs() < 1e-12, "hi is exclusive");
    }

    #[test]
    fn normalizing_sink_tracks_totals_and_ess() {
        let mut sink = NormalizingSink::new(MarginalSink::new(Fact::new(r(0), tuple![1i64])));
        let mut with = Instance::new();
        with.insert(r(0), tuple![1i64]);
        sink.observe(with.clone(), 0.6);
        sink.observe(Instance::new(), 0.2);
        sink.observe_deficit(DeficitKind::Nontermination, 0.2);
        let (inner, stats) = sink.finish();
        assert!((stats.total() - 0.8).abs() < 1e-12, "deficits excluded");
        assert_eq!(stats.worlds, 2);
        // Self-normalized conditional marginal.
        assert!((inner.finish() / stats.normalizer() - 0.75).abs() < 1e-12);
        // ESS: (0.8)^2 / (0.36 + 0.04) = 1.6.
        assert!((stats.ess() - 1.6).abs() < 1e-12);
        // Linear mode: normalizer == total exactly, log_total consistent.
        assert_eq!(stats.normalizer().to_bits(), stats.total().to_bits());
        assert!((stats.log_total() - 0.8f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn normalizing_sink_forks_and_joins_with_inner() {
        let mut main = NormalizingSink::new(MarginalSink::new(Fact::new(r(0), tuple![1i64])));
        let mut w1 = main.fork().unwrap();
        let mut w2 = main.fork().unwrap();
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        w1.observe(d.clone(), 0.25);
        w2.observe(d, 0.5);
        w2.observe(Instance::new(), 0.25);
        main.join(w1);
        main.join(w2);
        let (inner, stats) = main.finish();
        assert!((stats.total() - 1.0).abs() < 1e-12);
        assert_eq!(stats.worlds, 3);
        assert!((inner.finish() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn log_space_matches_linear_on_representable_weights() {
        // Where linear arithmetic works, log-space must agree (up to the
        // offset, which normalizer() absorbs).
        let fact = Fact::new(r(0), tuple![1i64]);
        let mut linear = NormalizingSink::new(MarginalSink::new(fact.clone()));
        let mut log = NormalizingSink::log_space(MarginalSink::new(fact.clone()));
        let mut with = Instance::new();
        with.insert(r(0), tuple![1i64]);
        for (world, w) in [(with.clone(), 0.6), (Instance::new(), 0.2), (with, 0.1)] {
            linear.observe_ref(&world, w);
            log.observe_log(world, w.ln());
        }
        let (lin_inner, lin_stats) = linear.finish();
        let (log_inner, log_stats) = log.finish();
        assert!((lin_stats.total() - log_stats.total()).abs() < 1e-12);
        assert!((lin_stats.log_total() - log_stats.log_total()).abs() < 1e-12);
        assert!((lin_stats.ess() - log_stats.ess()).abs() < 1e-12);
        assert_eq!(lin_stats.worlds, log_stats.worlds);
        let lin_post = lin_inner.finish() / lin_stats.normalizer();
        let log_post = log_inner.finish() / log_stats.normalizer();
        assert!((lin_post - log_post).abs() < 1e-12);
    }

    #[test]
    fn log_space_survives_linear_underflow() {
        // Log-weights around -2000: every linear weight is exactly 0.0,
        // yet the normalized posterior and the ESS stay well-defined.
        let fact = Fact::new(r(0), tuple![1i64]);
        let mut sink = NormalizingSink::log_space(MarginalSink::new(fact));
        let mut with = Instance::new();
        with.insert(r(0), tuple![1i64]);
        assert_eq!((-2000.0f64).exp(), 0.0, "the linear path underflows");
        sink.observe_log(with.clone(), -2000.0);
        sink.observe_log(Instance::new(), -2000.0 + (1.0f64 / 3.0).ln());
        let (inner, stats) = sink.finish();
        assert_eq!(stats.worlds, 2);
        // log Σw = -2000 + ln(4/3).
        assert!((stats.log_total() - (-2000.0 + (4.0f64 / 3.0).ln())).abs() < 1e-9);
        assert_eq!(stats.total(), 0.0, "linear mass 0-safe, not NaN");
        // Posterior P(fact) = 1 / (4/3) = 0.75.
        assert!((inner.finish() / stats.normalizer() - 0.75).abs() < 1e-12);
        // ESS = (1 + 1/3)^2 / (1 + 1/9) = 1.6.
        assert!((stats.ess() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn log_space_zero_weight_worlds_count_but_contribute_nothing() {
        let fact = Fact::new(r(0), tuple![1i64]);
        let mut sink = NormalizingSink::log_space(MarginalSink::new(fact));
        sink.observe_log(Instance::new(), f64::NEG_INFINITY);
        let mut with = Instance::new();
        with.insert(r(0), tuple![1i64]);
        sink.observe_log(with, -500.0);
        let (inner, stats) = sink.finish();
        assert_eq!(stats.worlds, 2);
        assert!((stats.log_total() - (-500.0)).abs() < 1e-12);
        assert!((inner.finish() / stats.normalizer() - 1.0).abs() < 1e-12);
        assert!((stats.ess() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_space_forks_and_joins_reconciling_offsets() {
        let fact = Fact::new(r(0), tuple![1i64]);
        let mut main = NormalizingSink::log_space(MarginalSink::new(fact.clone()));
        let mut w1 = main.fork().unwrap();
        let mut w2 = main.fork().unwrap();
        let w3 = main.fork().unwrap();
        let mut with = Instance::new();
        with.insert(r(0), tuple![1i64]);
        // Workers at wildly different offsets; w3 stays empty.
        w1.observe_log(with.clone(), -1000.0);
        w2.observe_log(with.clone(), -980.0);
        w2.observe_log(Instance::new(), -981.0);
        main.join(w1);
        main.join(w2);
        main.join(w3);
        let (inner, stats) = main.finish();
        assert_eq!(stats.worlds, 3);
        // Sequential reference fold.
        let mut seq = NormalizingSink::log_space(MarginalSink::new(fact));
        seq.observe_log(with.clone(), -1000.0);
        seq.observe_log(with, -980.0);
        seq.observe_log(Instance::new(), -981.0);
        let (seq_inner, seq_stats) = seq.finish();
        assert!((stats.log_total() - seq_stats.log_total()).abs() < 1e-9);
        assert!((stats.ess() - seq_stats.ess()).abs() < 1e-9);
        let joined = inner.finish() / stats.normalizer();
        let sequential = seq_inner.finish() / seq_stats.normalizer();
        assert!((joined - sequential).abs() < 1e-12);
    }

    #[test]
    fn multiplex_rescale_reaches_every_inner_sink() {
        let mut mux = MultiplexSink::new(vec![
            Box::new(MarginalSink::new(Fact::new(r(0), tuple![1i64]))),
            Box::new(HistogramSink::new(r(0), 0, 0.0, 10.0, 10)),
            Box::new(QuantileSink::new(r(0), 0, 0.5)),
            Box::new(RelationMarginalsSink::new(r(0))),
            Box::new(WorldTableSink::new()),
        ]);
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        mux.observe(d, 1.0);
        mux.rescale(0.5);
        let mut sinks = mux.into_sinks().into_iter();
        let marginal = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<MarginalSink>()
            .unwrap();
        assert!((marginal.finish() - 0.5).abs() < 1e-12);
        let hist = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<HistogramSink>()
            .unwrap();
        assert!((hist.finish().total() - 0.5).abs() < 1e-12);
        let q = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<QuantileSink>()
            .unwrap();
        assert_eq!(q.finish(), Some(1.0), "quantiles are scale-invariant");
        let rels = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<RelationMarginalsSink>()
            .unwrap();
        assert!((rels.finish()[0].1 - 0.5).abs() < 1e-12);
        let table = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<WorldTableSink>()
            .unwrap();
        assert!((table.finish().mass() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relation_marginals_stream() {
        let mut sink = RelationMarginalsSink::new(r(0));
        feed_demo(&mut sink);
        let ms = sink.finish();
        assert_eq!(ms.len(), 3);
        assert!((ms[0].1 - 0.5).abs() < 1e-12);
        assert!((ms[2].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn multiplex_fans_one_stream_into_many_sinks() {
        let mut mux = MultiplexSink::new(vec![
            Box::new(MarginalSink::new(Fact::new(r(0), tuple![1i64]))),
            Box::new(MomentsSink::new(Query::Rel(r(0)), AggFun::Count, 0.0)),
            Box::new(HistogramSink::new(r(0), 0, 0.0, 10.0, 10)),
        ]);
        feed_demo(&mut mux);
        mux.observe_deficit(DeficitKind::Nontermination, 0.0);
        let mut sinks = mux.into_sinks().into_iter();
        let marginal = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<MarginalSink>()
            .unwrap();
        assert!((marginal.finish() - 0.5).abs() < 1e-12);
        let moments = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<MomentsSink>()
            .unwrap();
        assert!((moments.finish().unwrap().mean - 1.25).abs() < 1e-12);
        let hist = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<HistogramSink>()
            .unwrap();
        assert!((hist.finish().total() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn multiplex_fold_is_bit_identical_to_standalone_sinks() {
        // The fan-out must not perturb any statistic: same observations,
        // same fold order, bit-identical result.
        let mut standalone = MarginalSink::new(Fact::new(r(0), tuple![1i64]));
        feed_demo(&mut standalone);
        let mut mux = MultiplexSink::new(vec![
            Box::new(MarginalSink::new(Fact::new(r(0), tuple![1i64]))),
            Box::new(EventProbabilitySink::new(Event::count_exactly(
                FactSet::whole_relation(r(0)),
                2,
            ))),
        ]);
        feed_demo(&mut mux);
        let folded = mux
            .into_sinks()
            .remove(0)
            .into_any()
            .downcast::<MarginalSink>()
            .unwrap();
        assert_eq!(folded.finish().to_bits(), standalone.finish().to_bits());
    }

    #[test]
    fn multiplex_forks_and_joins_in_chunk_order() {
        let mut main = MultiplexSink::new(vec![
            Box::new(MarginalSink::new(Fact::new(r(0), tuple![1i64]))),
            Box::new(RelationMarginalsSink::new(r(0))),
        ]);
        let mut w1 = main.fork().unwrap();
        let mut w2 = main.fork().unwrap();
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        w1.observe(d.clone(), 0.25);
        w2.observe(d, 0.5);
        w2.observe(Instance::new(), 0.25);
        main.join(w1);
        main.join(w2);
        let mut sinks = main.into_sinks().into_iter();
        let marginal = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<MarginalSink>()
            .unwrap();
        assert!((marginal.finish() - 0.75).abs() < 1e-12);
        let rels = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<RelationMarginalsSink>()
            .unwrap();
        assert_eq!(rels.finish().len(), 1);
    }

    #[test]
    fn empty_multiplex_is_a_null_sink() {
        let mut mux = MultiplexSink::new(Vec::new());
        assert!(mux.is_empty());
        feed_demo(&mut mux);
        assert!(mux.fork().is_some(), "vacuously forkable");
    }

    #[test]
    fn quantile_streams_weighted_order_statistics() {
        // Values 1, 2 (weight 0.5 each via the 0.5-world) and 5 (0.25).
        let mut sink = QuantileSink::new(r(0), 0, 0.5);
        feed_demo(&mut sink);
        // Total value weight 1.25; cumulative: 1 → 0.5, 2 → 1.0, 5 → 1.25.
        // Median target 0.625 lands on value 2.
        assert_eq!(sink.finish(), Some(2.0));
        let mut lo = QuantileSink::new(r(0), 0, 0.0);
        feed_demo(&mut lo);
        assert_eq!(lo.finish(), Some(1.0));
        let mut hi = QuantileSink::new(r(0), 0, 1.0);
        feed_demo(&mut hi);
        assert_eq!(hi.finish(), Some(5.0));
        // No observed values: None, not a panic.
        let empty = QuantileSink::new(r(0), 0, 0.5);
        assert_eq!(empty.finish(), None);
    }

    #[test]
    fn quantile_forks_and_joins() {
        let mut main = QuantileSink::new(r(0), 0, 0.5);
        let mut w1 = main.fork().unwrap();
        let mut w2 = main.fork().unwrap();
        let mut d1 = Instance::new();
        d1.insert(r(0), tuple![1.0]);
        w1.observe(d1, 0.5);
        let mut d2 = Instance::new();
        d2.insert(r(0), tuple![3.0]);
        w2.observe(d2, 0.5);
        main.join(w1);
        main.join(w2);
        assert_eq!(main.finish(), Some(1.0), "cum 0.5 >= target 0.5");
    }

    #[test]
    #[should_panic(expected = "invalid quantile spec")]
    fn quantile_rejects_out_of_range_q() {
        let _ = QuantileSink::new(r(0), 0, 1.5);
    }

    #[test]
    fn quantile_never_reports_nan() {
        // NaN carries no value mass (observe_ref skips it — total_cmp
        // would sort it after +inf and q = 1 would report Some(NaN)),
        // matching the histogram's explicit-NaN-bucket convention. The
        // accumulator is private and `Value` rejects NaN upstream, so
        // assert the observable contract: the top quantile of a clean
        // stream is the real maximum, never NaN.
        let mut sink = QuantileSink::new(r(0), 0, 1.0);
        let mut world = Instance::new();
        world.insert(r(0), tuple![2.0]);
        world.insert(r(0), tuple![f64::INFINITY]);
        sink.observe(world, 0.5);
        assert_eq!(sink.finish(), Some(f64::INFINITY), "infinities order");
        assert!(!sink.finish().unwrap().is_nan());
    }

    #[test]
    fn fork_join_is_deterministic_merge() {
        let mut main = MarginalSink::new(Fact::new(r(0), tuple![1i64]));
        let mut w1 = main.fork().unwrap();
        let mut w2 = main.fork().unwrap();
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        w1.observe(d.clone(), 0.25);
        w2.observe(d, 0.5);
        main.join(w1);
        main.join(w2);
        assert!((main.finish() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empirical_sink_counts_errors() {
        let mut sink = EmpiricalSink::new();
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        sink.observe(d, 0.5);
        sink.observe_deficit(DeficitKind::Nontermination, 0.5);
        let pdb = sink.finish();
        assert_eq!(pdb.runs(), 2);
        assert_eq!(pdb.errors(), 1);
        let _ = Value::int(0);
    }

    #[test]
    fn scalar_aggregate_conventions() {
        let mut set = std::collections::BTreeSet::new();
        assert!(scalar_aggregate(&set, AggFun::Count).is_none());
        set.insert(tuple!["a", 2.0]);
        set.insert(tuple!["b", 4.0]);
        assert_eq!(scalar_aggregate(&set, AggFun::Count), Some(2.0));
        assert_eq!(scalar_aggregate(&set, AggFun::Sum), Some(6.0));
        assert_eq!(scalar_aggregate(&set, AggFun::Avg), Some(3.0));
        assert_eq!(scalar_aggregate(&set, AggFun::Min), Some(2.0));
        assert_eq!(scalar_aggregate(&set, AggFun::Max), Some(4.0));
    }
}
