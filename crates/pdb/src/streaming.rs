//! Streaming observers over possible-world observations.
//!
//! Both evaluation strategies of the engine produce the same kind of
//! stream: a sequence of weighted possible worlds (exact enumeration emits
//! each world once with its probability; Monte-Carlo emits each sampled
//! world with weight `1/runs`), plus weighted *deficit* observations for
//! the mass that never becomes a world (budget-cut paths, truncated
//! supports, error runs). A [`WorldSink`] consumes such a stream and folds
//! it into a statistic **run-by-run**, so a million-run Monte-Carlo
//! marginal holds O(result) memory instead of retaining every sampled
//! instance.
//!
//! The sinks in this module are the statistics of Fact 2.6 of the paper —
//! marginals, event probabilities, moments of aggregate queries,
//! histograms, quantiles — each usable unchanged on exact world tables
//! and on Monte-Carlo streams, because both are streams of weighted
//! worlds whose weights sum to (at most) one. A [`MultiplexSink`] fans
//! one stream out to many sinks **by reference**
//! ([`WorldSink::observe_ref`]), which is how the engine answers a whole
//! query set from a single backend pass.
//!
//! A sink can be driven by hand, which is also how custom statistics are
//! tested before plugging them into an engine backend:
//!
//! ```
//! use gdatalog_data::{tuple, Fact, Instance, RelId};
//! use gdatalog_pdb::{DeficitKind, MarginalSink, WorldSink};
//!
//! let rel = RelId(0);
//! let mut sink = MarginalSink::new(Fact::new(rel, tuple![1i64]));
//! // Two weighted worlds and one budget-cut path (deficit).
//! let mut world = Instance::new();
//! world.insert(rel, tuple![1i64]);
//! sink.observe(world, 0.5);
//! sink.observe(Instance::new(), 0.25);
//! sink.observe_deficit(DeficitKind::Nontermination, 0.25);
//! // The marginal counts only worlds containing the fact.
//! assert!((sink.finish() - 0.5).abs() < 1e-12);
//! ```

use std::any::Any;
use std::collections::BTreeMap;

use gdatalog_data::{Fact, Instance, RelId, Tuple};

use crate::empirical::EmpiricalPdb;
use crate::events::Event;
use crate::expectation::Moments;
use crate::query::{eval_query, AggFun, Query};
use crate::worlds::PossibleWorlds;

/// Which kind of probability mass a deficit observation carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeficitKind {
    /// Mass of chase paths cut off by the step/depth budget (the paper's
    /// `err` outcome of §4.2); Monte-Carlo error runs report this kind.
    Nontermination,
    /// Mass lost to truncating countably-infinite discrete supports during
    /// exact enumeration.
    Truncation,
}

/// A consumer of weighted possible-world observations.
///
/// Implementations fold each observation into their statistic immediately;
/// they must not retain the observed instances (that is the whole point —
/// see the module docs). The `fork`/`join` pair supports deterministic
/// parallel folding: a backend may `fork` one empty sink per worker, fold
/// disjoint chunks of the stream into them, and `join` them back **in
/// chunk order**, so the merged result does not depend on thread timing.
pub trait WorldSink: Send {
    /// Folds one weighted world into the statistic. Exact streams pass each
    /// world once with its probability; Monte-Carlo streams pass each
    /// sampled world with weight `1/runs`.
    fn observe(&mut self, world: Instance, weight: f64);

    /// Folds one weighted world **by reference** — the fan-out path of
    /// [`MultiplexSink`], where one observed world feeds many sinks.
    /// Statistic sinks override this (they only read the instance), so a
    /// K-way fan-out costs K folds and zero clones; collectors that retain
    /// the instance keep the default, which clones.
    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        self.observe(world.clone(), weight);
    }

    /// Folds weighted deficit mass (non-termination or truncation).
    fn observe_deficit(&mut self, kind: DeficitKind, weight: f64);

    /// Creates an empty sink of the same type for a parallel worker, or
    /// `None` if this sink only supports sequential folding (the default).
    fn fork(&self) -> Option<Box<dyn WorldSink>> {
        None
    }

    /// Merges a sink previously produced by [`WorldSink::fork`] back into
    /// this one. Backends call `join` in deterministic chunk order.
    ///
    /// # Panics
    /// The default panics; sinks that return `Some` from `fork` override it.
    fn join(&mut self, forked: Box<dyn WorldSink>) {
        let _ = forked;
        unreachable!("join called on a sink that does not fork");
    }

    /// Upcast for [`WorldSink::join`] downcasting.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Implements `fork`/`join`/`into_any` for a sink with inherent
/// `forked(&self) -> Self` and `absorb(&mut self, Self)` methods.
macro_rules! forkable {
    () => {
        fn fork(&self) -> Option<Box<dyn WorldSink>> {
            Some(Box::new(self.forked()))
        }

        fn join(&mut self, forked: Box<dyn WorldSink>) {
            let other = forked
                .into_any()
                .downcast::<Self>()
                .expect("join requires a sink forked from self");
            self.absorb(*other);
        }

        fn into_any(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    };
}

// ---------------------------------------------------------------------------
// Self-normalization (conditioning support).
// ---------------------------------------------------------------------------

/// Weight bookkeeping of a (possibly conditioned) observation stream: the
/// total observed world weight, the sum of squared weights, and the world
/// count — everything needed to self-normalize a statistic and to report
/// the classical effective sample size `(Σw)² / Σw²` of importance
/// sampling.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeightStats {
    /// Sum of observed world weights (the evidence mass: `P(evidence)` on
    /// exact streams, the self-normalizing constant `1/N·ΣLᵢ` on
    /// likelihood-weighted Monte-Carlo streams).
    pub total: f64,
    /// Sum of squared weights.
    pub sq_total: f64,
    /// Number of (nonzero-weight) world observations.
    pub worlds: usize,
}

impl WeightStats {
    /// Effective sample size `(Σw)² / Σw²` — equals the world count when
    /// all weights are equal (unconditioned Monte-Carlo) and collapses
    /// toward 1 when a few runs dominate the posterior.
    pub fn ess(&self) -> f64 {
        if self.sq_total > 0.0 {
            self.total * self.total / self.sq_total
        } else {
            0.0
        }
    }
}

/// Wraps an inner sink, forwarding every observation unchanged while
/// accumulating [`WeightStats`] — the self-normalization device for
/// conditioned evaluation: backends emit **unnormalized** posterior
/// weights (prior × likelihood), the wrapper records their total, and the
/// caller divides the inner statistic by [`WeightStats::total`].
///
/// Forks iff the inner sink forks, preserving the backends' deterministic
/// chunked parallelism.
#[derive(Debug)]
pub struct NormalizingSink<S> {
    inner: S,
    stats: WeightStats,
}

impl<S: WorldSink + 'static> NormalizingSink<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> NormalizingSink<S> {
        NormalizingSink {
            inner,
            stats: WeightStats::default(),
        }
    }

    /// The inner sink and the accumulated weight statistics.
    pub fn finish(self) -> (S, WeightStats) {
        (self.inner, self.stats)
    }
}

impl<S: WorldSink + 'static> WorldSink for NormalizingSink<S> {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.stats.total += weight;
        self.stats.sq_total += weight * weight;
        self.stats.worlds += 1;
        self.inner.observe(world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        self.stats.total += weight;
        self.stats.sq_total += weight * weight;
        self.stats.worlds += 1;
        self.inner.observe_ref(world, weight);
    }

    fn observe_deficit(&mut self, kind: DeficitKind, weight: f64) {
        self.inner.observe_deficit(kind, weight);
    }

    fn fork(&self) -> Option<Box<dyn WorldSink>> {
        // The inner fork is an empty sink of the same concrete type (the
        // `forkable!` contract), so the wrapper forks to a fresh wrapper.
        let forked = self.inner.fork()?;
        let inner = forked
            .into_any()
            .downcast::<S>()
            .expect("fork returns the sink's own type");
        Some(Box::new(NormalizingSink {
            inner: *inner,
            stats: WeightStats::default(),
        }))
    }

    fn join(&mut self, forked: Box<dyn WorldSink>) {
        let other = forked
            .into_any()
            .downcast::<NormalizingSink<S>>()
            .expect("join requires a sink forked from self");
        self.stats.total += other.stats.total;
        self.stats.sq_total += other.stats.sq_total;
        self.stats.worlds += other.stats.worlds;
        self.inner.join(Box::new(other.inner));
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ---------------------------------------------------------------------------
// Fan-out (single-pass multi-query support).
// ---------------------------------------------------------------------------

/// Fans one weighted-world stream out to many sinks — the single-pass
/// multi-query device: every observation is folded into each inner sink
/// **by reference** ([`WorldSink::observe_ref`]), so answering K
/// statistics costs one backend pass plus K folds, with no per-sink
/// instance cloning for statistic sinks.
///
/// Inner sinks are kept in insertion order; [`MultiplexSink::into_sinks`]
/// returns them in the same order, which is how a caller maps the folded
/// sinks back to its queries. Forks iff **every** inner sink forks;
/// forked multiplexers join their inner sinks pairwise in chunk order,
/// preserving the backends' deterministic chunked parallelism.
pub struct MultiplexSink {
    sinks: Vec<Box<dyn WorldSink>>,
}

impl MultiplexSink {
    /// A fan-out over `sinks` (insertion order is answer order).
    pub fn new(sinks: Vec<Box<dyn WorldSink>>) -> MultiplexSink {
        MultiplexSink { sinks }
    }

    /// Number of inner sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the fan-out is empty (a valid null sink).
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// The folded inner sinks, in insertion order.
    pub fn into_sinks(self) -> Vec<Box<dyn WorldSink>> {
        self.sinks
    }
}

impl WorldSink for MultiplexSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        for sink in &mut self.sinks {
            sink.observe_ref(world, weight);
        }
    }

    fn observe_deficit(&mut self, kind: DeficitKind, weight: f64) {
        for sink in &mut self.sinks {
            sink.observe_deficit(kind, weight);
        }
    }

    fn fork(&self) -> Option<Box<dyn WorldSink>> {
        let forked: Option<Vec<Box<dyn WorldSink>>> =
            self.sinks.iter().map(|sink| sink.fork()).collect();
        Some(Box::new(MultiplexSink { sinks: forked? }))
    }

    fn join(&mut self, forked: Box<dyn WorldSink>) {
        let other = forked
            .into_any()
            .downcast::<MultiplexSink>()
            .expect("join requires a sink forked from self");
        assert_eq!(
            self.sinks.len(),
            other.sinks.len(),
            "join requires a multiplexer forked from self"
        );
        for (mine, theirs) in self.sinks.iter_mut().zip(other.sinks) {
            mine.join(theirs);
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

// ---------------------------------------------------------------------------
// World-table collector (exact results).
// ---------------------------------------------------------------------------

/// Collects the stream back into an exact [`PossibleWorlds`] table.
///
/// Feeding it an exact enumeration reproduces the table bit-for-bit;
/// feeding it a Monte-Carlo stream yields the empirical distribution over
/// canonical instances (weights `1/runs` merged per world).
#[derive(Debug, Default)]
pub struct WorldTableSink {
    worlds: PossibleWorlds,
}

impl WorldTableSink {
    /// An empty collector.
    pub fn new() -> WorldTableSink {
        WorldTableSink::default()
    }

    /// The collected table.
    pub fn finish(self) -> PossibleWorlds {
        self.worlds
    }

    fn forked(&self) -> WorldTableSink {
        WorldTableSink::new()
    }

    fn absorb(&mut self, other: WorldTableSink) {
        let deficit = other.worlds.deficit();
        self.worlds.add_nontermination(deficit.nontermination);
        self.worlds.add_truncation(deficit.truncation);
        for (d, p) in other.worlds.into_worlds() {
            self.worlds.add(d, p);
        }
    }
}

impl WorldSink for WorldTableSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.worlds.add(world, weight);
    }

    fn observe_deficit(&mut self, kind: DeficitKind, weight: f64) {
        match kind {
            DeficitKind::Nontermination => self.worlds.add_nontermination(weight),
            DeficitKind::Truncation => self.worlds.add_truncation(weight),
        }
    }

    forkable!();
}

// ---------------------------------------------------------------------------
// Empirical collector (Monte-Carlo results).
// ---------------------------------------------------------------------------

/// Collects a Monte-Carlo stream into an [`EmpiricalPdb`] (each observation
/// is one retained sample, each deficit observation one error run).
///
/// This sink intentionally *materializes* every observed instance — it is
/// the one statistic whose result is O(runs); use the other sinks when a
/// summary suffices.
#[derive(Debug, Default)]
pub struct EmpiricalSink {
    pdb: EmpiricalPdb,
}

impl EmpiricalSink {
    /// An empty collector.
    pub fn new() -> EmpiricalSink {
        EmpiricalSink::default()
    }

    /// The collected estimate.
    pub fn finish(self) -> EmpiricalPdb {
        self.pdb
    }

    fn forked(&self) -> EmpiricalSink {
        EmpiricalSink::new()
    }

    fn absorb(&mut self, other: EmpiricalSink) {
        self.pdb.merge(other.pdb);
    }
}

impl WorldSink for EmpiricalSink {
    fn observe(&mut self, world: Instance, _weight: f64) {
        self.pdb.push(world);
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {
        self.pdb.push_error();
    }

    forkable!();
}

// ---------------------------------------------------------------------------
// Marginal of a single fact.
// ---------------------------------------------------------------------------

/// Streams the marginal probability `P(f ∈ D)` of one fact.
///
/// Deficit mass counts against the marginal (sub-probability semantics:
/// an error run does not contain the fact), matching both
/// [`PossibleWorlds::marginal`] and [`EmpiricalPdb::marginal`].
#[derive(Debug, Clone)]
pub struct MarginalSink {
    fact: Fact,
    mass: f64,
}

impl MarginalSink {
    /// Streams the marginal of `fact`.
    pub fn new(fact: Fact) -> MarginalSink {
        MarginalSink { fact, mass: 0.0 }
    }

    /// The accumulated marginal probability.
    pub fn finish(&self) -> f64 {
        self.mass
    }

    fn forked(&self) -> MarginalSink {
        MarginalSink::new(self.fact.clone())
    }

    fn absorb(&mut self, other: MarginalSink) {
        self.mass += other.mass;
    }
}

impl WorldSink for MarginalSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        if world.contains(self.fact.rel, &self.fact.tuple) {
            self.mass += weight;
        }
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    forkable!();
}

// ---------------------------------------------------------------------------
// Probability of a measurable event.
// ---------------------------------------------------------------------------

/// Streams the probability of a measurable [`Event`] (§2.3 of the paper).
/// Deficit mass counts as not satisfying the event.
#[derive(Debug, Clone)]
pub struct EventProbabilitySink {
    event: Event,
    mass: f64,
}

impl EventProbabilitySink {
    /// Streams the probability of `event`.
    pub fn new(event: Event) -> EventProbabilitySink {
        EventProbabilitySink { event, mass: 0.0 }
    }

    /// The accumulated event probability.
    pub fn finish(&self) -> f64 {
        self.mass
    }

    fn forked(&self) -> EventProbabilitySink {
        EventProbabilitySink::new(self.event.clone())
    }

    fn absorb(&mut self, other: EventProbabilitySink) {
        self.mass += other.mass;
    }
}

impl WorldSink for EventProbabilitySink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        if self.event.eval(world) {
            self.mass += weight;
        }
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    forkable!();
}

// ---------------------------------------------------------------------------
// Moments of an aggregate query.
// ---------------------------------------------------------------------------

/// Streams the mean/variance of a scalar aggregate statistic of a query:
/// per world, `query` is evaluated and `agg` is applied to the **last
/// column** of its answer tuples (the convention of
/// [`crate::expectation::query_moments`]); worlds with an empty answer
/// contribute `empty_default`. Moments are conditional on termination
/// (normalized by the observed world mass, excluding deficits).
#[derive(Debug, Clone)]
pub struct MomentsSink {
    query: Query,
    agg: AggFun,
    empty_default: f64,
    weight: f64,
    weighted_sum: f64,
    weighted_sq_sum: f64,
}

impl MomentsSink {
    /// Streams moments of `agg` over the answers of `query`.
    pub fn new(query: Query, agg: AggFun, empty_default: f64) -> MomentsSink {
        MomentsSink {
            query,
            agg,
            empty_default,
            weight: 0.0,
            weighted_sum: 0.0,
            weighted_sq_sum: 0.0,
        }
    }

    /// The accumulated moments, or `None` if no world mass was observed.
    pub fn finish(&self) -> Option<Moments> {
        if self.weight <= 0.0 {
            return None;
        }
        let mean = self.weighted_sum / self.weight;
        let variance = (self.weighted_sq_sum / self.weight - mean * mean).max(0.0);
        Some(Moments {
            mean,
            variance,
            mass: self.weight,
        })
    }

    fn forked(&self) -> MomentsSink {
        MomentsSink::new(self.query.clone(), self.agg, self.empty_default)
    }

    fn absorb(&mut self, other: MomentsSink) {
        self.weight += other.weight;
        self.weighted_sum += other.weighted_sum;
        self.weighted_sq_sum += other.weighted_sq_sum;
    }
}

/// Applies `agg` to the last column of an answer set, the scalar-statistic
/// convention shared by [`MomentsSink`] and
/// [`crate::expectation::query_moments`]. Returns `None` on an empty set.
pub fn scalar_aggregate(answers: &std::collections::BTreeSet<Tuple>, agg: AggFun) -> Option<f64> {
    if answers.is_empty() {
        return None;
    }
    let nums = || {
        answers
            .iter()
            .filter_map(|t| t.values().last())
            .filter_map(gdatalog_data::Value::as_f64)
    };
    Some(match agg {
        AggFun::Count => answers.len() as f64,
        AggFun::Sum => nums().sum(),
        AggFun::Avg => {
            let (n, s) = nums().fold((0usize, 0.0), |(n, s), x| (n + 1, s + x));
            if n == 0 {
                return None;
            }
            s / n as f64
        }
        AggFun::Min => nums().fold(f64::INFINITY, f64::min),
        AggFun::Max => nums().fold(f64::NEG_INFINITY, f64::max),
    })
}

impl WorldSink for MomentsSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        let answers = eval_query(&self.query, world);
        let x = scalar_aggregate(&answers, self.agg).unwrap_or(self.empty_default);
        self.weight += weight;
        self.weighted_sum += x * weight;
        self.weighted_sq_sum += x * x * weight;
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    forkable!();
}

// ---------------------------------------------------------------------------
// Histogram of a numeric column.
// ---------------------------------------------------------------------------

/// A probability-weighted fixed-bin histogram over a numeric column: bin
/// `i` holds the expected number of facts per world whose column value
/// falls into the bin (for Monte-Carlo streams, the average count per run).
///
/// The binned range is the half-open interval `[lo, hi)`, split into
/// equal-width half-open bins `[lo + i·w, lo + (i+1)·w)`: a value exactly
/// at `lo` lands in bin 0, a value exactly at `hi` counts as overflow, and
/// every finite value lands in exactly one of bins / underflow / overflow.
/// `NaN` values compare false against both bounds, so they are counted in
/// their own [`nan`](ColumnHistogram::nan) bucket instead of being
/// silently misfiled.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnHistogram {
    /// Inclusive lower bound of the binned range.
    pub lo: f64,
    /// Exclusive upper bound of the binned range.
    pub hi: f64,
    /// Per-bin expected fact counts.
    pub bins: Vec<f64>,
    /// Expected count of values below `lo`.
    pub underflow: f64,
    /// Expected count of values at or above `hi`.
    pub overflow: f64,
    /// Expected count of `NaN` values (orderable into no bin).
    pub nan: f64,
    /// Total world mass observed (excludes deficits).
    pub mass: f64,
}

impl ColumnHistogram {
    /// The `[lo, hi)` midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Total expected count over all bins including under/overflow and the
    /// NaN bucket.
    pub fn total(&self) -> f64 {
        self.bins.iter().sum::<f64>() + self.underflow + self.overflow + self.nan
    }

    /// Deposits one value with the given weight, following the `[lo, hi)`
    /// convention documented on the type: NaN goes to
    /// [`nan`](ColumnHistogram::nan), values below `lo` to underflow,
    /// values at or above `hi` to overflow, everything else to its
    /// half-open bin. A hand-built histogram with no bins (the sink never
    /// constructs one) counts in-range values as overflow rather than
    /// indexing an empty bin vector.
    pub fn deposit(&mut self, x: f64, weight: f64) {
        // NaN fails both ordered comparisons below; without this arm it
        // would fall through and be cast into bin 0 (`NaN as usize`
        // saturates to 0) — route it to the explicit counter instead.
        if x.is_nan() {
            self.nan += weight;
        } else if x < self.lo {
            self.underflow += weight;
        } else if x >= self.hi || self.bins.is_empty() {
            self.overflow += weight;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[i] += weight;
        }
    }
}

/// Streams a [`ColumnHistogram`] of the values at column `col` of relation
/// `rel`, weighting each fact by its world's probability.
#[derive(Debug, Clone)]
pub struct HistogramSink {
    rel: RelId,
    col: usize,
    hist: ColumnHistogram,
}

impl HistogramSink {
    /// Streams a histogram of `rel`'s column `col` with `bins` equal-width
    /// bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi`, both bounds are finite (an infinite range
    /// would make the bin width arithmetic produce NaN indices), and
    /// `bins > 0`.
    pub fn new(rel: RelId, col: usize, lo: f64, hi: f64, bins: usize) -> HistogramSink {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi && bins > 0,
            "invalid histogram spec: need finite lo < hi and bins > 0"
        );
        HistogramSink {
            rel,
            col,
            hist: ColumnHistogram {
                lo,
                hi,
                bins: vec![0.0; bins],
                underflow: 0.0,
                overflow: 0.0,
                nan: 0.0,
                mass: 0.0,
            },
        }
    }

    /// The accumulated histogram.
    pub fn finish(self) -> ColumnHistogram {
        self.hist
    }

    fn forked(&self) -> HistogramSink {
        HistogramSink::new(
            self.rel,
            self.col,
            self.hist.lo,
            self.hist.hi,
            self.hist.bins.len(),
        )
    }

    fn absorb(&mut self, other: HistogramSink) {
        for (a, b) in self.hist.bins.iter_mut().zip(&other.hist.bins) {
            *a += b;
        }
        self.hist.underflow += other.hist.underflow;
        self.hist.overflow += other.hist.overflow;
        self.hist.nan += other.hist.nan;
        self.hist.mass += other.hist.mass;
    }
}

impl WorldSink for HistogramSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        self.hist.mass += weight;
        for t in world.relation(self.rel) {
            let Some(x) = t[self.col].as_f64() else {
                continue;
            };
            self.hist.deposit(x, weight);
        }
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    forkable!();
}

// ---------------------------------------------------------------------------
// Quantile of a numeric column.
// ---------------------------------------------------------------------------

/// A total-order key for `f64` accumulator maps (via [`f64::total_cmp`]).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &OrdF64) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &OrdF64) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Streams the weighted `q`-quantile of the values at column `col` of
/// relation `rel`: each value occurrence carries its world's weight, and
/// the quantile is the smallest value whose cumulative weight reaches `q`
/// of the total observed value weight — O(distinct values) memory,
/// invariant under rescaling the weights (so the conditioned and
/// unconditioned readings coincide). Non-numeric and NaN values carry no
/// value mass (NaN belongs to no quantile — the same totality concern as
/// [`ColumnHistogram`]'s explicit NaN bucket).
#[derive(Debug, Clone)]
pub struct QuantileSink {
    rel: RelId,
    col: usize,
    q: f64,
    acc: BTreeMap<OrdF64, f64>,
}

impl QuantileSink {
    /// Streams the `q`-quantile of `rel`'s column `col`.
    ///
    /// # Panics
    /// Panics unless `q ∈ [0, 1]`.
    pub fn new(rel: RelId, col: usize, q: f64) -> QuantileSink {
        assert!(
            (0.0..=1.0).contains(&q),
            "invalid quantile spec: need q in [0, 1], got {q}"
        );
        QuantileSink {
            rel,
            col,
            q,
            acc: BTreeMap::new(),
        }
    }

    /// The accumulated quantile, or `None` if no value weight was
    /// observed (no world contained a numeric value in the column).
    pub fn finish(&self) -> Option<f64> {
        let total: f64 = self.acc.values().sum();
        if total <= 0.0 {
            return None;
        }
        let target = self.q * total;
        let mut cum = 0.0;
        let mut last = None;
        for (value, weight) in &self.acc {
            cum += weight;
            last = Some(value.0);
            if cum >= target {
                return last;
            }
        }
        // Unreachable when the loop ran (the final cumulative sum equals
        // `total` by identical summation order), kept total for safety.
        last
    }

    fn forked(&self) -> QuantileSink {
        QuantileSink::new(self.rel, self.col, self.q)
    }

    fn absorb(&mut self, other: QuantileSink) {
        for (value, weight) in other.acc {
            *self.acc.entry(value).or_insert(0.0) += weight;
        }
    }
}

impl WorldSink for QuantileSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        for t in world.relation(self.rel) {
            let Some(x) = t[self.col].as_f64() else {
                continue;
            };
            // NaN is orderable into no quantile (total_cmp would sort it
            // after +inf and poison the top of the distribution); like
            // non-numeric values it carries no value mass. The engine's
            // own `Value` rejects NaN at construction, but the sink is
            // public API and must stay total on hand-fed streams.
            if x.is_nan() {
                continue;
            }
            *self.acc.entry(OrdF64(x)).or_insert(0.0) += weight;
        }
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    forkable!();
}

// ---------------------------------------------------------------------------
// All fact marginals of one relation.
// ---------------------------------------------------------------------------

/// Streams the marginal `P(R(t̄) ∈ D)` of **every** tuple of one relation
/// that occurs in some observed world — O(distinct tuples) memory, matching
/// [`crate::expectation::fact_marginals`] on exact tables.
#[derive(Debug, Clone)]
pub struct RelationMarginalsSink {
    rel: RelId,
    acc: BTreeMap<Tuple, f64>,
}

impl RelationMarginalsSink {
    /// Streams all fact marginals of `rel`.
    pub fn new(rel: RelId) -> RelationMarginalsSink {
        RelationMarginalsSink {
            rel,
            acc: BTreeMap::new(),
        }
    }

    /// The accumulated marginals, sorted by tuple.
    pub fn finish(self) -> Vec<(Fact, f64)> {
        let rel = self.rel;
        self.acc
            .into_iter()
            .map(|(t, p)| (Fact::new(rel, t), p))
            .collect()
    }

    fn forked(&self) -> RelationMarginalsSink {
        RelationMarginalsSink::new(self.rel)
    }

    fn absorb(&mut self, other: RelationMarginalsSink) {
        for (t, p) in other.acc {
            *self.acc.entry(t).or_insert(0.0) += p;
        }
    }
}

impl WorldSink for RelationMarginalsSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        for t in world.relation(self.rel) {
            *self.acc.entry(t.clone()).or_insert(0.0) += weight;
        }
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    forkable!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::FactSet;
    use gdatalog_data::{tuple, Value};

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    /// Feeds the demo table of `expectation::tests` into a sink: {1,2} w.p.
    /// 0.5, {5} w.p. 0.25, {} w.p. 0.25.
    fn feed_demo(sink: &mut dyn WorldSink) {
        let mut d1 = Instance::new();
        d1.insert(r(0), tuple![1i64]);
        d1.insert(r(0), tuple![2i64]);
        sink.observe(d1, 0.5);
        let mut d2 = Instance::new();
        d2.insert(r(0), tuple![5i64]);
        sink.observe(d2, 0.25);
        sink.observe(Instance::new(), 0.25);
    }

    #[test]
    fn world_table_round_trips() {
        let mut sink = WorldTableSink::new();
        feed_demo(&mut sink);
        sink.observe_deficit(DeficitKind::Truncation, 0.0);
        let w = sink.finish();
        assert_eq!(w.len(), 3);
        assert!(w.mass_is_consistent(1e-12));
    }

    #[test]
    fn marginal_streams() {
        let mut sink = MarginalSink::new(Fact::new(r(0), tuple![1i64]));
        feed_demo(&mut sink);
        assert!((sink.finish() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn event_probability_streams() {
        let ev = Event::count_exactly(FactSet::whole_relation(r(0)), 2);
        let mut sink = EventProbabilitySink::new(ev);
        feed_demo(&mut sink);
        sink.observe_deficit(DeficitKind::Nontermination, 0.1);
        assert!((sink.finish() - 0.5).abs() < 1e-12, "deficit never counts");
    }

    #[test]
    fn moments_match_expectation_module() {
        // E[sum] = 0.5·3 + 0.25·5 + 0.25·0 = 2.75, as in query_moments.
        let q = Query::Rel(r(0));
        let mut sink = MomentsSink::new(q, AggFun::Sum, 0.0);
        feed_demo(&mut sink);
        let m = sink.finish().unwrap();
        assert!((m.mean - 2.75).abs() < 1e-12);
        assert!((m.mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_weights_by_world() {
        let mut sink = HistogramSink::new(r(0), 0, 0.0, 10.0, 10);
        feed_demo(&mut sink);
        let h = sink.finish();
        assert!(
            (h.bins[1] - 0.5).abs() < 1e-12,
            "value 1 from the 0.5 world"
        );
        assert!((h.bins[2] - 0.5).abs() < 1e-12);
        assert!((h.bins[5] - 0.25).abs() < 1e-12);
        assert!((h.total() - 1.25).abs() < 1e-12, "E[|R|]");
        assert!((h.mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_routes_nan_to_its_own_counter() {
        // Regression: NaN fails both `< lo` and `>= hi` and `NaN as usize`
        // is 0, so NaN used to be silently counted in bin 0. (The engine's
        // own `Value` type rejects NaN at construction, but the histogram
        // is public API and its binning arithmetic must stay total.)
        let mut sink = HistogramSink::new(r(0), 0, 0.0, 10.0, 10);
        let mut world = Instance::new();
        world.insert(r(0), tuple![0.5]);
        sink.observe(world, 1.0);
        let mut h = sink.finish();
        h.deposit(f64::NAN, 1.0);
        assert!((h.nan - 1.0).abs() < 1e-12, "NaN counted explicitly");
        assert!((h.bins[0] - 1.0).abs() < 1e-12, "only the real 0.5 value");
        assert!(
            (h.total() - 2.0).abs() < 1e-12,
            "total includes the NaN bucket"
        );
        // Infinities are orderable and go to the flow counters, not NaN.
        h.deposit(f64::INFINITY, 1.0);
        h.deposit(f64::NEG_INFINITY, 1.0);
        assert!((h.overflow - 1.0).abs() < 1e-12);
        assert!((h.underflow - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deposit_is_total_on_a_binless_histogram() {
        // All fields are pub, so a caller can hand-build a histogram with
        // no bins; deposit must stay total instead of indexing bins[-1].
        let mut h = ColumnHistogram {
            lo: 0.0,
            hi: 1.0,
            bins: Vec::new(),
            underflow: 0.0,
            overflow: 0.0,
            nan: 0.0,
            mass: 0.0,
        };
        h.deposit(0.5, 1.0);
        assert!((h.overflow - 1.0).abs() < 1e-12, "in-range → overflow");
        h.deposit(-1.0, 1.0);
        assert!((h.underflow - 1.0).abs() < 1e-12);
        assert!((h.total() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid histogram spec")]
    fn histogram_rejects_infinite_bounds() {
        // An infinite range makes the bin-width arithmetic produce NaN
        // indices (everything would land in bin 0).
        let _ = HistogramSink::new(r(0), 0, f64::NEG_INFINITY, f64::INFINITY, 10);
    }

    #[test]
    fn histogram_bin_convention_is_half_open() {
        // [lo, hi) with half-open bins: lo lands in bin 0, hi overflows.
        let mut sink = HistogramSink::new(r(0), 0, 0.0, 2.0, 2);
        let mut world = Instance::new();
        world.insert(r(0), tuple![0.0]);
        world.insert(r(0), tuple![1.0]);
        world.insert(r(0), tuple![2.0]);
        sink.observe(world, 1.0);
        let h = sink.finish();
        assert!((h.bins[0] - 1.0).abs() < 1e-12, "lo is inclusive");
        assert!((h.bins[1] - 1.0).abs() < 1e-12, "interior boundary goes up");
        assert!((h.overflow - 1.0).abs() < 1e-12, "hi is exclusive");
    }

    #[test]
    fn normalizing_sink_tracks_totals_and_ess() {
        let mut sink = NormalizingSink::new(MarginalSink::new(Fact::new(r(0), tuple![1i64])));
        let mut with = Instance::new();
        with.insert(r(0), tuple![1i64]);
        sink.observe(with.clone(), 0.6);
        sink.observe(Instance::new(), 0.2);
        sink.observe_deficit(DeficitKind::Nontermination, 0.2);
        let (inner, stats) = sink.finish();
        assert!((stats.total - 0.8).abs() < 1e-12, "deficits excluded");
        assert_eq!(stats.worlds, 2);
        // Self-normalized conditional marginal.
        assert!((inner.finish() / stats.total - 0.75).abs() < 1e-12);
        // ESS: (0.8)^2 / (0.36 + 0.04) = 1.6.
        assert!((stats.ess() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn normalizing_sink_forks_and_joins_with_inner() {
        let mut main = NormalizingSink::new(MarginalSink::new(Fact::new(r(0), tuple![1i64])));
        let mut w1 = main.fork().unwrap();
        let mut w2 = main.fork().unwrap();
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        w1.observe(d.clone(), 0.25);
        w2.observe(d, 0.5);
        w2.observe(Instance::new(), 0.25);
        main.join(w1);
        main.join(w2);
        let (inner, stats) = main.finish();
        assert!((stats.total - 1.0).abs() < 1e-12);
        assert_eq!(stats.worlds, 3);
        assert!((inner.finish() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn relation_marginals_stream() {
        let mut sink = RelationMarginalsSink::new(r(0));
        feed_demo(&mut sink);
        let ms = sink.finish();
        assert_eq!(ms.len(), 3);
        assert!((ms[0].1 - 0.5).abs() < 1e-12);
        assert!((ms[2].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn multiplex_fans_one_stream_into_many_sinks() {
        let mut mux = MultiplexSink::new(vec![
            Box::new(MarginalSink::new(Fact::new(r(0), tuple![1i64]))),
            Box::new(MomentsSink::new(Query::Rel(r(0)), AggFun::Count, 0.0)),
            Box::new(HistogramSink::new(r(0), 0, 0.0, 10.0, 10)),
        ]);
        feed_demo(&mut mux);
        mux.observe_deficit(DeficitKind::Nontermination, 0.0);
        let mut sinks = mux.into_sinks().into_iter();
        let marginal = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<MarginalSink>()
            .unwrap();
        assert!((marginal.finish() - 0.5).abs() < 1e-12);
        let moments = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<MomentsSink>()
            .unwrap();
        assert!((moments.finish().unwrap().mean - 1.25).abs() < 1e-12);
        let hist = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<HistogramSink>()
            .unwrap();
        assert!((hist.finish().total() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn multiplex_fold_is_bit_identical_to_standalone_sinks() {
        // The fan-out must not perturb any statistic: same observations,
        // same fold order, bit-identical result.
        let mut standalone = MarginalSink::new(Fact::new(r(0), tuple![1i64]));
        feed_demo(&mut standalone);
        let mut mux = MultiplexSink::new(vec![
            Box::new(MarginalSink::new(Fact::new(r(0), tuple![1i64]))),
            Box::new(EventProbabilitySink::new(Event::count_exactly(
                FactSet::whole_relation(r(0)),
                2,
            ))),
        ]);
        feed_demo(&mut mux);
        let folded = mux
            .into_sinks()
            .remove(0)
            .into_any()
            .downcast::<MarginalSink>()
            .unwrap();
        assert_eq!(folded.finish().to_bits(), standalone.finish().to_bits());
    }

    #[test]
    fn multiplex_forks_and_joins_in_chunk_order() {
        let mut main = MultiplexSink::new(vec![
            Box::new(MarginalSink::new(Fact::new(r(0), tuple![1i64]))),
            Box::new(RelationMarginalsSink::new(r(0))),
        ]);
        let mut w1 = main.fork().unwrap();
        let mut w2 = main.fork().unwrap();
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        w1.observe(d.clone(), 0.25);
        w2.observe(d, 0.5);
        w2.observe(Instance::new(), 0.25);
        main.join(w1);
        main.join(w2);
        let mut sinks = main.into_sinks().into_iter();
        let marginal = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<MarginalSink>()
            .unwrap();
        assert!((marginal.finish() - 0.75).abs() < 1e-12);
        let rels = sinks
            .next()
            .unwrap()
            .into_any()
            .downcast::<RelationMarginalsSink>()
            .unwrap();
        assert_eq!(rels.finish().len(), 1);
    }

    #[test]
    fn empty_multiplex_is_a_null_sink() {
        let mut mux = MultiplexSink::new(Vec::new());
        assert!(mux.is_empty());
        feed_demo(&mut mux);
        assert!(mux.fork().is_some(), "vacuously forkable");
    }

    #[test]
    fn quantile_streams_weighted_order_statistics() {
        // Values 1, 2 (weight 0.5 each via the 0.5-world) and 5 (0.25).
        let mut sink = QuantileSink::new(r(0), 0, 0.5);
        feed_demo(&mut sink);
        // Total value weight 1.25; cumulative: 1 → 0.5, 2 → 1.0, 5 → 1.25.
        // Median target 0.625 lands on value 2.
        assert_eq!(sink.finish(), Some(2.0));
        let mut lo = QuantileSink::new(r(0), 0, 0.0);
        feed_demo(&mut lo);
        assert_eq!(lo.finish(), Some(1.0));
        let mut hi = QuantileSink::new(r(0), 0, 1.0);
        feed_demo(&mut hi);
        assert_eq!(hi.finish(), Some(5.0));
        // No observed values: None, not a panic.
        let empty = QuantileSink::new(r(0), 0, 0.5);
        assert_eq!(empty.finish(), None);
    }

    #[test]
    fn quantile_forks_and_joins() {
        let mut main = QuantileSink::new(r(0), 0, 0.5);
        let mut w1 = main.fork().unwrap();
        let mut w2 = main.fork().unwrap();
        let mut d1 = Instance::new();
        d1.insert(r(0), tuple![1.0]);
        w1.observe(d1, 0.5);
        let mut d2 = Instance::new();
        d2.insert(r(0), tuple![3.0]);
        w2.observe(d2, 0.5);
        main.join(w1);
        main.join(w2);
        assert_eq!(main.finish(), Some(1.0), "cum 0.5 >= target 0.5");
    }

    #[test]
    #[should_panic(expected = "invalid quantile spec")]
    fn quantile_rejects_out_of_range_q() {
        let _ = QuantileSink::new(r(0), 0, 1.5);
    }

    #[test]
    fn quantile_never_reports_nan() {
        // NaN carries no value mass (observe_ref skips it — total_cmp
        // would sort it after +inf and q = 1 would report Some(NaN)),
        // matching the histogram's explicit-NaN-bucket convention. The
        // accumulator is private and `Value` rejects NaN upstream, so
        // assert the observable contract: the top quantile of a clean
        // stream is the real maximum, never NaN.
        let mut sink = QuantileSink::new(r(0), 0, 1.0);
        let mut world = Instance::new();
        world.insert(r(0), tuple![2.0]);
        world.insert(r(0), tuple![f64::INFINITY]);
        sink.observe(world, 0.5);
        assert_eq!(sink.finish(), Some(f64::INFINITY), "infinities order");
        assert!(!sink.finish().unwrap().is_nan());
    }

    #[test]
    fn fork_join_is_deterministic_merge() {
        let mut main = MarginalSink::new(Fact::new(r(0), tuple![1i64]));
        let mut w1 = main.fork().unwrap();
        let mut w2 = main.fork().unwrap();
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        w1.observe(d.clone(), 0.25);
        w2.observe(d, 0.5);
        main.join(w1);
        main.join(w2);
        assert!((main.finish() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empirical_sink_counts_errors() {
        let mut sink = EmpiricalSink::new();
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        sink.observe(d, 0.5);
        sink.observe_deficit(DeficitKind::Nontermination, 0.5);
        let pdb = sink.finish();
        assert_eq!(pdb.runs(), 2);
        assert_eq!(pdb.errors(), 1);
        let _ = Value::int(0);
    }

    #[test]
    fn scalar_aggregate_conventions() {
        let mut set = std::collections::BTreeSet::new();
        assert!(scalar_aggregate(&set, AggFun::Count).is_none());
        set.insert(tuple!["a", 2.0]);
        set.insert(tuple!["b", 4.0]);
        assert_eq!(scalar_aggregate(&set, AggFun::Count), Some(2.0));
        assert_eq!(scalar_aggregate(&set, AggFun::Sum), Some(6.0));
        assert_eq!(scalar_aggregate(&set, AggFun::Avg), Some(3.0));
        assert_eq!(scalar_aggregate(&set, AggFun::Min), Some(2.0));
        assert_eq!(scalar_aggregate(&set, AggFun::Max), Some(4.0));
    }
}
