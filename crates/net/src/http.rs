//! Minimal HTTP/1.1 framing over a [`TcpStream`] — just enough protocol
//! for the serving endpoints, with no external dependencies.
//!
//! Both sides of the wire live here: [`Conn::read_request`] /
//! [`Conn::write_response`] serve the listener, while
//! [`Conn::write_request`] / [`Conn::read_response`] drive the load
//! generator's client connections. Framing is strict `Content-Length`
//! (no chunked bodies): every serving payload is one JSON document whose
//! size is known before a single byte of it is written.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request/status line plus headers, independent of the
/// configurable body cap: a peer that never sends `\r\n\r\n` must not be
/// able to grow the connection buffer without bound.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The method token (`GET`, `POST`, …).
    pub method: String,
    /// The request target, e.g. `/v1/batch`.
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// defaults to yes unless `Connection: close`).
    pub keep_alive: bool,
}

/// One parsed HTTP response (the client side of the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// The status code from the status line.
    pub status: u16,
    /// The response body.
    pub body: String,
}

/// Why reading a message off the wire failed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly **between** messages — the
    /// normal end of a keep-alive conversation, not a fault.
    Closed,
    /// A socket error, including read/write timeouts.
    Io(io::Error),
    /// The declared `Content-Length` exceeds the configured cap. The
    /// connection must be closed after responding: the oversized body
    /// was refused *before* being read, so it is still on the wire.
    TooLarge {
        /// The body length the peer declared.
        declared: usize,
        /// The configured cap it exceeded.
        limit: usize,
    },
    /// The bytes were not a well-formed HTTP/1.1 message.
    Malformed(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Closed => write!(f, "peer closed the connection"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
            HttpError::TooLarge { declared, limit } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds the {limit}-byte cap"
                )
            }
            HttpError::Malformed(msg) => write!(f, "malformed HTTP message: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A buffered HTTP/1.1 connection, usable in either role.
pub struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet consumed — a pipelining peer may have
    /// sent the next message right behind the current one.
    buf: Vec<u8>,
}

impl Conn {
    /// Wraps an accepted or connected stream.
    pub fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
        }
    }

    /// The underlying stream, e.g. to set socket timeouts.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Reads more bytes into the buffer; 0 means EOF.
    fn fill(&mut self) -> Result<usize, HttpError> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk).map_err(HttpError::Io)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Buffers until the end-of-headers marker; returns its offset.
    fn read_head(&mut self) -> Result<usize, HttpError> {
        loop {
            if let Some(pos) = find(&self.buf, b"\r\n\r\n") {
                return Ok(pos);
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::Malformed(format!(
                    "header section exceeds {MAX_HEAD_BYTES} bytes"
                )));
            }
            if self.fill()? == 0 {
                return if self.buf.is_empty() {
                    Err(HttpError::Closed)
                } else {
                    Err(HttpError::Malformed(
                        "connection closed mid-message".to_string(),
                    ))
                };
            }
        }
    }

    /// Buffers `len` body bytes past `body_start`, consumes the whole
    /// message and returns the body.
    fn read_body(&mut self, body_start: usize, len: usize) -> Result<String, HttpError> {
        while self.buf.len() < body_start + len {
            if self.fill()? == 0 {
                return Err(HttpError::Malformed(
                    "connection closed mid-body".to_string(),
                ));
            }
        }
        let body = String::from_utf8_lossy(&self.buf[body_start..body_start + len]).into_owned();
        self.buf.drain(..body_start + len);
        Ok(body)
    }

    /// Reads one request, refusing declared bodies above `max_body`
    /// **before** reading a byte of them.
    ///
    /// # Errors
    /// [`HttpError::Closed`] on a clean close between requests, otherwise
    /// socket/framing/size errors.
    pub fn read_request(&mut self, max_body: usize) -> Result<HttpRequest, HttpError> {
        let head_end = self.read_head()?;
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => {
                (m.to_string(), p.to_string(), v)
            }
            _ => {
                return Err(HttpError::Malformed(format!(
                    "bad request line: {request_line:?}"
                )))
            }
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!(
                "unsupported protocol version: {version:?}"
            )));
        }
        let mut content_length = 0usize;
        let mut keep_alive = true;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad Content-Length: {value:?}")))?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            }
        }
        if content_length > max_body {
            return Err(HttpError::TooLarge {
                declared: content_length,
                limit: max_body,
            });
        }
        let body = self.read_body(head_end + 4, content_length)?;
        Ok(HttpRequest {
            method,
            path,
            body,
            keep_alive,
        })
    }

    /// Reads one response (client side).
    ///
    /// # Errors
    /// Socket or framing errors.
    pub fn read_response(&mut self) -> Result<HttpResponse, HttpError> {
        let head_end = self.read_head()?;
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::Malformed(format!("bad status line: {status_line:?}")))?;
        let mut content_length = 0usize;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::Malformed(format!("bad Content-Length: {:?}", value.trim()))
                })?;
            }
        }
        let body = self.read_body(head_end + 4, content_length)?;
        Ok(HttpResponse { status, body })
    }

    /// Writes one JSON response as a single buffer.
    ///
    /// # Errors
    /// Socket errors (including write timeouts).
    pub fn write_response(&mut self, status: u16, body: &str, keep_alive: bool) -> io::Result<()> {
        let msg = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: {}\r\n\r\n{body}",
            reason(status),
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        self.stream.write_all(msg.as_bytes())
    }

    /// Writes one JSON request as a single buffer (client side).
    ///
    /// # Errors
    /// Socket errors (including write timeouts).
    pub fn write_request(&mut self, method: &str, path: &str, body: &str) -> io::Result<()> {
        let msg = format!(
            "{method} {path} HTTP/1.1\r\nHost: gdl\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            body.len(),
        );
        self.stream.write_all(msg.as_bytes())
    }
}

/// The reason phrase for every status code this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Status",
    }
}

/// First occurrence of `needle` in `haystack`.
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A connected loopback pair: (client, server).
    fn pair() -> (Conn, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        (Conn::new(client), Conn::new(accepted))
    }

    #[test]
    fn request_and_response_round_trip() {
        let (mut client, mut server) = pair();
        client
            .write_request("POST", "/v1/query", r#"{"kind":"marginal"}"#)
            .unwrap();
        let req = server.read_request(1 << 20).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/query");
        assert_eq!(req.body, r#"{"kind":"marginal"}"#);
        assert!(req.keep_alive);

        server.write_response(200, r#"{"p":0.5}"#, true).unwrap();
        let resp = client.read_response().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, r#"{"p":0.5}"#);
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let (mut client, mut server) = pair();
        client.write_request("POST", "/v1/query", "first").unwrap();
        client.write_request("POST", "/v1/query", "second").unwrap();
        assert_eq!(server.read_request(1 << 20).unwrap().body, "first");
        assert_eq!(server.read_request(1 << 20).unwrap().body, "second");
    }

    #[test]
    fn oversized_declared_body_is_refused_before_reading_it() {
        let (mut client, mut server) = pair();
        // Declare a huge body but never send it: the refusal must come
        // from the Content-Length header alone.
        use std::io::Write;
        client
            .stream
            .write_all(b"POST /v1/batch HTTP/1.1\r\nContent-Length: 999999\r\n\r\n")
            .unwrap();
        match server.read_request(1024) {
            Err(HttpError::TooLarge { declared, limit }) => {
                assert_eq!(declared, 999_999);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_malformed_and_clean_close_is_closed() {
        let (mut client, mut server) = pair();
        use std::io::Write;
        client.stream.write_all(b"not http at all\r\n\r\n").unwrap();
        assert!(matches!(
            server.read_request(1024),
            Err(HttpError::Malformed(_))
        ));

        let (client, mut server) = pair();
        drop(client);
        assert!(matches!(server.read_request(1024), Err(HttpError::Closed)));
    }

    #[test]
    fn connection_close_header_clears_keep_alive() {
        let (mut client, mut server) = pair();
        use std::io::Write;
        client
            .stream
            .write_all(b"GET /v1/stats HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let req = server.read_request(1024).unwrap();
        assert_eq!(req.method, "GET");
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }
}
