//! The long-lived HTTP front end: thread-per-core workers over one
//! shared [`Server`], with admission control, per-request deadlines and
//! body caps enforced *before* any engine work happens.
//!
//! ## Design
//!
//! * **Thread-per-core accept loop.** Every worker runs the same loop
//!   over one shared non-blocking listener: accept a connection, own it
//!   until it closes, poll again. A worker passes its index to
//!   [`Server::execute_for`], so the session it warms lives in *its*
//!   pool shard and is found again on the next request it serves —
//!   per-core session affinity without any routing layer.
//! * **Admission control.** An atomic in-flight gauge refuses work past
//!   `max_inflight` with `503` before parsing the body; the rejection is
//!   counted in the shared [`MetricsRecorder`](gdatalog_serve::MetricsRecorder).
//! * **Deadlines.** `deadline` stamps every admitted request with an
//!   absolute [`Instant`]; the chase checks it cooperatively between
//!   enumeration nodes / sampling runs and the request fails `504`.
//! * **Clean shutdown.** `POST /v1/shutdown` (or [`HttpServer::shutdown`])
//!   flips one flag; workers notice it at the next accept poll (a few
//!   milliseconds) and exit, so [`HttpServer::join`] returns promptly —
//!   no signal handling, no thread leaks.
//!
//! ## Endpoints
//!
//! | Route | Answers |
//! |---|---|
//! | `POST /v1/query` | one request object → one reply object |
//! | `POST /v1/batch` | `{"requests": […]}` or `[…]` → `{"replies": […]}` |
//! | `GET /v1/stats` | metrics + cache + pool counters |
//! | `POST /v1/shutdown` | `{"ok": true}`, then the server drains |
//!
//! Status codes: `503` admission, `504` deadline, `413` body cap, `400`
//! malformed HTTP/JSON/request, `500` other engine errors, `404`/`405`
//! routing.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use gdatalog_core::EngineError;
use gdatalog_lang::SemanticsMode;
use gdatalog_serve::json::Json;
use gdatalog_serve::{Metrics, ProgramCache, Request, ServeError, Server};

use crate::http::{Conn, HttpError, HttpRequest};

/// How often an idle worker polls the shared listener and the shutdown
/// flag. Small enough that accept latency and shutdown are both prompt;
/// large enough that an idle server burns no measurable CPU.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Tuning knobs of the HTTP front end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Accept/serve threads. Each worker owns the connections it accepts
    /// and keeps per-shard session affinity in the pool, so this is also
    /// the number of connections served concurrently — run one per core.
    pub workers: usize,
    /// Admission cap: requests evaluating at once across all workers.
    /// One past the cap is refused with `503` before its body is parsed.
    pub max_inflight: usize,
    /// Largest accepted request body in bytes; beyond it the request is
    /// refused with `413` without reading the body.
    pub max_body_bytes: usize,
    /// Per-request evaluation budget; an admitted request that exceeds
    /// it is cancelled cooperatively and answered `504`. `None` disables
    /// cancellation.
    pub deadline: Option<Duration>,
    /// Socket read timeout — an idle keep-alive connection is dropped
    /// after this long, freeing its worker.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            workers: thread::available_parallelism().map_or(1, |n| n.get()),
            max_inflight: 64,
            max_body_bytes: 1 << 20,
            deadline: None,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Why the server failed to start.
#[derive(Debug)]
pub enum NetError {
    /// The model failed to compile.
    Engine(EngineError),
    /// Binding or configuring the listener failed.
    Io(io::Error),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Engine(e) => write!(f, "{e}"),
            NetError::Io(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

/// State shared by every worker thread.
struct Shared {
    listener: TcpListener,
    server: Server,
    cache: Arc<ProgramCache>,
    config: NetConfig,
    workers: usize,
    inflight: AtomicUsize,
    shutdown: AtomicBool,
}

/// A running HTTP server: worker threads over a bound listener.
///
/// ```
/// use gdatalog_net::{HttpServer, NetConfig};
/// use gdatalog_lang::SemanticsMode;
///
/// let server = HttpServer::start_source(
///     "R(Flip<0.5>) :- true.",
///     SemanticsMode::Grohe,
///     "127.0.0.1:0",
///     NetConfig { workers: 2, ..NetConfig::default() },
/// )
/// .unwrap();
/// assert!(server.addr().port() != 0, "bound to an ephemeral port");
/// server.shutdown();
/// server.join();
/// ```
pub struct HttpServer {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl HttpServer {
    /// Compiles `src` and starts serving it on `addr` (use port 0 for an
    /// ephemeral port; the bound address is [`HttpServer::addr`]).
    ///
    /// # Errors
    /// Compilation or bind errors.
    pub fn start_source(
        src: &str,
        mode: SemanticsMode,
        addr: &str,
        config: NetConfig,
    ) -> Result<HttpServer, NetError> {
        HttpServer::start_cached(Arc::new(ProgramCache::new()), src, mode, addr, config)
    }

    /// [`start_source`](Self::start_source) against a caller-owned
    /// [`ProgramCache`], so several servers (or a server and a batch
    /// path) share compiled models, and `GET /v1/stats` reports the
    /// cache's real hit/miss history.
    ///
    /// # Errors
    /// Compilation or bind errors.
    pub fn start_cached(
        cache: Arc<ProgramCache>,
        src: &str,
        mode: SemanticsMode,
        addr: &str,
        config: NetConfig,
    ) -> Result<HttpServer, NetError> {
        let model = cache.get_or_compile(src, mode).map_err(NetError::Engine)?;
        let listener = TcpListener::bind(addr).map_err(NetError::Io)?;
        listener.set_nonblocking(true).map_err(NetError::Io)?;
        let local = listener.local_addr().map_err(NetError::Io)?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            listener,
            server: Server::new(model).threads(workers),
            cache,
            config,
            workers,
            inflight: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("gdl-net-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn serving worker")
            })
            .collect();
        Ok(HttpServer {
            shared,
            handles,
            addr: local,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of worker threads serving.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// A snapshot of the request metrics.
    pub fn metrics(&self) -> Metrics {
        self.shared.server.metrics()
    }

    /// The `GET /v1/stats` body, available in-process.
    pub fn stats_json(&self) -> String {
        stats_body(&self.shared)
    }

    /// Asks every worker to stop after its current request. Idempotent;
    /// also triggered remotely by `POST /v1/shutdown`.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for every worker to exit. Call [`shutdown`](Self::shutdown)
    /// first (or have a client `POST /v1/shutdown`), or this blocks for
    /// the server's lifetime.
    pub fn join(self) {
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

/// One worker: poll the shared listener, own each accepted connection
/// until it closes, exit when the shutdown flag is up.
fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match shared.listener.accept() {
            Ok((stream, _peer)) => serve_connection(shared, worker, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            // Transient accept errors (connection reset before accept,
            // fd pressure): back off and keep serving.
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

/// How long one blocking read waits before re-checking the shutdown
/// flag. A worker parked on an idle keep-alive connection must still
/// notice shutdown promptly; `Conn`'s buffer persists across retries,
/// so resuming `read_request` mid-message is safe.
const READ_SLICE: Duration = Duration::from_millis(50);

/// Serves one keep-alive connection to completion. The full
/// `read_timeout` bounds the gap between *complete* requests (also a
/// slow-trickle guard: a request must arrive whole within it).
fn serve_connection(shared: &Shared, worker: usize, stream: TcpStream) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout.min(READ_SLICE)));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut conn = Conn::new(stream);
    let mut idle_since = Instant::now();
    loop {
        match conn.read_request(shared.config.max_body_bytes) {
            Err(HttpError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst)
                    || idle_since.elapsed() >= shared.config.read_timeout
                {
                    return;
                }
            }
            Ok(req) => {
                idle_since = Instant::now();
                let (status, body, close) = route(shared, worker, &req);
                let keep = req.keep_alive && !close && !shared.shutdown.load(Ordering::SeqCst);
                if conn.write_response(status, &body, keep).is_err() || !keep {
                    return;
                }
            }
            Err(HttpError::TooLarge { declared, limit }) => {
                // The oversized body was never read, so the connection
                // cannot be reused: respond and close.
                let body = error_body(
                    &format!("request body of {declared} bytes exceeds the {limit}-byte cap"),
                    "too_large",
                );
                let _ = conn.write_response(413, &body, false);
                return;
            }
            Err(HttpError::Malformed(msg)) => {
                let body = error_body(&format!("malformed HTTP request: {msg}"), "malformed");
                let _ = conn.write_response(400, &body, false);
                return;
            }
            Err(HttpError::Closed | HttpError::Io(_)) => return,
        }
    }
}

/// Routes one request to its handler; returns (status, body, close?).
fn route(shared: &Shared, worker: usize, req: &HttpRequest) -> (u16, String, bool) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/query") => admitted(shared, || handle_query(shared, worker, &req.body)),
        ("POST", "/v1/batch") => admitted(shared, || handle_batch(shared, &req.body)),
        ("GET", "/v1/stats") => (200, stats_body(shared), false),
        ("POST", "/v1/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (200, "{\"ok\":true}".to_string(), true)
        }
        (_, "/v1/query" | "/v1/batch" | "/v1/stats" | "/v1/shutdown") => (
            405,
            error_body("method not allowed on this endpoint", "method_not_allowed"),
            false,
        ),
        _ => (
            404,
            error_body(&format!("no such endpoint: {}", req.path), "not_found"),
            false,
        ),
    }
}

/// Runs `f` under the admission gate: past `max_inflight` concurrently
/// evaluating requests the caller is refused with `503` instead.
fn admitted(shared: &Shared, f: impl FnOnce() -> (u16, String)) -> (u16, String, bool) {
    if shared.inflight.fetch_add(1, Ordering::SeqCst) >= shared.config.max_inflight {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        shared
            .server
            .metrics_recorder()
            .record_admission_rejection();
        return (
            503,
            error_body("server at capacity; retry later", "admission"),
            false,
        );
    }
    let (status, body) = f();
    shared.inflight.fetch_sub(1, Ordering::SeqCst);
    (status, body, false)
}

/// Parses one wire request object and stamps the configured deadline.
fn parse_request(shared: &Shared, v: &Json) -> Result<Request, ServeError> {
    let request = Request::from_json(v)?;
    match shared.config.deadline {
        Some(budget) => Ok(request.deadline(Instant::now() + budget)),
        None => Ok(request),
    }
}

/// `POST /v1/query`: one request object in, one reply object out.
fn handle_query(shared: &Shared, worker: usize, body: &str) -> (u16, String) {
    let out = Json::parse(body)
        .map_err(ServeError::from)
        .and_then(|v| parse_request(shared, &v))
        .and_then(|request| shared.server.execute_for(worker, &request));
    match out {
        Ok(reply) => (200, reply.to_json().render()),
        Err(e) => rejected(&e),
    }
}

/// `POST /v1/batch`: a `{"requests": […]}` object (or bare array) in,
/// `{"replies": […]}` out — one slot per request, in request order,
/// evaluation errors inline per slot. A malformed *document* (bad JSON
/// or a bad request spec) fails the whole batch with `400` instead.
fn handle_batch(shared: &Shared, body: &str) -> (u16, String) {
    let doc = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return rejected(&ServeError::from(e)),
    };
    let items = match doc
        .get("requests")
        .and_then(Json::as_array)
        .or_else(|| doc.as_array())
    {
        Some(items) => items,
        None => {
            return rejected(&ServeError::Json(
                "expected a top-level array or an object with a `requests` array".to_string(),
            ))
        }
    };
    let mut requests = Vec::with_capacity(items.len());
    for item in items {
        match parse_request(shared, item) {
            Ok(r) => requests.push(r),
            Err(e) => return rejected(&e),
        }
    }
    let slots: Vec<String> = shared
        .server
        .batch(&requests)
        .iter()
        .map(|slot| match slot {
            Ok(reply) => reply.to_json().render(),
            Err(e) => error_body(&e.to_string(), kind_of(e)),
        })
        .collect();
    (200, format!("{{\"replies\":[{}]}}", slots.join(",")))
}

/// The machine-readable error tag for one serving error.
fn kind_of(e: &ServeError) -> &'static str {
    match e {
        ServeError::Json(_) => "json",
        ServeError::BadRequest(_) => "bad_request",
        ServeError::Engine(EngineError::DeadlineExceeded) => "deadline",
        ServeError::Engine(_) => "engine",
    }
}

/// The HTTP status for one serving error.
fn status_of(e: &ServeError) -> u16 {
    match e {
        ServeError::Json(_) | ServeError::BadRequest(_) => 400,
        ServeError::Engine(EngineError::DeadlineExceeded) => 504,
        ServeError::Engine(_) => 500,
    }
}

/// Status + error body for one serving error.
fn rejected(e: &ServeError) -> (u16, String) {
    (status_of(e), error_body(&e.to_string(), kind_of(e)))
}

/// A `{"error": …, "kind": …}` body with proper string escaping.
fn error_body(message: &str, kind: &str) -> String {
    format!(
        "{{\"error\":{},\"kind\":{}}}",
        Json::Str(message.to_string()).render(),
        Json::Str(kind.to_string()).render(),
    )
}

/// The `GET /v1/stats` body: request metrics plus cache and pool
/// counters, so one curl answers "is the cache warm, are sessions being
/// reused, are we rejecting?".
fn stats_body(shared: &Shared) -> String {
    let m = shared.server.metrics();
    let c = shared.cache.stats();
    let p = shared.server.pool().stats();
    format!(
        "{{\"workers\":{},\"inflight\":{},\"metrics\":{},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{}}},\
         \"pool\":{{\"checkouts\":{},\"created\":{},\"dropped\":{},\
         \"idle\":{},\"max_idle\":{}}}}}",
        shared.workers,
        shared.inflight.load(Ordering::SeqCst),
        m.to_json(),
        c.hits,
        c.misses,
        c.entries,
        p.checkouts,
        p.created,
        p.dropped,
        p.idle,
        p.max_idle,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream;

    const SRC: &str = "rel City(symbol, real) input.
        Earthquake(C, Flip<R>) :- City(C, R).
        Alarm(C) :- Earthquake(C, 1).";

    fn start(config: NetConfig) -> HttpServer {
        HttpServer::start_source(SRC, SemanticsMode::Grohe, "127.0.0.1:0", config).unwrap()
    }

    fn client(server: &HttpServer) -> Conn {
        Conn::new(TcpStream::connect(server.addr()).unwrap())
    }

    const QUERY: &str =
        r#"{"kind":"marginal","fact":"Alarm(sf)","input":"City(sf, 0.3).","backend":"exact"}"#;

    fn post(conn: &mut Conn, path: &str, body: &str) -> (u16, Json) {
        conn.write_request("POST", path, body).unwrap();
        let resp = conn.read_response().unwrap();
        (resp.status, Json::parse(&resp.body).unwrap())
    }

    #[test]
    fn query_endpoint_answers_over_the_wire() {
        let server = start(NetConfig {
            workers: 1,
            ..NetConfig::default()
        });
        let mut conn = client(&server);
        let (status, reply) = post(&mut conn, "/v1/query", QUERY);
        assert_eq!(status, 200);
        assert_eq!(reply.get("kind").and_then(Json::as_str), Some("marginal"));
        assert_eq!(reply.get("p").and_then(Json::as_f64), Some(0.3));
        server.shutdown();
        server.join();
    }

    #[test]
    fn keep_alive_reuses_the_connection_and_the_session() {
        let server = start(NetConfig {
            workers: 1,
            ..NetConfig::default()
        });
        let mut conn = client(&server);
        for _ in 0..5 {
            let (status, _) = post(&mut conn, "/v1/query", QUERY);
            assert_eq!(status, 200);
        }
        let m = server.metrics();
        assert_eq!(m.requests, 5);
        assert_eq!(m.errors, 0);
        // One worker, keep-alive, shard affinity: one session serves all
        // five requests.
        assert_eq!(server.shared.server.pool().stats().created, 1);
        server.shutdown();
        server.join();
    }

    #[test]
    fn batch_endpoint_answers_in_request_order() {
        let server = start(NetConfig {
            workers: 2,
            ..NetConfig::default()
        });
        let requests: Vec<String> = (0..6)
            .map(|i| {
                format!(
                    r#"{{"kind":"marginal","fact":"Alarm(c{i})","input":"City(c{i}, 0.{i}).","backend":"exact"}}"#
                )
            })
            .collect();
        let body = format!("{{\"requests\":[{}]}}", requests.join(","));
        let mut conn = client(&server);
        let (status, reply) = post(&mut conn, "/v1/batch", &body);
        assert_eq!(status, 200);
        let replies = reply.get("replies").and_then(Json::as_array).unwrap();
        assert_eq!(replies.len(), 6);
        for (i, slot) in replies.iter().enumerate() {
            let expected = i as f64 / 10.0;
            let got = slot.get("p").and_then(Json::as_f64).unwrap();
            assert!((got - expected).abs() < 1e-12, "slot {i}: {got}");
        }
        server.shutdown();
        server.join();
    }

    #[test]
    fn routing_errors_are_404_and_405() {
        let server = start(NetConfig {
            workers: 1,
            ..NetConfig::default()
        });
        let mut conn = client(&server);
        let (status, body) = post(&mut conn, "/v1/nope", "{}");
        assert_eq!(status, 404);
        assert_eq!(body.get("kind").and_then(Json::as_str), Some("not_found"));
        // Wrong method on a real endpoint.
        conn.write_request("GET", "/v1/query", "").unwrap();
        assert_eq!(conn.read_response().unwrap().status, 405);
        server.shutdown();
        server.join();
    }

    #[test]
    fn bad_json_is_400() {
        let server = start(NetConfig {
            workers: 1,
            ..NetConfig::default()
        });
        let mut conn = client(&server);
        let (status, body) = post(&mut conn, "/v1/query", "{nope");
        assert_eq!(status, 400);
        assert_eq!(body.get("kind").and_then(Json::as_str), Some("json"));
        let (status, body) = post(&mut conn, "/v1/query", r#"{"kind":"teleport"}"#);
        assert_eq!(status, 400);
        assert_eq!(body.get("kind").and_then(Json::as_str), Some("bad_request"));
        server.shutdown();
        server.join();
    }

    #[test]
    fn oversized_body_is_413_and_closes_the_connection() {
        let server = start(NetConfig {
            workers: 1,
            max_body_bytes: 64,
            ..NetConfig::default()
        });
        let mut conn = client(&server);
        let big = format!(
            r#"{{"kind":"marginal","fact":"Alarm(sf)","input":"{}"}}"#,
            "City(sf, 0.3). ".repeat(64)
        );
        let (status, body) = post(&mut conn, "/v1/query", &big);
        assert_eq!(status, 413);
        assert_eq!(body.get("kind").and_then(Json::as_str), Some("too_large"));
        // The server closed after the 413; the next read sees EOF.
        assert!(conn.read_response().is_err());
        server.shutdown();
        server.join();
    }

    #[test]
    fn admission_cap_rejects_with_503_and_counts_it() {
        let server = start(NetConfig {
            workers: 1,
            max_inflight: 0,
            ..NetConfig::default()
        });
        let mut conn = client(&server);
        let (status, body) = post(&mut conn, "/v1/query", QUERY);
        assert_eq!(status, 503);
        assert_eq!(body.get("kind").and_then(Json::as_str), Some("admission"));
        assert_eq!(server.metrics().admission_rejections, 1);
        // Stats keep serving even at capacity.
        conn.write_request("GET", "/v1/stats", "").unwrap();
        assert_eq!(conn.read_response().unwrap().status, 200);
        server.shutdown();
        server.join();
    }

    #[test]
    fn expired_deadline_is_504_and_counts_it() {
        let server = start(NetConfig {
            workers: 1,
            deadline: Some(Duration::ZERO),
            ..NetConfig::default()
        });
        let mut conn = client(&server);
        let (status, body) = post(&mut conn, "/v1/query", QUERY);
        assert_eq!(status, 504);
        assert_eq!(body.get("kind").and_then(Json::as_str), Some("deadline"));
        assert_eq!(server.metrics().deadline_rejections, 1);
        server.shutdown();
        server.join();
    }

    #[test]
    fn stats_endpoint_reports_every_counter_group() {
        let server = start(NetConfig {
            workers: 1,
            ..NetConfig::default()
        });
        let mut conn = client(&server);
        let (status, _) = post(&mut conn, "/v1/query", QUERY);
        assert_eq!(status, 200);
        conn.write_request("GET", "/v1/stats", "").unwrap();
        let resp = conn.read_response().unwrap();
        assert_eq!(resp.status, 200);
        let stats = Json::parse(&resp.body).unwrap();
        assert_eq!(stats.get("workers").and_then(Json::as_u64), Some(1));
        let metrics = stats.get("metrics").unwrap();
        assert_eq!(metrics.get("requests").and_then(Json::as_u64), Some(1));
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
        let pool = stats.get("pool").unwrap();
        assert_eq!(pool.get("checkouts").and_then(Json::as_u64), Some(1));
        server.shutdown();
        server.join();
    }

    #[test]
    fn shutdown_endpoint_stops_every_worker() {
        let server = start(NetConfig {
            workers: 2,
            ..NetConfig::default()
        });
        let mut conn = client(&server);
        let (status, body) = post(&mut conn, "/v1/shutdown", "");
        assert_eq!(status, 200);
        assert_eq!(body.get("ok").and_then(Json::as_bool), Some(true));
        assert!(server.is_shutting_down());
        // Both workers observe the flag and exit; join returns.
        server.join();
    }

    #[test]
    fn malformed_http_is_400_and_closes() {
        let server = start(NetConfig {
            workers: 1,
            ..NetConfig::default()
        });
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut conn = Conn::new(stream);
        use std::io::Write;
        conn.stream()
            .try_clone()
            .unwrap()
            .write_all(b"garbage\r\n\r\n")
            .unwrap();
        let resp = conn.read_response().unwrap();
        assert_eq!(resp.status, 400);
        server.shutdown();
        server.join();
    }
}
