//! An open-loop load generator for the HTTP front end: N keep-alive
//! connections cycling through a request corpus, reporting throughput
//! and exact latency percentiles.
//!
//! Without a target rate each connection issues back-to-back requests
//! (closed-loop per connection, which measures server capacity). With
//! [`LoadgenConfig::rate`] set, requests fire on a fixed global schedule
//! regardless of how fast replies come back — the open-loop discipline
//! that exposes queueing delay instead of coordinated omission hiding
//! it: a slow reply does not postpone the next request's *scheduled*
//! time, so the wait shows up in the measured latency.
//!
//! Percentiles are exact (sorted per-request microseconds), unlike the
//! server's own bucketed [`gdatalog_serve::Metrics`] — the two should
//! agree to within a bucket width.

use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use gdatalog_serve::json::Json;
use gdatalog_serve::ServeError;

use crate::http::Conn;

/// What traffic to drive where.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Endpoint to post to (default `/v1/query`).
    pub path: String,
    /// Concurrent keep-alive connections. Match the server's worker
    /// count to measure capacity; exceed it to measure admission.
    pub connections: usize,
    /// How long to drive traffic.
    pub duration: Duration,
    /// Target request rate across all connections (requests/second).
    /// `None` = closed-loop: each connection sends as fast as replies
    /// arrive.
    pub rate: Option<f64>,
    /// Socket timeout for connect/read/write.
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: "127.0.0.1:7171".to_string(),
            path: "/v1/query".to_string(),
            connections: 1,
            duration: Duration::from_secs(5),
            rate: None,
            timeout: Duration::from_secs(10),
        }
    }
}

/// What happened during one load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Requests sent (whether or not a reply arrived).
    pub sent: u64,
    /// Replies with a 2xx status.
    pub ok_2xx: u64,
    /// Replies with any other status (including 503/504 rejections —
    /// those are the server *working as configured*, counted separately
    /// from transport failures).
    pub non_2xx: u64,
    /// Requests that died on the socket (connect/read/write errors).
    pub io_errors: u64,
    /// Wall-clock of the run in milliseconds.
    pub elapsed_ms: u64,
    /// Completed requests per second (2xx + non-2xx over wall-clock).
    pub req_per_sec: f64,
    /// Mean reply latency, microseconds.
    pub mean_us: u64,
    /// Median reply latency, microseconds (exact, not bucketed).
    pub p50_us: u64,
    /// 99th-percentile reply latency, microseconds (exact).
    pub p99_us: u64,
}

impl LoadgenReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sent\":{},\"ok_2xx\":{},\"non_2xx\":{},\"io_errors\":{},\
             \"elapsed_ms\":{},\"req_per_sec\":{:.2},\
             \"latency_us\":{{\"mean\":{},\"p50\":{},\"p99\":{}}}}}",
            self.sent,
            self.ok_2xx,
            self.non_2xx,
            self.io_errors,
            self.elapsed_ms,
            self.req_per_sec,
            self.mean_us,
            self.p50_us,
            self.p99_us,
        )
    }
}

/// Extracts the request corpus from a JSON document: either a top-level
/// array of request objects or an object with a `requests` array (the
/// same shapes `POST /v1/batch` accepts). Each element is re-rendered to
/// its own wire body.
///
/// # Errors
/// [`ServeError::Json`] when the document parses but has neither shape,
/// or does not parse at all.
pub fn bodies_from_json(doc: &str) -> Result<Vec<String>, ServeError> {
    let parsed = Json::parse(doc).map_err(ServeError::from)?;
    let items = parsed
        .get("requests")
        .and_then(Json::as_array)
        .or_else(|| parsed.as_array())
        .ok_or_else(|| {
            ServeError::Json(
                "expected a top-level array of requests or an object with a `requests` array"
                    .to_string(),
            )
        })?;
    if items.is_empty() {
        return Err(ServeError::Json("the request corpus is empty".to_string()));
    }
    Ok(items.iter().map(Json::render).collect())
}

/// What one connection thread measured.
struct ConnTally {
    sent: u64,
    ok_2xx: u64,
    non_2xx: u64,
    io_errors: u64,
    latencies_us: Vec<u64>,
}

/// Drives `bodies` at the server and reports when the duration elapses.
/// Transport failures are counted, not fatal: a report with nothing but
/// `io_errors` means the server was unreachable.
pub fn run(bodies: &[String], config: &LoadgenConfig) -> LoadgenReport {
    assert!(!bodies.is_empty(), "loadgen needs a non-empty corpus");
    let connections = config.connections.max(1);
    let started = Instant::now();
    let deadline = started + config.duration;
    let tallies: Vec<ConnTally> = thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|t| {
                scope.spawn(move || drive_connection(t, connections, bodies, config, deadline))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> = Vec::new();
    let (mut sent, mut ok_2xx, mut non_2xx, mut io_errors) = (0u64, 0u64, 0u64, 0u64);
    for tally in tallies {
        sent += tally.sent;
        ok_2xx += tally.ok_2xx;
        non_2xx += tally.non_2xx;
        io_errors += tally.io_errors;
        latencies.extend(tally.latencies_us);
    }
    latencies.sort_unstable();
    let completed = ok_2xx + non_2xx;
    let mean_us = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };
    LoadgenReport {
        sent,
        ok_2xx,
        non_2xx,
        io_errors,
        elapsed_ms: elapsed.as_millis() as u64,
        req_per_sec: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        mean_us,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    }
}

/// One connection: connect, then fire until the deadline.
fn drive_connection(
    thread_ix: usize,
    connections: usize,
    bodies: &[String],
    config: &LoadgenConfig,
    deadline: Instant,
) -> ConnTally {
    let mut tally = ConnTally {
        sent: 0,
        ok_2xx: 0,
        non_2xx: 0,
        io_errors: 0,
        latencies_us: Vec::new(),
    };
    let mut conn = match connect(config) {
        Some(conn) => conn,
        None => {
            tally.io_errors += 1;
            return tally;
        }
    };
    // The open-loop schedule interleaves threads: request k of thread t
    // is the (t + k·connections)-th global request, due at
    // start + global/rate.
    let start = deadline - config.duration;
    let mut k = 0u64;
    while Instant::now() < deadline {
        if let Some(rate) = config.rate {
            let global = thread_ix as u64 + k * connections as u64;
            let due = start + Duration::from_secs_f64(global as f64 / rate);
            if due >= deadline {
                break;
            }
            let now = Instant::now();
            if due > now {
                thread::sleep(due - now);
            }
        }
        let body = &bodies[(k as usize) % bodies.len()];
        let sent_at = Instant::now();
        tally.sent += 1;
        let outcome = conn
            .write_request("POST", &config.path, body)
            .map_err(|e| e.to_string())
            .and_then(|()| conn.read_response().map_err(|e| e.to_string()));
        match outcome {
            Ok(resp) => {
                tally
                    .latencies_us
                    .push(sent_at.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                if (200..300).contains(&resp.status) {
                    tally.ok_2xx += 1;
                } else {
                    tally.non_2xx += 1;
                }
            }
            Err(_) => {
                tally.io_errors += 1;
                // One reconnect attempt keeps a dropped keep-alive
                // connection (server restart, idle timeout) from ending
                // the thread early; a dead server ends it.
                match connect(config) {
                    Some(fresh) => conn = fresh,
                    None => break,
                }
            }
        }
        k += 1;
    }
    tally
}

/// One configured client connection, or `None` if the connect failed.
fn connect(config: &LoadgenConfig) -> Option<Conn> {
    let stream = TcpStream::connect(&config.addr).ok()?;
    stream.set_read_timeout(Some(config.timeout)).ok()?;
    stream.set_write_timeout(Some(config.timeout)).ok()?;
    stream.set_nodelay(true).ok()?;
    Some(Conn::new(stream))
}

/// The exact `q`-quantile of sorted latencies (nearest-rank).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{HttpServer, NetConfig};
    use gdatalog_lang::SemanticsMode;

    const SRC: &str = "rel City(symbol, real) input.
        Earthquake(C, Flip<R>) :- City(C, R).
        Alarm(C) :- Earthquake(C, 1).";

    #[test]
    fn corpus_accepts_both_wire_shapes_and_rejects_others() {
        let arr = r#"[{"kind":"marginal","fact":"A(x)"}]"#;
        assert_eq!(bodies_from_json(arr).unwrap().len(), 1);
        let obj =
            r#"{"requests":[{"kind":"marginal","fact":"A(x)"},{"kind":"marginals","rel":"A"}]}"#;
        assert_eq!(bodies_from_json(obj).unwrap().len(), 2);
        assert!(bodies_from_json(r#"{"nope":1}"#).is_err());
        assert!(bodies_from_json("[]").is_err());
        assert!(bodies_from_json("{{{").is_err());
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn loadgen_drives_a_live_server_and_reports() {
        let server = HttpServer::start_source(
            SRC,
            SemanticsMode::Grohe,
            "127.0.0.1:0",
            NetConfig {
                workers: 2,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let bodies = bodies_from_json(
            r#"[{"kind":"marginal","fact":"Alarm(sf)","input":"City(sf, 0.3).","backend":"exact"}]"#,
        )
        .unwrap();
        let report = run(
            &bodies,
            &LoadgenConfig {
                addr: server.addr().to_string(),
                connections: 2,
                duration: Duration::from_millis(300),
                ..LoadgenConfig::default()
            },
        );
        assert!(report.sent > 0, "drove traffic: {report:?}");
        assert_eq!(report.io_errors, 0, "no transport failures: {report:?}");
        assert_eq!(report.non_2xx, 0, "all 2xx: {report:?}");
        assert_eq!(report.ok_2xx, report.sent);
        assert!(report.p50_us > 0 && report.p99_us >= report.p50_us);
        let rendered = report.to_json();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(
            parsed.get("ok_2xx").and_then(Json::as_u64),
            Some(report.ok_2xx)
        );
        server.shutdown();
        server.join();
    }

    #[test]
    fn open_loop_rate_caps_the_request_count() {
        let server = HttpServer::start_source(
            SRC,
            SemanticsMode::Grohe,
            "127.0.0.1:0",
            NetConfig {
                workers: 1,
                ..NetConfig::default()
            },
        )
        .unwrap();
        let bodies = bodies_from_json(
            r#"[{"kind":"marginal","fact":"Alarm(sf)","input":"City(sf, 0.3).","backend":"exact"}]"#,
        )
        .unwrap();
        let report = run(
            &bodies,
            &LoadgenConfig {
                addr: server.addr().to_string(),
                connections: 1,
                duration: Duration::from_millis(400),
                rate: Some(20.0),
                ..LoadgenConfig::default()
            },
        );
        // 20 req/s for 0.4 s schedules at most 8 sends; closed-loop on
        // this corpus would do hundreds.
        assert!(report.sent <= 8, "rate-limited: {report:?}");
        assert!(report.sent >= 1);
        server.shutdown();
        server.join();
    }
}
