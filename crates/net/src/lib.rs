#![warn(missing_docs)]

//! # gdatalog-net
//!
//! The network front end over [`gdatalog_serve`]: a long-lived,
//! dependency-free HTTP/1.1 server for the batch wire format, plus the
//! load generator that measures it.
//!
//! The serving layer already gives a process everything but a socket —
//! a [`gdatalog_serve::ProgramCache`] so each program compiles once, a
//! sharded [`gdatalog_serve::SessionPool`] of warm sessions, a
//! work-stealing batch executor whose answers are bit-identical to
//! sequential evaluation, and a [`gdatalog_serve::MetricsRecorder`].
//! This crate puts that behind `std::net`:
//!
//! * [`HttpServer`] — thread-per-core workers over one shared listener;
//!   each worker keeps per-shard session affinity, so the model a
//!   connection warms stays hot for that worker's next request.
//!   Admission control (`503`), cooperative per-request deadlines
//!   (`504`), body caps (`413`) and socket timeouts make overload shed
//!   load instead of queueing it. `POST /v1/query`, `POST /v1/batch`,
//!   `GET /v1/stats`, `POST /v1/shutdown`.
//! * [`http`] — minimal HTTP/1.1 framing (strict `Content-Length`, no
//!   chunked bodies) used by both the server and the client side.
//! * [`loadgen`] — an open-loop load generator: N keep-alive
//!   connections cycling a request corpus, reporting req/s and exact
//!   p50/p99 latency.
//!
//! Everything is hand-rolled over `std::net` — the workspace policy is
//! zero external runtime dependencies, and HTTP/1.1 with
//! `Content-Length` framing is small enough to own.
//!
//! ```
//! use gdatalog_net::{HttpServer, NetConfig};
//! use gdatalog_lang::SemanticsMode;
//! use std::net::TcpStream;
//!
//! let server = HttpServer::start_source(
//!     "R(Flip<0.5>) :- true.",
//!     SemanticsMode::Grohe,
//!     "127.0.0.1:0",            // ephemeral port
//!     NetConfig { workers: 1, ..NetConfig::default() },
//! )
//! .unwrap();
//!
//! let mut conn = gdatalog_net::http::Conn::new(TcpStream::connect(server.addr()).unwrap());
//! conn.write_request("POST", "/v1/query", r#"{"kind":"marginal","fact":"R(1)"}"#).unwrap();
//! let resp = conn.read_response().unwrap();
//! assert_eq!(resp.status, 200);
//! let reply = gdatalog_serve::json::Json::parse(&resp.body).unwrap();
//! assert_eq!(reply.get("p").and_then(|p| p.as_f64()), Some(0.5));
//!
//! server.shutdown();
//! server.join();
//! ```

pub mod http;
pub mod loadgen;
pub mod server;

pub use http::{Conn, HttpError, HttpRequest, HttpResponse};
pub use loadgen::{bodies_from_json, run as run_loadgen, LoadgenConfig, LoadgenReport};
pub use server::{HttpServer, NetConfig, NetError};
