//! The acceptance property of the learning subsystem: **fit → sample →
//! refit recovers the parameters**, end to end through the facts-text
//! dataset format.
//!
//! For every closed-form family, the test samples a dataset from known
//! parameters `θ*` (via the distribution itself, rendered as the exact
//! facts text `gdl sample --format facts` emits), fits the holed program,
//! and asserts the estimate lies within a standard-error-based tolerance
//! of `θ*`. A second set of tests cross-checks the **latent EM path**
//! against exact posterior enumeration on a discrete instance.

use std::fmt::Write as _;
use std::sync::Arc;

use gdatalog_core::Session;
use gdatalog_data::Value;
use gdatalog_dist::{ParamDist, Registry};
use gdatalog_lang::SemanticsMode;
use gdatalog_learn::{fit_program, FitOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Samples `n` draws of `dist(params)` and renders them as a dataset with
/// one `% run k` block per draw.
fn dataset(dist: &str, params: &[Value], rel: &str, n: usize, seed: u64) -> String {
    let reg = Registry::standard();
    let d = reg.get(dist).expect("standard family");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut text = String::new();
    for k in 0..n {
        let v = d.sample(params, &mut rng).expect("admissible parameters");
        let _ = writeln!(text, "% run {k}\n{rel}({v}).");
    }
    text
}

/// Fits `src` against `data` and returns the estimates as `f64`s in hole
/// order.
fn refit(src: &str, data: &str) -> Vec<f64> {
    let fitted = fit_program(src, data, &FitOptions::default()).unwrap();
    fitted
        .report
        .estimates
        .iter()
        .map(|e| e.value.as_f64().unwrap())
        .collect()
}

const N: usize = 2000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Normal⟨μ, σ²⟩: μ̂ within 6·σ/√n of μ, σ̂² within 6·σ²·√(2/n).
    #[test]
    fn normal_round_trips(mu in -50.0f64..50.0, s2 in 0.1f64..25.0, seed in 0u64..1000) {
        let data = dataset("Normal", &[Value::real(mu), Value::real(s2)], "Obs", N, seed);
        let est = refit("rel Obs(real). Obs(Normal<?mu, ?s2>) :- true.", &data);
        let se_mu = (s2 / N as f64).sqrt();
        let se_s2 = s2 * (2.0 / N as f64).sqrt();
        prop_assert!((est[0] - mu).abs() < 6.0 * se_mu, "mu {mu} vs {}", est[0]);
        prop_assert!((est[1] - s2).abs() < 6.0 * se_s2, "s2 {s2} vs {}", est[1]);
    }

    /// Exponential⟨λ⟩: λ̂ within 6·λ/√n.
    #[test]
    fn exponential_round_trips(rate in 0.05f64..20.0, seed in 0u64..1000) {
        let data = dataset("Exponential", &[Value::real(rate)], "Obs", N, seed);
        let est = refit("rel Obs(real). Obs(Exponential<?>) :- true.", &data);
        prop_assert!((est[0] - rate).abs() < 6.0 * rate / (N as f64).sqrt(),
            "rate {rate} vs {}", est[0]);
    }

    /// Flip⟨p⟩: p̂ within 6·√(p(1−p)/n).
    #[test]
    fn flip_round_trips(p in 0.05f64..0.95, seed in 0u64..1000) {
        let data = dataset("Flip", &[Value::real(p)], "Coin", N, seed);
        let est = refit("rel Coin(int). Coin(Flip<?p>) :- true.", &data);
        let se = (p * (1.0 - p) / N as f64).sqrt();
        prop_assert!((est[0] - p).abs() < 6.0 * se, "p {p} vs {}", est[0]);
    }

    /// Poisson⟨λ⟩: λ̂ within 6·√(λ/n).
    #[test]
    fn poisson_round_trips(lambda in 0.1f64..30.0, seed in 0u64..1000) {
        let data = dataset("Poisson", &[Value::real(lambda)], "Obs", N, seed);
        let est = refit("rel Obs(int). Obs(Poisson<?>) :- true.", &data);
        let se = (lambda / N as f64).sqrt();
        prop_assert!((est[0] - lambda).abs() < 6.0 * se, "lambda {lambda} vs {}", est[0]);
    }

    /// Geometric⟨p⟩ (failures before success): the MLE `1/(1+x̄)` is
    /// within 6 asymptotic standard errors `p·√((1−p)/n)`.
    #[test]
    fn geometric_round_trips(p in 0.1f64..0.9, seed in 0u64..1000) {
        let data = dataset("Geometric", &[Value::real(p)], "Obs", N, seed);
        let est = refit("rel Obs(int). Obs(Geometric<?>) :- true.", &data);
        let se = p * ((1.0 - p) / N as f64).sqrt();
        prop_assert!((est[0] - p).abs() < 6.0 * se, "p {p} vs {}", est[0]);
    }

    /// Uniform⟨a, b⟩: the support estimators converge at rate (b−a)/n.
    #[test]
    fn uniform_round_trips(a in -20.0f64..20.0, width in 0.5f64..30.0, seed in 0u64..1000) {
        let b = a + width;
        let data = dataset("Uniform", &[Value::real(a), Value::real(b)], "Obs", N, seed);
        let est = refit("rel Obs(real). Obs(Uniform<?, ?>) :- true.", &data);
        let slack = 12.0 * width / N as f64;
        prop_assert!(est[0] >= a && est[0] - a < slack, "a {a} vs {}", est[0]);
        prop_assert!(est[1] <= b + 1e-9 && b - est[1] < slack, "b {b} vs {}", est[1]);
    }

    /// Binomial⟨n, p⟩ with n fixed in the program: p̂ within
    /// 6·√(p(1−p)/(n·N)).
    #[test]
    fn binomial_round_trips(p in 0.1f64..0.9, trials in 2i64..40, seed in 0u64..1000) {
        let data = dataset("Binomial", &[Value::int(trials), Value::real(p)], "Obs", N, seed);
        let src = format!("rel Obs(int). Obs(Binomial<{trials}, ?p>) :- true.");
        let est = refit(&src, &data);
        let se = (p * (1.0 - p) / (trials as f64 * N as f64)).sqrt();
        prop_assert!((est[0] - p).abs() < 6.0 * se, "p {p} vs {}", est[0]);
    }

    /// LogNormal⟨μ, σ²⟩ of the underlying normal: same error structure as
    /// Normal on the log scale.
    #[test]
    fn lognormal_round_trips(mu in -2.0f64..2.0, s2 in 0.05f64..2.0, seed in 0u64..1000) {
        let data = dataset("LogNormal", &[Value::real(mu), Value::real(s2)], "Obs", N, seed);
        let est = refit("rel Obs(real). Obs(LogNormal<?mu, ?s2>) :- true.", &data);
        let se_mu = (s2 / N as f64).sqrt();
        let se_s2 = s2 * (2.0 / N as f64).sqrt();
        prop_assert!((est[0] - mu).abs() < 6.0 * se_mu, "mu {mu} vs {}", est[0]);
        prop_assert!((est[1] - s2).abs() < 6.0 * se_s2, "s2 {s2} vs {}", est[1]);
    }

    /// Gamma⟨shape, scale⟩ via the Newton estimator: both parameters
    /// within 10% relative error at n = 2000 (the MLE's asymptotic se is
    /// below that throughout this parameter box).
    #[test]
    fn gamma_round_trips(shape in 0.5f64..10.0, scale in 0.2f64..5.0, seed in 0u64..1000) {
        let data = dataset("Gamma", &[Value::real(shape), Value::real(scale)], "Obs", N, seed);
        let est = refit("rel Obs(real). Obs(Gamma<?k, ?theta>) :- true.", &data);
        prop_assert!((est[0] - shape).abs() / shape < 0.10, "shape {shape} vs {}", est[0]);
        prop_assert!((est[1] - scale).abs() / scale < 0.10, "scale {scale} vs {}", est[1]);
    }

    /// Categorical with symbolic outcomes: fitted relative masses match
    /// the true probabilities within 6 binomial standard errors.
    #[test]
    fn categorical_round_trips(w1 in 1.0f64..5.0, w2 in 1.0f64..5.0, seed in 0u64..1000) {
        let w3 = 2.0;
        let total = w1 + w2 + w3;
        let params = [
            Value::sym("a"), Value::real(w1),
            Value::sym("b"), Value::real(w2),
            Value::sym("c"), Value::real(w3),
        ];
        let data = dataset("Categorical", &params, "Obs", N, seed);
        let est = refit(
            "rel Obs(symbol). Obs(Categorical<a, ?, b, ?, c, ?>) :- true.",
            &data,
        );
        let mass: f64 = est.iter().sum();
        for (e, w) in est.iter().zip([w1, w2, w3]) {
            let p = w / total;
            let se = (p * (1.0 - p) / N as f64).sqrt();
            prop_assert!((e / mass - p).abs() < 6.0 * se, "p {p} vs {}", e / mass);
        }
    }
}

// ---------------------------------------------------------------------------
// Latent EM vs exact enumeration.
// ---------------------------------------------------------------------------

/// The multi-hop chain both tests share: a latent coin `R`, an observed
/// noisy reading `S` two rules downstream.
const CHAIN: &str = "rel S(int).\n\
                     R(Flip<?p>) :- true.\n\
                     S(Flip<0.9>) :- R(1).\n\
                     S(Flip<0.2>) :- R(0).";

/// The same chain with `p` substituted, for exact evaluation.
fn chain_at(p: f64) -> String {
    CHAIN.replace("?p", &format!("{p}"))
}

/// Exact marginal `P(S = 1)` of the chain at `p`, by full enumeration.
fn exact_s1(p: f64) -> f64 {
    let session = Session::from_source(&chain_at(p), SemanticsMode::Grohe).unwrap();
    let s = session.program().catalog.require("S").unwrap();
    session
        .eval()
        .exact()
        .marginal(&gdatalog_data::Fact::new(
            s,
            gdatalog_data::Tuple::new(vec![Value::int(1)]),
        ))
        .unwrap()
}

/// EM on the latent chain must converge to the root of the exact score
/// equation: the p̂ whose implied `P(S=1)` equals the empirical frequency
/// of `S(1)` in the data (the chain's observed-data MLE).
#[test]
fn em_matches_exact_enumeration_mle() {
    // 7 of 10 blocks observe S(1) → target P(S=1) = 0.7; invert the exact
    // forward map P(S=1) = 0.2 + 0.7·p to get the true MLE.
    let mut data = String::new();
    for (i, s) in [1, 1, 1, 0, 1, 1, 0, 1, 1, 0].iter().enumerate() {
        let _ = writeln!(data, "% run {i}\nS({s}).");
    }
    let freq = 0.7;
    let p_mle = (freq - 0.2) / 0.7;
    assert!((exact_s1(p_mle) - freq).abs() < 1e-12, "forward map sanity");

    let opts = FitOptions {
        em_iters: 500,
        tol: 1e-10,
        ..FitOptions::default()
    };
    let fitted = fit_program(CHAIN, &data, &opts).unwrap();
    assert!(fitted.report.em);
    let p_hat = fitted.report.estimates[0].value.as_f64().unwrap();
    assert!(
        (p_hat - p_mle).abs() < 1e-4,
        "EM p̂ {p_hat} vs exact-enumeration MLE {p_mle}"
    );
    // And the fitted program reproduces the empirical S-marginal exactly.
    assert!((exact_s1(p_hat) - freq).abs() < 1e-4);
}

/// The per-iteration log-likelihood the EM loop reports must equal the
/// exact log-evidence `Σ_blocks ln P(block | θ)` computed by independent
/// enumeration of the substituted program.
#[test]
fn em_trajectory_matches_exact_log_evidence() {
    let mut data = String::new();
    for (i, s) in [1, 0, 1, 1].iter().enumerate() {
        let _ = writeln!(data, "% run {i}\nS({s}).");
    }
    let opts = FitOptions {
        em_iters: 500,
        tol: 1e-9,
        ..FitOptions::default()
    };
    let fitted = fit_program(CHAIN, &data, &opts).unwrap();
    let p_hat = fitted.report.estimates[0].value.as_f64().unwrap();

    // Recompute the final-iterate log-evidence by exact enumeration. The
    // trajectory entry at iteration t is evaluated at θ_{t−1}, so compare
    // against the penultimate estimate's evidence bracket instead of
    // chasing iterates: evidence is continuous in p and the loop has
    // converged, so ln P(data | p̂) must match the last entry to tolerance.
    let p1 = exact_s1(p_hat);
    let exact_ll = 3.0 * p1.ln() + (1.0 - p1).ln();
    let last = *fitted.report.log_likelihood.last().unwrap();
    assert!(
        (last - exact_ll).abs() < 1e-6,
        "reported {last} vs exact {exact_ll} at p̂ {p_hat}"
    );
    // EM monotonicity under the exact E-step.
    for w in fitted.report.log_likelihood.windows(2) {
        assert!(w[1] >= w[0] - 1e-9, "{:?}", fitted.report.log_likelihood);
    }
}

/// Registry sanity for the harness itself: every family the round-trip
/// suite uses is present under the tested name.
#[test]
fn round_trip_families_exist() {
    let reg = Registry::standard();
    for name in [
        "Normal",
        "LogNormal",
        "Exponential",
        "Uniform",
        "Poisson",
        "Geometric",
        "Flip",
        "Binomial",
        "Gamma",
        "Categorical",
    ] {
        let d: &Arc<dyn ParamDist> = reg.get(name).expect(name);
        assert_eq!(d.name(), name);
    }
}
