//! The [`FitReport`]: what `gdl fit` learned and how well, with a
//! hand-rolled JSON rendering (same dependency-free style as the bench
//! reports and the serving wire format).

use gdatalog_data::Value;

/// One fitted free parameter.
#[derive(Debug, Clone)]
pub struct ParamEstimate {
    /// The hole's label: its `?name` when named, else `Rel.Dist[i]`.
    pub label: String,
    /// Head relation of the owning rule.
    pub rel: String,
    /// Distribution family of the owning term.
    pub dist: String,
    /// Position in the distribution's parameter list.
    pub param_index: usize,
    /// The estimate.
    pub value: Value,
    /// Number of (weighted) observations behind the estimate. For latent
    /// parameters this is the expected count under the final posterior.
    pub n_obs: f64,
    /// Whether the parameter was fitted latently (EM) rather than from
    /// directly observed tuples.
    pub latent: bool,
    /// Per-family goodness-of-fit score in `[0, 1]` (`1 − KS` distance for
    /// continuous families, `1 − total variation` for discrete ones),
    /// against the (posterior-weighted, for latent parameters) empirical
    /// distribution. `None` when the family cannot score itself.
    pub goodness_of_fit: Option<f64>,
}

/// The full outcome of a fit: estimates, trajectory, counts.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// One entry per free parameter, in program (hole id) order.
    pub estimates: Vec<ParamEstimate>,
    /// Log-likelihood trajectory, one entry per iteration (closed-form
    /// fits have exactly one). For EM fits each entry is the sum of the
    /// per-block log-evidences plus the directly-observed log-likelihood.
    pub log_likelihood: Vec<f64>,
    /// Iterations performed (1 for pure closed-form fits).
    pub iterations: usize,
    /// Whether the trajectory met the convergence tolerance (always true
    /// for closed-form fits).
    pub converged: bool,
    /// Whether any parameter required the latent EM path.
    pub em: bool,
    /// Dataset blocks (independent runs) consumed.
    pub n_blocks: usize,
    /// Total dataset facts consumed.
    pub n_facts: usize,
    /// The fitted program text (holes substituted, pretty-printed).
    pub fitted_source: String,
}

impl FitReport {
    /// The final log-likelihood (the last trajectory entry).
    pub fn final_log_likelihood(&self) -> f64 {
        self.log_likelihood
            .last()
            .copied()
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// Renders the report as a JSON document:
    ///
    /// ```json
    /// {
    ///   "n_blocks": 2, "n_facts": 40, "iterations": 1,
    ///   "converged": true, "em": false,
    ///   "log_likelihood": [-57.2],
    ///   "estimates": [
    ///     {"param": "mu", "rel": "Obs", "dist": "Normal", "index": 0,
    ///      "value": 1.93, "n_obs": 40, "latent": false,
    ///      "goodness_of_fit": 0.94}
    ///   ],
    ///   "fitted": "Obs(Normal<1.93, 0.25>) :- true.\n"
    /// }
    /// ```
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        push_kv(&mut s, "n_blocks", &self.n_blocks.to_string());
        push_kv(&mut s, "n_facts", &self.n_facts.to_string());
        push_kv(&mut s, "iterations", &self.iterations.to_string());
        push_kv(
            &mut s,
            "converged",
            if self.converged { "true" } else { "false" },
        );
        push_kv(&mut s, "em", if self.em { "true" } else { "false" });
        let traj: Vec<String> = self.log_likelihood.iter().map(|x| num(*x)).collect();
        push_kv(&mut s, "log_likelihood", &format!("[{}]", traj.join(", ")));
        let ests: Vec<String> = self
            .estimates
            .iter()
            .map(|e| {
                let mut o = String::from("{");
                push_kv(&mut o, "param", &quote(&e.label));
                push_kv(&mut o, "rel", &quote(&e.rel));
                push_kv(&mut o, "dist", &quote(&e.dist));
                push_kv(&mut o, "index", &e.param_index.to_string());
                push_kv(&mut o, "value", &value_json(&e.value));
                push_kv(&mut o, "n_obs", &num(e.n_obs));
                push_kv(&mut o, "latent", if e.latent { "true" } else { "false" });
                match e.goodness_of_fit {
                    Some(g) => push_kv(&mut o, "goodness_of_fit", &num(g)),
                    None => push_kv(&mut o, "goodness_of_fit", "null"),
                }
                o.push('}');
                o
            })
            .collect();
        push_kv(&mut s, "estimates", &format!("[{}]", ests.join(", ")));
        push_kv(&mut s, "fitted", &quote(&self.fitted_source));
        s.push('}');
        s
    }
}

fn push_kv(out: &mut String, key: &str, rendered: &str) {
    if !out.ends_with('{') {
        out.push_str(", ");
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\": ");
    out.push_str(rendered);
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x.is_nan() {
        "null".to_string()
    } else if x > 0.0 {
        "1e999".to_string()
    } else {
        "-1e999".to_string()
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Numeric values render as JSON numbers; symbols/strings/bools as their
/// natural JSON counterparts.
fn value_json(v: &Value) -> String {
    match v {
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Real(r) => num(r.get()),
        Value::Sym(_) | Value::Str(_) => quote(&v.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_json() {
        let r = FitReport {
            estimates: vec![ParamEstimate {
                label: "mu".into(),
                rel: "Obs".into(),
                dist: "Normal".into(),
                param_index: 0,
                value: Value::real(1.5),
                n_obs: 40.0,
                latent: false,
                goodness_of_fit: Some(0.93),
            }],
            log_likelihood: vec![-57.25],
            iterations: 1,
            converged: true,
            em: false,
            n_blocks: 2,
            n_facts: 40,
            fitted_source: "Obs(Normal<1.5, 1.0>) :- true.\n".into(),
        };
        let json = r.to_json();
        assert!(json.contains("\"param\": \"mu\""), "{json}");
        assert!(json.contains("\"value\": 1.5"), "{json}");
        assert!(json.contains("\"log_likelihood\": [-57.25]"), "{json}");
        assert!(json.contains("\\n"), "newlines must be escaped: {json}");
        assert_eq!(r.final_log_likelihood(), -57.25);
    }

    #[test]
    fn strings_escape() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(value_json(&Value::sym("up")), "\"up\"");
        assert_eq!(value_json(&Value::int(3)), "3");
    }
}
