//! The fitter: [`fit_program`] estimates every free-parameter hole of a
//! program from a facts-text dataset.
//!
//! Each holed distribution term defines a **group**: the set of holes of
//! one `Dist<...>` term in one rule head. Groups whose head relation
//! appears in the dataset are fitted in **closed form** — the dataset
//! tuples matching the rule head are the distribution's own draws, so the
//! weighted MLE of `gdatalog_dist::fit` applies directly. Groups whose
//! head relation never appears are **latent**: their draws are
//! marginalized out in the data, so the fitter runs weighted EM — the
//! E-step conditions the ordinary evaluation machinery on each dataset
//! block ([`gdatalog_core::Evaluation::given`]) and folds the
//! posterior-weighted values of the latent column out of the world stream;
//! the M-step re-estimates by the same weighted MLE.

use std::any::Any;
use std::sync::Arc;

use gdatalog_core::Session;
use gdatalog_data::{canonical_text, Instance, RelId, RelationKind, Value};
use gdatalog_dist::fit::{fit_params, goodness_of_fit, weighted_log_likelihood};
use gdatalog_dist::{ParamDist, Registry};
use gdatalog_lang::{
    parse_program, substitute_free_params, validate, Program, SemanticsMode, TermAst,
};
use gdatalog_pdb::{DeficitKind, NormalizingSink, WorldSink};

use crate::dataset::Dataset;
use crate::report::{FitReport, ParamEstimate};
use crate::LearnError;

/// Knobs of [`fit_program`].
#[derive(Debug, Clone)]
pub struct FitOptions {
    /// Semantics the E-step evaluates under.
    pub mode: SemanticsMode,
    /// Maximum EM iterations (ignored when every group is observed).
    pub em_iters: usize,
    /// Relative log-likelihood convergence tolerance:
    /// `|Δℓ| < tol · (1 + |ℓ|)` stops the EM loop.
    pub tol: f64,
    /// Base RNG seed of the Monte-Carlo E-step. Each block derives its own
    /// stream from this seed, and the streams are **reused across
    /// iterations** (common random numbers), so the likelihood trajectory
    /// is comparable between iterations.
    pub seed: u64,
    /// Monte-Carlo runs per block per E-step iteration (only used when the
    /// program is not fully discrete).
    pub runs: usize,
    /// Chase depth cap of the E-step, when set.
    pub max_depth: Option<usize>,
}

impl Default for FitOptions {
    fn default() -> FitOptions {
        FitOptions {
            mode: SemanticsMode::Grohe,
            em_iters: 50,
            tol: 1e-6,
            seed: 0,
            runs: 4000,
            max_depth: None,
        }
    }
}

/// The outcome of [`fit_program`]: the filled AST, its pretty-printed
/// source, and the [`FitReport`].
#[derive(Debug, Clone)]
pub struct Fitted {
    /// The fitted program (every hole substituted by its estimate).
    pub program: Program,
    /// Pretty-printed source of the fitted program.
    pub source: String,
    /// Estimates, trajectory, and diagnostics.
    pub report: FitReport,
}

/// One holed distribution term: the unit of estimation.
struct Group {
    /// Head relation name (for messages).
    rel: String,
    /// Head relation id in the program catalog.
    rel_id: RelId,
    /// Head argument position of the distribution term.
    head_col: usize,
    /// The distribution family.
    dist: Arc<dyn ParamDist>,
    /// Full parameter mask: `Some(c)` for constant parameters, `None` for
    /// holes (the slots to estimate).
    fixed: Vec<Option<Value>>,
    /// [`gdatalog_lang::FreeParam::id`] per hole, in parameter order.
    hole_ids: Vec<usize>,
    /// Parameter index per hole, parallel to `hole_ids`.
    hole_param_idx: Vec<usize>,
    /// Constant head columns the dataset tuples must match (other than
    /// `head_col`).
    const_cols: Vec<(usize, Value)>,
    /// Whether the head relation appears in the dataset.
    observed: bool,
}

/// Fits every free-parameter hole of `src` against the dataset `data`
/// (facts text, optionally split into `% run k` blocks — see
/// [`crate::dataset`]).
///
/// # Errors
/// [`LearnError::Program`] when the program fails to parse/validate, has
/// no holes, or its holes are not estimable as placed;
/// [`LearnError::Dataset`] on dataset problems; [`LearnError::Fit`] when
/// estimation itself fails (degenerate data, zero-probability evidence, a
/// latent relation that is never derived).
pub fn fit_program(src: &str, data: &str, opts: &FitOptions) -> Result<Fitted, LearnError> {
    let ast = parse_program(src)?;
    let vp = validate(ast.clone(), Arc::new(Registry::standard()))?;
    if vp.free_params.is_empty() {
        return Err(LearnError::Program(
            "program has no free parameters; mark the parameters to estimate with `?` holes \
             (e.g. `Normal<?mu, ?sigma2>`)"
                .to_string(),
        ));
    }
    let dataset = Dataset::parse(data, &vp.catalog)?;
    let groups = build_groups(&vp, &dataset)?;

    let n_holes = vp.free_params.len();
    let mut values: Vec<Option<Value>> = vec![None; n_holes];
    let mut n_obs: Vec<f64> = vec![0.0; n_holes];
    let mut gof: Vec<Option<f64>> = vec![None; n_holes];

    // Closed-form pass: every observed group is fitted once, up front, and
    // held fixed for the (optional) EM phase. Its log-likelihood is a
    // constant offset of the trajectory.
    let mut observed_ll = 0.0;
    for g in groups.iter().filter(|g| g.observed) {
        let obs = direct_observations(g, &dataset);
        if obs.is_empty() {
            return Err(LearnError::Fit(format!(
                "no dataset tuples of `{}` match the holed rule's constant head columns",
                g.rel
            )));
        }
        let params = fit_params(g.dist.as_ref(), &obs, &g.fixed)
            .map_err(|e| LearnError::Fit(e.to_string()))?;
        observed_ll += weighted_log_likelihood(g.dist.as_ref(), &params, &obs)
            .map_err(|e| LearnError::Fit(e.to_string()))?;
        let score = goodness_of_fit(g.dist.as_ref(), &params, &obs).ok();
        let total_w: f64 = obs.iter().map(|(_, w)| w).sum();
        for (&id, &pi) in g.hole_ids.iter().zip(&g.hole_param_idx) {
            values[id] = Some(params[pi].clone());
            n_obs[id] = total_w;
            gof[id] = score;
        }
    }

    let any_latent = groups.iter().any(|g| !g.observed);
    let mut trajectory = Vec::new();
    let mut iterations = 1;
    let mut converged = true;

    if any_latent {
        // Latent holes start from neutral per-family defaults.
        for g in groups.iter().filter(|g| !g.observed) {
            for (&id, &pi) in g.hole_ids.iter().zip(&g.hole_param_idx) {
                values[id] = Some(initial_value(g.dist.name(), pi));
            }
        }
        let em = EmState {
            ast: &ast,
            registry: Arc::clone(&vp.registry),
            dataset: &dataset,
            opts,
        };
        let latent: Vec<&Group> = groups.iter().filter(|g| !g.observed).collect();
        let mut prev_ll = f64::NAN;
        for iter in 0..opts.em_iters.max(1) {
            iterations = iter + 1;
            let (pooled, log_evidence) = em.e_step(&latent, &values)?;
            let ll = log_evidence + observed_ll;
            trajectory.push(ll);
            for (g, obs) in latent.iter().zip(&pooled) {
                if obs.is_empty() {
                    return Err(LearnError::Fit(format!(
                        "latent relation `{}` was never derived during the E-step; \
                         its rule cannot be reached from the dataset's facts",
                        g.rel
                    )));
                }
                let params = fit_params(g.dist.as_ref(), obs, &g.fixed)
                    .map_err(|e| LearnError::Fit(e.to_string()))?;
                let score = goodness_of_fit(g.dist.as_ref(), &params, obs).ok();
                let total_w: f64 = obs.iter().map(|(_, w)| w).sum();
                for (&id, &pi) in g.hole_ids.iter().zip(&g.hole_param_idx) {
                    values[id] = Some(params[pi].clone());
                    n_obs[id] = total_w;
                    gof[id] = score;
                }
            }
            if prev_ll.is_finite() && (ll - prev_ll).abs() < opts.tol * (1.0 + ll.abs()) {
                converged = true;
                break;
            }
            converged = false;
            prev_ll = ll;
        }
    } else {
        trajectory.push(observed_ll);
    }

    let values: Vec<Value> = values
        .into_iter()
        .map(|v| v.expect("every hole belongs to a group"))
        .collect();
    let fitted_ast = substitute_free_params(&ast, &values)?;
    let source = fitted_ast.to_string();

    let estimates = vp
        .free_params
        .iter()
        .map(|fp| ParamEstimate {
            label: fp.label(),
            rel: fp.rel.clone(),
            dist: fp.dist.clone(),
            param_index: fp.param_index,
            value: values[fp.id].clone(),
            n_obs: n_obs[fp.id],
            latent: groups
                .iter()
                .find(|g| g.hole_ids.contains(&fp.id))
                .is_some_and(|g| !g.observed),
            goodness_of_fit: gof[fp.id],
        })
        .collect();

    let report = FitReport {
        estimates,
        log_likelihood: trajectory,
        iterations,
        converged,
        em: any_latent,
        n_blocks: dataset.blocks.len(),
        n_facts: dataset.n_facts,
        fitted_source: source.clone(),
    };
    Ok(Fitted {
        program: fitted_ast,
        source,
        report,
    })
}

/// Resolves each holed distribution term into a [`Group`], enforcing
/// estimability: the head relation must be defined by a single rule, and
/// every non-hole parameter of the term must be a constant.
fn build_groups(
    vp: &gdatalog_lang::ValidatedProgram,
    dataset: &Dataset,
) -> Result<Vec<Group>, LearnError> {
    let mut groups: Vec<Group> = Vec::new();
    for fp in &vp.free_params {
        if groups
            .iter()
            .any(|g| g.rel == fp.rel && g.head_col == fp.head_col)
        {
            continue; // Sibling hole of an existing group.
        }
        let rule = &vp.program.rules[fp.rule_index];
        let defining = vp
            .program
            .rules
            .iter()
            .filter(|r| r.head.rel == fp.rel)
            .count();
        if defining > 1 {
            return Err(LearnError::Program(format!(
                "relation `{}` is defined by {defining} rules; a holed distribution can only \
                 be fitted when its relation is defined by that single rule",
                fp.rel
            )));
        }
        let TermAst::Random { dist, params, .. } = &rule.head.args[fp.head_col] else {
            unreachable!("free params only occur inside Random head terms");
        };
        let d = vp.registry.get(dist).ok_or_else(|| {
            LearnError::Program(format!("unknown distribution `{dist}` in `{}`", fp.rel))
        })?;
        let mut fixed = Vec::with_capacity(params.len());
        let mut hole_ids = Vec::new();
        let mut hole_param_idx = Vec::new();
        for (pi, p) in params.iter().enumerate() {
            match p {
                TermAst::Const(c) => fixed.push(Some(c.clone())),
                TermAst::Hole { .. } => {
                    fixed.push(None);
                    let sibling = vp
                        .free_params
                        .iter()
                        .find(|o| {
                            o.rule_index == fp.rule_index
                                && o.head_col == fp.head_col
                                && o.param_index == pi
                        })
                        .expect("hole collected by validate");
                    hole_ids.push(sibling.id);
                    hole_param_idx.push(pi);
                }
                TermAst::Var(v) => {
                    return Err(LearnError::Program(format!(
                        "parameter {pi} of `{dist}` in `{}` is the variable `{v}`; fitting \
                         requires every non-hole parameter of a holed term to be a constant",
                        fp.rel
                    )));
                }
                TermAst::Random { dist: inner, .. } => {
                    return Err(LearnError::Program(format!(
                        "parameter {pi} of `{dist}` in `{}` is a nested `{inner}` term; fitting \
                         requires every non-hole parameter of a holed term to be a constant",
                        fp.rel
                    )));
                }
            }
        }
        let const_cols = rule
            .head
            .args
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != fp.head_col)
            .filter_map(|(i, t)| match t {
                TermAst::Const(c) => Some((i, c.clone())),
                _ => None,
            })
            .collect();
        let rel_id = vp
            .catalog
            .require(&fp.rel)
            .map_err(|e| LearnError::Program(e.to_string()))?;
        let observed = dataset
            .blocks
            .iter()
            .any(|b| !b.relation(rel_id).is_empty());
        groups.push(Group {
            rel: fp.rel.clone(),
            rel_id,
            head_col: fp.head_col,
            dist: Arc::clone(d),
            fixed,
            hole_ids,
            hole_param_idx,
            const_cols,
            observed,
        });
    }
    Ok(groups)
}

/// Extracts the observation column of an observed group from every dataset
/// block: tuples of the head relation whose constant head columns match,
/// each with unit weight.
fn direct_observations(g: &Group, dataset: &Dataset) -> Vec<(Value, f64)> {
    let mut obs = Vec::new();
    for block in &dataset.blocks {
        for t in block.relation(g.rel_id) {
            let vals = t.values();
            if g.const_cols.iter().all(|(i, c)| &vals[*i] == c) {
                obs.push((vals[g.head_col].clone(), 1.0));
            }
        }
    }
    obs
}

/// Per-family neutral starting point for a latent hole.
fn initial_value(dist: &str, param_index: usize) -> Value {
    match dist {
        "Flip" | "Bernoulli" | "Geometric" => Value::real(0.5),
        "Poisson" | "Exponential" => Value::real(1.0),
        "Normal" | "LogNormal" | "Laplace" => Value::real(if param_index == 0 { 0.0 } else { 1.0 }),
        "Uniform" => Value::real(if param_index == 0 { 0.0 } else { 1.0 }),
        "UniformInt" => Value::int(if param_index == 0 { 0 } else { 1 }),
        "Gamma" | "Beta" => Value::real(1.0),
        "Binomial" => {
            if param_index == 0 {
                Value::int(1)
            } else {
                Value::real(0.5)
            }
        }
        // Categorical weight slots (and anything unrecognized): flat.
        _ => Value::real(1.0),
    }
}

/// The EM E-step driver: everything constant across iterations.
struct EmState<'a> {
    ast: &'a Program,
    registry: Arc<Registry>,
    dataset: &'a Dataset,
    opts: &'a FitOptions,
}

/// Per-latent-group pooled weighted observations, in group order.
type GroupObs = Vec<Vec<(Value, f64)>>;

/// One latent group's extraction spec: (relation, head column, constant
/// columns the tuple must match).
type LatentCol = (RelId, usize, Vec<(usize, Value)>);

impl EmState<'_> {
    /// One E-step over every dataset block under the current parameter
    /// vector: returns per-group posterior-weighted observations (pooled
    /// across blocks, each block normalized to unit posterior mass) and
    /// the total log-evidence `Σ_blocks log P(block | θ)`.
    fn e_step(
        &self,
        latent: &[&Group],
        values: &[Option<Value>],
    ) -> Result<(GroupObs, f64), LearnError> {
        let filled: Vec<Value> = values
            .iter()
            .map(|v| v.clone().expect("all holes initialized before the E-step"))
            .collect();
        let filled = substitute_free_params(self.ast, &filled)?;
        let mut session = Session::from_ast(filled, self.opts.mode, Arc::clone(&self.registry))
            .map_err(|e| LearnError::Fit(e.to_string()))?;
        let all_discrete = session.program().all_discrete();
        let catalog = session.program().catalog.clone();

        let mut pooled: Vec<Vec<(Value, f64)>> = vec![Vec::new(); latent.len()];
        let mut log_evidence = 0.0;
        for (bi, block) in self.dataset.blocks.iter().enumerate() {
            // Extensional facts are inputs; everything else is evidence the
            // posterior conditions on.
            let mut inputs = Instance::new();
            let mut evidence = Instance::new();
            for fact in block.facts() {
                if catalog.decl(fact.rel).kind() == RelationKind::Extensional {
                    inputs.insert_fact(fact);
                } else {
                    evidence.insert_fact(fact);
                }
            }
            session.reset();
            session.insert_facts(&inputs);

            let mut eval = session
                .eval()
                .seed(block_seed(self.opts.seed, bi))
                .threads(1);
            if let Some(d) = self.opts.max_depth {
                eval = eval.max_depth(d);
            }
            eval = if all_discrete {
                eval.exact()
            } else {
                eval.sample(self.opts.runs)
            };
            if !evidence.is_empty() {
                eval = eval.given(canonical_text(&evidence, &catalog));
            }

            let sink = LatentObsSink::new(latent);
            let mut wrapper = NormalizingSink::log_space(sink);
            eval.collect_into(&mut wrapper)
                .map_err(|e| LearnError::Fit(format!("E-step on block {bi}: {e}")))?;
            let (sink, stats) = wrapper.finish();
            let z = stats.normalizer();
            if z <= 0.0 || z.is_nan() || stats.worlds == 0 {
                return Err(LearnError::Fit(format!(
                    "block {bi}: the evidence has zero probability under the current \
                     parameters; the dataset may not be reachable from this program \
                     (or the Monte-Carlo E-step needs more runs / a different seed)"
                )));
            }
            log_evidence += stats.log_total();
            for (out, group_obs) in pooled.iter_mut().zip(sink.obs) {
                out.extend(group_obs.into_iter().map(|(v, w)| (v, w / z)));
            }
        }
        Ok((pooled, log_evidence))
    }
}

/// Stable per-block RNG stream, shared across EM iterations (common
/// random numbers).
fn block_seed(base: u64, block: usize) -> u64 {
    base ^ (block as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A [`WorldSink`] that extracts the latent observation columns from each
/// (posterior-weighted) world.
struct LatentObsSink {
    cols: Vec<LatentCol>,
    obs: GroupObs,
}

impl LatentObsSink {
    fn new(latent: &[&Group]) -> LatentObsSink {
        LatentObsSink {
            cols: latent
                .iter()
                .map(|g| (g.rel_id, g.head_col, g.const_cols.clone()))
                .collect(),
            obs: vec![Vec::new(); latent.len()],
        }
    }
}

impl WorldSink for LatentObsSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.observe_ref(&world, weight);
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        if weight <= 0.0 {
            return;
        }
        for ((rel, col, consts), out) in self.cols.iter().zip(self.obs.iter_mut()) {
            for t in world.relation(*rel) {
                let vals = t.values();
                if consts.iter().all(|(i, c)| &vals[*i] == c) {
                    out.push((vals[*col].clone(), weight));
                }
            }
        }
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    fn rescale(&mut self, factor: f64) {
        for group in &mut self.obs {
            for (_, w) in group.iter_mut() {
                *w *= factor;
            }
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(src: &str, data: &str) -> Fitted {
        fit_program(src, data, &FitOptions::default()).unwrap()
    }

    #[test]
    fn observed_normal_is_closed_form() {
        let f = fit(
            "rel Obs(real). Obs(Normal<?mu, ?s2>) :- true.",
            "Obs(1.0).\n% run 1\nObs(3.0).\n",
        );
        assert!(!f.report.em);
        assert_eq!(f.report.iterations, 1);
        assert_eq!(f.report.n_blocks, 2);
        let mu = f.report.estimates[0].value.as_f64().unwrap();
        let s2 = f.report.estimates[1].value.as_f64().unwrap();
        assert!((mu - 2.0).abs() < 1e-12, "{mu}");
        assert!((s2 - 1.0).abs() < 1e-12, "{s2}");
        assert!(f.source.contains("Normal<2.0, 1.0>"), "{}", f.source);
        assert!(!f.program.has_holes());
    }

    #[test]
    fn fixed_parameters_are_honored() {
        let f = fit(
            "rel Obs(real). Obs(Normal<?mu, 4.0>) :- true.",
            "Obs(1.0). Obs(3.0). Obs(5.0).",
        );
        assert_eq!(f.report.estimates.len(), 1);
        let mu = f.report.estimates[0].value.as_f64().unwrap();
        assert!((mu - 3.0).abs() < 1e-12, "{mu}");
        assert!(f.source.contains("Normal<3.0, 4.0>"), "{}", f.source);
    }

    #[test]
    fn observed_flip_counts_frequencies() {
        let f = fit(
            "rel Coin(int). Coin(Flip<?p>) :- true.",
            "% run 0\nCoin(1).\n% run 1\nCoin(0).\n% run 2\nCoin(1).\n% run 3\nCoin(1).\n",
        );
        let p = f.report.estimates[0].value.as_f64().unwrap();
        assert!((p - 0.75).abs() < 1e-12, "{p}");
        assert!(f.report.estimates[0].goodness_of_fit.unwrap() > 0.99);
    }

    #[test]
    fn latent_discrete_chain_runs_em() {
        // R is latent (never in the data); S = noisy copy of R. With
        // symmetric 0.2 noise and S true 8/10 times, the MLE of p pushes
        // above 0.5.
        let src = "rel S(int).\n\
                   R(Flip<?p>) :- true.\n\
                   S(Flip<0.8>) :- R(1).\n\
                   S(Flip<0.2>) :- R(0).";
        let mut data = String::new();
        for (i, s) in [1, 1, 1, 1, 0, 1, 1, 1, 0, 1].iter().enumerate() {
            data.push_str(&format!("% run {i}\nS({s}).\n"));
        }
        let opts = FitOptions {
            em_iters: 300,
            ..FitOptions::default()
        };
        let f = fit_program(src, &data, &opts).unwrap();
        assert!(f.report.em);
        assert!(f.report.converged, "{:?}", f.report.log_likelihood);
        let p = f.report.estimates[0].value.as_f64().unwrap();
        assert!(p > 0.6 && p < 1.0, "p = {p}");
        assert!(f.report.estimates[0].latent);
        // EM must not decrease the log-likelihood (exact E-step: discrete).
        let ll = &f.report.log_likelihood;
        for w in ll.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{ll:?}");
        }
    }

    #[test]
    fn errors_are_actionable() {
        let no_holes =
            fit_program("R(Flip<0.5>) :- true.", "R(1).", &FitOptions::default()).unwrap_err();
        assert!(
            no_holes.to_string().contains("no free parameters"),
            "{no_holes}"
        );

        let two_rules = fit_program(
            "R(Flip<?p>) :- true. R(Flip<0.5>) :- true.",
            "R(1).",
            &FitOptions::default(),
        )
        .unwrap_err();
        assert!(two_rules.to_string().contains("2 rules"), "{two_rules}");

        let var_param = fit_program(
            "rel In(real) input. R(Normal<X, ?s2>) :- In(X).",
            "In(1.0). R(2.0).",
            &FitOptions::default(),
        )
        .unwrap_err();
        assert!(var_param.to_string().contains("constant"), "{var_param}");

        let unreachable_latent = fit_program(
            "rel S(int). R(Flip<?p>) :- Never(1). S(Flip<0.5>) :- true. Never(0) :- S(9).",
            "S(1).",
            &FitOptions::default(),
        )
        .unwrap_err();
        assert!(
            unreachable_latent.to_string().contains("never derived"),
            "{unreachable_latent}"
        );
    }

    #[test]
    fn var_columns_pool_across_bindings() {
        let src = "rel Person(symbol) input.\n\
                   rel H(symbol, real).\n\
                   H(P, Normal<?mu, ?s2>) :- Person(P).";
        let data = "Person(a). Person(b).\nH(a, 10.0). H(b, 14.0).";
        let f = fit(src, data);
        let mu = f.report.estimates[0].value.as_f64().unwrap();
        assert!((mu - 12.0).abs() < 1e-12, "{mu}");
        assert_eq!(f.report.estimates[0].n_obs, 2.0);
    }
}
