//! The facts-text dataset format.
//!
//! A dataset is ordinary ground-fact text (`Rel(v1, v2).` lines, `%`/`//`
//! comments), optionally split into **blocks** by comment lines of the
//! form `% run k`. Each block is one independent draw of the program's
//! world distribution — exactly what `gdl sample --format facts` dumps —
//! and block boundaries matter: the fitter conditions on (and counts) each
//! block separately. A dataset without separators is a single block.

use gdatalog_data::{Catalog, Instance};
use gdatalog_lang::parse_facts;

use crate::LearnError;

/// A parsed dataset: one [`Instance`] per block, plus the total fact
/// count.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// One instance per `% run` block, in file order. Never empty.
    pub blocks: Vec<Instance>,
    /// Total number of facts across all blocks.
    pub n_facts: usize,
}

impl Dataset {
    /// Parses dataset text against a program's catalog.
    ///
    /// # Errors
    /// [`LearnError::Dataset`] on parse errors, unknown relations, or
    /// arity/type mismatches — and on datasets with no facts at all.
    pub fn parse(text: &str, catalog: &Catalog) -> Result<Dataset, LearnError> {
        let mut blocks = Vec::new();
        let mut n_facts = 0;
        for chunk in split_blocks(text) {
            let inst =
                parse_facts(&chunk, catalog).map_err(|e| LearnError::Dataset(e.to_string()))?;
            n_facts += inst.len();
            blocks.push(inst);
        }
        // Trailing empty blocks (e.g. a dangling `% run` header) are noise.
        while blocks.len() > 1 && blocks.last().is_some_and(|b| b.is_empty()) {
            blocks.pop();
        }
        if n_facts == 0 {
            return Err(LearnError::Dataset(
                "no facts found; a dataset is ground-fact text (`Rel(v1, v2).` lines), \
                 optionally split into runs by `% run k` comment lines"
                    .to_string(),
            ));
        }
        Ok(Dataset { blocks, n_facts })
    }
}

fn is_run_separator(line: &str) -> bool {
    let t = line.trim_start();
    let rest = match t.strip_prefix('%').or_else(|| t.strip_prefix("//")) {
        Some(r) => r.trim_start(),
        None => return false,
    };
    match rest.strip_prefix("run") {
        // `% run`, `% run 7`, `% run 7 of 100` — but not `% runway`.
        Some(tail) => tail.is_empty() || tail.starts_with(|c: char| !c.is_alphanumeric()),
        None => false,
    }
}

/// Splits dataset text into run blocks on `% run k` comment lines (also
/// accepted with `//`). The separator lines themselves are dropped; text
/// before the first separator forms a leading block only when it contains
/// non-comment content.
pub fn split_blocks(text: &str) -> Vec<String> {
    let mut blocks: Vec<String> = vec![String::new()];
    for line in text.lines() {
        if is_run_separator(line) {
            blocks.push(String::new());
        } else {
            let cur = blocks.last_mut().expect("never empty");
            cur.push_str(line);
            cur.push('\n');
        }
    }
    // A leading chunk that is all whitespace/comments (the common case:
    // the file starts with `% run 0`) is not a block.
    if blocks.len() > 1 {
        let lead = &blocks[0];
        let empty = lead.lines().all(|l| {
            let t = l.trim();
            t.is_empty() || t.starts_with('%') || t.starts_with("//")
        });
        if empty {
            blocks.remove(0);
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::{ColType, RelationKind};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.declare_named("Obs", vec![ColType::Real], RelationKind::Intensional)
            .unwrap();
        cat
    }

    #[test]
    fn single_block_without_separators() {
        let d = Dataset::parse("Obs(1.0).\nObs(2.0).\n", &catalog()).unwrap();
        assert_eq!(d.blocks.len(), 1);
        assert_eq!(d.n_facts, 2);
    }

    #[test]
    fn run_separators_split_blocks() {
        let text = "% run 0\nObs(1.0).\n% run 1\nObs(2.0).\nObs(3.0).\n";
        let d = Dataset::parse(text, &catalog()).unwrap();
        assert_eq!(d.blocks.len(), 2);
        assert_eq!(d.blocks[0].len(), 1);
        assert_eq!(d.blocks[1].len(), 2);
        assert_eq!(d.n_facts, 3);
    }

    #[test]
    fn comments_that_are_not_separators_stay_inline() {
        let text =
            "% dataset header\nObs(1.0). % trailing note\n// runway is not a run\nObs(2.0).\n";
        let d = Dataset::parse(text, &catalog()).unwrap();
        assert_eq!(d.blocks.len(), 1);
        assert_eq!(d.n_facts, 2);
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let err = Dataset::parse("% nothing here\n", &catalog()).unwrap_err();
        assert!(matches!(err, LearnError::Dataset(_)));
        assert!(err.to_string().contains("no facts"), "{err}");
    }

    #[test]
    fn unknown_relation_is_actionable() {
        let err = Dataset::parse("Nope(1.0).", &catalog()).unwrap_err();
        assert!(err.to_string().contains("Nope"), "{err}");
    }
}
