#![warn(missing_docs)]

//! # gdatalog-learn
//!
//! Parameter learning: estimating the free-parameter holes of a GDatalog
//! program (`Normal<?, ?>` / `Normal<?mu, ?s2>`) from ground-fact data —
//! the `gdl fit` subsystem.
//!
//! The model class stays exactly the paper's (Grohe et al., PODS 2020):
//! a program denotes a distribution over instances, and a hole marks one
//! distribution parameter as unknown. Fitting inverts the generative
//! direction:
//!
//! * [`dataset`] — the facts-text dataset format: ground facts, optionally
//!   split into **blocks** by `% run k` comment lines (the exact dump
//!   `gdl sample --format facts` emits), each block one independent draw
//!   of the program's world distribution.
//! * [`fitter`] — [`fit_program`]: matches dataset tuples to the holed
//!   rules' heads. Relations observed in the data are fitted in **closed
//!   form** (weighted MLE / moment matching per family, from
//!   `gdatalog_dist::fit`). Holes whose head relation never appears in
//!   the data are **latent**: a weighted EM loop conditions the existing
//!   evaluation machinery on each block (`Evaluation::given`), folds the
//!   posterior-weighted values of the latent column out of the world
//!   stream (E-step), and re-estimates by weighted MLE (M-step), driving
//!   the per-block log-evidence upward until `tol` or `em_iters`.
//! * [`report`] — the [`FitReport`]: per-parameter estimates,
//!   goodness-of-fit scores, the log-likelihood trajectory, and a JSON
//!   rendering shared with the CLI.
//!
//! ```
//! use gdatalog_learn::{fit_program, FitOptions};
//!
//! let fitted = fit_program(
//!     "rel Obs(real). Obs(Normal<?mu, ?s2>) :- true.",
//!     "% run 0\nObs(1.0).\n% run 1\nObs(3.0).\n",
//!     &FitOptions::default(),
//! ).unwrap();
//! let mu = fitted.report.estimates[0].value.as_f64().unwrap();
//! assert!((mu - 2.0).abs() < 1e-9);
//! assert!(fitted.source.contains("Normal<2.0"));
//! ```

pub mod dataset;
pub mod fitter;
pub mod report;

pub use dataset::{split_blocks, Dataset};
pub use fitter::{fit_program, FitOptions, Fitted};
pub use report::{FitReport, ParamEstimate};

/// Errors of the learning subsystem.
#[derive(Debug, Clone)]
pub enum LearnError {
    /// The program failed to parse/validate, or its holes are not
    /// estimable as placed.
    Program(String),
    /// The dataset failed to parse or does not match the program schema.
    Dataset(String),
    /// Estimation failed (inadmissible observations, degenerate data, an
    /// unsupported family, or an evaluation error during the E-step).
    Fit(String),
}

impl std::fmt::Display for LearnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LearnError::Program(m) => write!(f, "program: {m}"),
            LearnError::Dataset(m) => write!(f, "dataset: {m}"),
            LearnError::Fit(m) => write!(f, "fit: {m}"),
        }
    }
}

impl std::error::Error for LearnError {}

impl From<gdatalog_lang::LangError> for LearnError {
    fn from(e: gdatalog_lang::LangError) -> LearnError {
        LearnError::Program(e.to_string())
    }
}
