//! Relation schemas: the database schema `S = I ∪ E` of the paper (§3.1),
//! extended with the auxiliary relations `Ri` introduced by the Datalog∃
//! translation (§3.2).

use std::collections::HashMap;
use std::fmt;

use crate::tuple::Tuple;
use crate::value::Value;
use crate::DataError;

/// Identifier of a relation inside a [`Catalog`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl RelId {
    /// Dense index for per-relation tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelId({})", self.0)
    }
}

/// The type of a relation column (an attribute domain).
///
/// All of these are standard Borel spaces, as the paper requires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ColType {
    /// Booleans.
    Bool,
    /// 64-bit integers (a countable discrete domain).
    Int,
    /// Reals.
    Real,
    /// Interned symbols (a countable discrete domain).
    Symbol,
    /// Strings.
    Str,
    /// Any value; used for columns whose type is not pinned down.
    Any,
}

impl ColType {
    /// Whether `v` inhabits this column type.
    pub fn admits(self, v: &Value) -> bool {
        match self {
            ColType::Any => true,
            // Ints embed into the reals: a Real column accepts Int values.
            ColType::Real => matches!(v, Value::Real(_) | Value::Int(_)),
            other => v.type_of() == other,
        }
    }

    /// Least upper bound in the (flat + Any) type lattice, with the single
    /// nontrivial join `Int ⊔ Real = Real`.
    pub fn join(self, other: ColType) -> ColType {
        use ColType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Int, Real) | (Real, Int) => Real,
            _ => Any,
        }
    }
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColType::Bool => "bool",
            ColType::Int => "int",
            ColType::Real => "real",
            ColType::Symbol => "symbol",
            ColType::Str => "str",
            ColType::Any => "any",
        };
        write!(f, "{s}")
    }
}

/// The role a relation plays in a GDatalog program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RelationKind {
    /// Extensional (input) relation — schema `E` of the paper.
    Extensional,
    /// Intensional (derived) relation — schema `I` of the paper.
    Intensional,
    /// Auxiliary `Ri` relation created by the Datalog∃ translation (§3.2).
    /// These record the outcomes of sampling experiments and are projected
    /// away from final results (Remark 4.9).
    Auxiliary,
}

/// Declaration of one relation: name, column types, kind.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelationDecl {
    name: String,
    cols: Vec<ColType>,
    kind: RelationKind,
}

impl RelationDecl {
    /// Creates a declaration.
    pub fn new(name: impl Into<String>, cols: Vec<ColType>, kind: RelationKind) -> Self {
        RelationDecl {
            name: name.into(),
            cols,
            kind,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// Column types.
    pub fn cols(&self) -> &[ColType] {
        &self.cols
    }
    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }
    /// Relation kind.
    pub fn kind(&self) -> RelationKind {
        self.kind
    }
}

/// A database schema: an ordered collection of relation declarations.
///
/// `Catalog` is append-only; [`RelId`]s are stable once assigned.
#[derive(Clone, Default, Debug)]
pub struct Catalog {
    rels: Vec<RelationDecl>,
    by_name: HashMap<String, RelId>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Adds a relation declaration.
    ///
    /// # Errors
    /// [`DataError::DuplicateRelation`] if the name is already declared.
    pub fn declare(&mut self, decl: RelationDecl) -> Result<RelId, DataError> {
        if self.by_name.contains_key(decl.name()) {
            return Err(DataError::DuplicateRelation(decl.name().to_string()));
        }
        let id = RelId(u32::try_from(self.rels.len()).expect("catalog overflow"));
        self.by_name.insert(decl.name().to_string(), id);
        self.rels.push(decl);
        Ok(id)
    }

    /// Convenience wrapper around [`Catalog::declare`].
    pub fn declare_named(
        &mut self,
        name: &str,
        cols: Vec<ColType>,
        kind: RelationKind,
    ) -> Result<RelId, DataError> {
        self.declare(RelationDecl::new(name, cols, kind))
    }

    /// Looks a relation up by name.
    pub fn resolve(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Looks a relation up by name, with an error on failure.
    pub fn require(&self, name: &str) -> Result<RelId, DataError> {
        self.resolve(name)
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// The declaration of `rel`.
    ///
    /// # Panics
    /// Panics if `rel` does not belong to this catalog.
    pub fn decl(&self, rel: RelId) -> &RelationDecl {
        &self.rels[rel.index()]
    }

    /// The name of `rel`.
    pub fn name(&self, rel: RelId) -> &str {
        self.decl(rel).name()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.rels.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty()
    }

    /// Iterates over `(RelId, &RelationDecl)` in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationDecl)> {
        self.rels
            .iter()
            .enumerate()
            .map(|(i, d)| (RelId(i as u32), d))
    }

    /// All relations of a given kind.
    pub fn of_kind(&self, kind: RelationKind) -> Vec<RelId> {
        self.iter()
            .filter(|(_, d)| d.kind() == kind)
            .map(|(id, _)| id)
            .collect()
    }

    /// Validates that `tuple` fits relation `rel` (arity and column types).
    pub fn check_tuple(&self, rel: RelId, tuple: &Tuple) -> Result<(), DataError> {
        let decl = self.decl(rel);
        if tuple.arity() != decl.arity() {
            return Err(DataError::ArityMismatch {
                relation: decl.name().to_string(),
                expected: decl.arity(),
                found: tuple.arity(),
            });
        }
        for (i, (ty, v)) in decl.cols().iter().zip(tuple.values()).enumerate() {
            if !ty.admits(v) {
                return Err(DataError::TypeMismatch {
                    relation: decl.name().to_string(),
                    column: i,
                    expected: *ty,
                    found: v.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn demo_catalog() -> (Catalog, RelId) {
        let mut cat = Catalog::new();
        let city = cat
            .declare_named(
                "City",
                vec![ColType::Symbol, ColType::Real],
                RelationKind::Extensional,
            )
            .unwrap();
        (cat, city)
    }

    #[test]
    fn declare_and_resolve() {
        let (cat, city) = demo_catalog();
        assert_eq!(cat.resolve("City"), Some(city));
        assert_eq!(cat.resolve("Town"), None);
        assert_eq!(cat.name(city), "City");
        assert_eq!(cat.decl(city).arity(), 2);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let (mut cat, _) = demo_catalog();
        let err = cat
            .declare_named("City", vec![ColType::Int], RelationKind::Intensional)
            .unwrap_err();
        assert_eq!(err, DataError::DuplicateRelation("City".into()));
    }

    #[test]
    fn tuple_checking() {
        let (cat, city) = demo_catalog();
        assert!(cat.check_tuple(city, &tuple!["gotham", 0.3]).is_ok());
        // Int embeds into Real columns.
        assert!(cat.check_tuple(city, &tuple!["gotham", 1i64]).is_ok());
        assert!(matches!(
            cat.check_tuple(city, &tuple!["gotham"]),
            Err(DataError::ArityMismatch { .. })
        ));
        assert!(matches!(
            cat.check_tuple(city, &tuple![1i64, 0.3]),
            Err(DataError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn type_join() {
        assert_eq!(ColType::Int.join(ColType::Real), ColType::Real);
        assert_eq!(ColType::Int.join(ColType::Int), ColType::Int);
        assert_eq!(ColType::Bool.join(ColType::Symbol), ColType::Any);
    }

    #[test]
    fn kinds_filtering() {
        let mut cat = Catalog::new();
        cat.declare_named("E", vec![ColType::Int], RelationKind::Extensional)
            .unwrap();
        let i = cat
            .declare_named("I", vec![ColType::Int], RelationKind::Intensional)
            .unwrap();
        let a = cat
            .declare_named("A", vec![ColType::Int], RelationKind::Auxiliary)
            .unwrap();
        assert_eq!(cat.of_kind(RelationKind::Intensional), vec![i]);
        assert_eq!(cat.of_kind(RelationKind::Auxiliary), vec![a]);
        assert_eq!(cat.len(), 3);
    }
}
