//! Tuples: immutable, cheaply clonable sequences of [`Value`]s.

use std::fmt;
use std::ops::Index;
use std::sync::Arc;

use crate::value::Value;

/// An immutable tuple of attribute values.
///
/// Backed by `Arc<[Value]>` so that cloning a tuple — which happens
/// constantly during joins and chase-tree enumeration — is a reference-count
/// bump rather than a deep copy.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl Into<Arc<[Value]>>) -> Tuple {
        Tuple(values.into())
    }

    /// The empty tuple (arity 0).
    pub fn empty() -> Tuple {
        Tuple(Arc::from(Vec::new()))
    }

    /// Number of components.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the empty tuple.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Component access.
    #[inline]
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// The components as a slice.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Projects onto the given column indices (in the given order).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Concatenates two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v.into())
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Tuple {
        Tuple(iter.into_iter().collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple(v.into())
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Builds a [`Tuple`] from a list of expressions convertible to [`Value`].
///
/// ```
/// use gdatalog_data::{tuple, Value};
/// let t = tuple![1i64, 2.5, "home"];
/// assert_eq!(t.arity(), 3);
/// assert_eq!(t[0], Value::int(1));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::from(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_basics() {
        let t = tuple![1i64, "a", 2.0];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::int(1));
        assert_eq!(t.get(3), None);
        assert!(!t.is_empty());
        assert!(Tuple::empty().is_empty());
    }

    #[test]
    fn tuple_project_and_concat() {
        let t = tuple![10i64, 20i64, 30i64];
        assert_eq!(t.project(&[2, 0]), tuple![30i64, 10i64]);
        let u = tuple![1i64];
        assert_eq!(t.concat(&u), tuple![10i64, 20i64, 30i64, 1i64]);
    }

    #[test]
    fn tuple_ordering_is_lexicographic() {
        assert!(tuple![1i64, 2i64] < tuple![1i64, 3i64]);
        assert!(tuple![1i64] < tuple![1i64, 0i64]);
    }

    #[test]
    fn tuple_display() {
        assert_eq!(tuple![1i64, "x"].to_string(), "(1, x)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }
}
