//! Attribute values: booleans, integers, ordered reals, interned symbols and
//! strings.
//!
//! The paper assumes every attribute domain is a standard Borel space; the
//! concrete domains offered here (ℤ, ℝ, finite symbol sets, strings, booleans)
//! all are. What the implementation additionally needs — and the paper gets
//! "for free" from descriptive set theory — is a *canonical total order* on
//! values so that instances (finite sets of facts) have a canonical
//! representation and can themselves be compared, hashed and deduplicated.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use std::sync::{OnceLock, RwLock};

use crate::DataError;

/// A totally ordered, hashable wrapper around `f64`.
///
/// Ordering is [`f64::total_cmp`]; `-0.0` is normalized to `0.0` on
/// construction and NaN is rejected, so `Eq`/`Ord`/`Hash` are consistent and
/// every `F64` is a genuine point of ℝ. Infinities are allowed (they are
/// useful as interval endpoints in measurable-set descriptions).
#[derive(Clone, Copy)]
pub struct F64(f64);

impl F64 {
    /// Wraps a finite-or-infinite float, normalizing `-0.0` to `0.0`.
    ///
    /// # Errors
    /// Returns [`DataError::NaNValue`] if `x` is NaN.
    pub fn new(x: f64) -> Result<Self, DataError> {
        if x.is_nan() {
            return Err(DataError::NaNValue);
        }
        Ok(F64(if x == 0.0 { 0.0 } else { x }))
    }

    /// Wraps a float, panicking on NaN. Convenient in tests and literals.
    ///
    /// # Panics
    /// Panics if `x` is NaN.
    pub fn from_finite(x: f64) -> Self {
        Self::new(x).expect("NaN is not a valid F64")
    }

    /// The underlying float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Debug for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}
impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `{:?}` on f64 prints the shortest string that round-trips.
        write!(f, "{:?}", self.0)
    }
}

impl From<F64> for f64 {
    fn from(v: F64) -> f64 {
        v.0
    }
}

/// An interned symbol (an element of a countable constant domain).
///
/// Symbols are process-global: two `SymbolId`s are equal iff their text is
/// equal. Interning keeps `Value` small and makes symbol comparison O(1).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymbolId(u32);

struct Interner {
    names: Vec<Arc<str>>,
    by_name: HashMap<Arc<str>, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            by_name: HashMap::new(),
        })
    })
}

fn read_interner() -> std::sync::RwLockReadGuard<'static, Interner> {
    interner()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SymbolId {
    /// Interns `name`, returning its id. Idempotent.
    pub fn intern(name: &str) -> SymbolId {
        {
            let g = read_interner();
            if let Some(&id) = g.by_name.get(name) {
                return SymbolId(id);
            }
        }
        let mut g = interner()
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&id) = g.by_name.get(name) {
            return SymbolId(id);
        }
        let id = u32::try_from(g.names.len()).expect("symbol table overflow");
        let arc: Arc<str> = Arc::from(name);
        g.names.push(arc.clone());
        g.by_name.insert(arc, id);
        SymbolId(id)
    }

    /// The symbol's text.
    pub fn as_str(self) -> Arc<str> {
        read_interner().names[self.0 as usize].clone()
    }

    /// Raw id (useful for dense per-symbol tables).
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl PartialOrd for SymbolId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SymbolId {
    /// Symbols are ordered by *text*, not by interning order, so that
    /// canonical instance ordering does not depend on interning history.
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0 == other.0 {
            return Ordering::Equal;
        }
        self.as_str().cmp(&other.as_str())
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}
impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// A single attribute value.
///
/// The variant order defines the canonical cross-type order used when
/// instances are canonicalized: `Bool < Int < Real < Sym < Str`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// An ordered real (see [`F64`]).
    Real(F64),
    /// An interned symbol constant.
    Sym(SymbolId),
    /// An arbitrary string.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for reals.
    ///
    /// # Panics
    /// Panics if `x` is NaN.
    pub fn real(x: f64) -> Value {
        Value::Real(F64::from_finite(x))
    }

    /// Convenience constructor for integers.
    pub fn int(x: i64) -> Value {
        Value::Int(x)
    }

    /// Convenience constructor for interned symbols.
    pub fn sym(name: &str) -> Value {
        Value::Sym(SymbolId::intern(name))
    }

    /// Convenience constructor for strings.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// The column type this value inhabits.
    pub fn type_of(&self) -> crate::schema::ColType {
        use crate::schema::ColType;
        match self {
            Value::Bool(_) => ColType::Bool,
            Value::Int(_) => ColType::Int,
            Value::Real(_) => ColType::Real,
            Value::Sym(_) => ColType::Symbol,
            Value::Str(_) => ColType::Str,
        }
    }

    /// Extracts an `f64` if this value is numeric (`Int` or `Real`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(r.get()),
            _ => None,
        }
    }

    /// Extracts an `i64` if this value is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::real(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::sym(s)
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::*;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    impl Serialize for F64 {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_f64(self.0)
        }
    }
    impl<'de> Deserialize<'de> for F64 {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            let x = f64::deserialize(d)?;
            F64::new(x).map_err(serde::de::Error::custom)
        }
    }
    impl Serialize for SymbolId {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            s.serialize_str(&self.as_str())
        }
    }
    impl<'de> Deserialize<'de> for SymbolId {
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            let s = String::deserialize(d)?;
            Ok(SymbolId::intern(&s))
        }
    }
    impl Serialize for Value {
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
            match self {
                Value::Bool(b) => b.serialize(s),
                Value::Int(i) => i.serialize(s),
                Value::Real(r) => r.serialize(s),
                Value::Sym(sym) => sym.serialize(s),
                Value::Str(st) => st.serialize(s),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_rejects_nan() {
        assert_eq!(F64::new(f64::NAN), Err(DataError::NaNValue));
    }

    #[test]
    fn f64_normalizes_negative_zero() {
        let a = F64::from_finite(0.0);
        let b = F64::from_finite(-0.0);
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn f64_total_order_includes_infinities() {
        let lo = F64::from_finite(f64::NEG_INFINITY);
        let hi = F64::from_finite(f64::INFINITY);
        let mid = F64::from_finite(1.5);
        assert!(lo < mid && mid < hi);
    }

    #[test]
    fn symbols_intern_and_compare_by_text() {
        let a = SymbolId::intern("zebra");
        let b = SymbolId::intern("aardvark");
        let a2 = SymbolId::intern("zebra");
        assert_eq!(a, a2);
        assert!(b < a, "symbol order must follow text order");
        assert_eq!(&*a.as_str(), "zebra");
    }

    #[test]
    fn value_cross_type_order_is_stable() {
        let vals = [
            Value::Bool(true),
            Value::Int(3),
            Value::real(2.5),
            Value::sym("x"),
            Value::str("y"),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} should sort before {}", w[0], w[1]);
        }
    }

    #[test]
    fn value_display_round_trips_reals() {
        assert_eq!(Value::real(0.1).to_string(), "0.1");
        assert_eq!(Value::real(1.0).to_string(), "1.0");
        assert_eq!(Value::int(1).to_string(), "1");
    }

    #[test]
    fn value_numeric_extraction() {
        assert_eq!(Value::int(7).as_f64(), Some(7.0));
        assert_eq!(Value::real(0.25).as_f64(), Some(0.25));
        assert_eq!(Value::sym("a").as_f64(), None);
        assert_eq!(Value::int(7).as_i64(), Some(7));
        assert_eq!(Value::real(7.0).as_i64(), None);
    }
}
