#![warn(missing_docs)]

//! # gdatalog-data
//!
//! The relational data model underlying the GDatalog engine: values with a
//! total order (including reals), interned symbols, typed relation schemas,
//! facts, **set-semantics** database instances, and functional dependencies.
//!
//! The paper ("Generative Datalog with Continuous Distributions", Grohe,
//! Kaminski, Katoen, Lindner; PODS 2020) works with *standard probabilistic
//! databases* whose sample space is the set of finite **set** instances over
//! a schema with standard Borel attribute domains (§2.3). This crate is the
//! concrete counterpart:
//!
//! * [`Value`] — an element of an attribute domain. Reals are wrapped in
//!   [`F64`] so that every value is totally ordered and hashable, giving
//!   instances a canonical form.
//! * [`Catalog`] / [`RelationDecl`] — the database schema `S` (extensional
//!   and intensional relations, plus the auxiliary `Ri` relations created by
//!   the Datalog∃ translation of §3.2).
//! * [`Fact`] and [`Instance`] — finite sets of facts; the space `D` of the
//!   paper. All mutation is set-semantics (`insert` is idempotent).
//! * [`FunctionalDependency`] — the induced FDs `FD(φ̂)` of §3.5, used to
//!   validate the sample-once discipline (Lemma 3.10).

pub mod dump;
pub mod fd;
pub mod instance;
pub mod schema;
pub mod tuple;
pub mod value;

pub use dump::canonical_text;
pub use fd::{FdViolation, FunctionalDependency};
pub use instance::{Fact, Instance};
pub use schema::{Catalog, ColType, RelId, RelationDecl, RelationKind};
pub use tuple::Tuple;
pub use value::{SymbolId, Value, F64};

/// Errors produced by the data layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A relation name was declared twice in a catalog.
    DuplicateRelation(String),
    /// A relation name was looked up but does not exist.
    UnknownRelation(String),
    /// A fact's arity does not match its relation declaration.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Arity of the offending tuple.
        found: usize,
    },
    /// A fact's value does not inhabit the declared column type.
    TypeMismatch {
        /// Relation name.
        relation: String,
        /// Column index (0-based).
        column: usize,
        /// Declared column type.
        expected: ColType,
        /// The offending value.
        found: Value,
    },
    /// A NaN was used where an ordered real is required.
    NaNValue,
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::DuplicateRelation(n) => write!(f, "duplicate relation `{n}`"),
            DataError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            DataError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for `{relation}`: expected {expected}, found {found}"
            ),
            DataError::TypeMismatch {
                relation,
                column,
                expected,
                found,
            } => write!(
                f,
                "type mismatch for `{relation}` column {column}: expected {expected}, found {found}"
            ),
            DataError::NaNValue => write!(f, "NaN is not a valid ordered real value"),
        }
    }
}

impl std::error::Error for DataError {}
