//! Canonical text rendering of instances, used by snapshot tests and the
//! experiment reports.

use std::fmt::Write as _;

use crate::instance::Instance;
use crate::schema::Catalog;

/// Renders an instance as one fact per line, in canonical (sorted) order:
///
/// ```text
/// Alarm(h1).
/// City(gotham, 0.3).
/// ```
///
/// Two instances are equal iff their canonical texts are equal, which makes
/// this a convenient stable key for golden tests and world tables.
pub fn canonical_text(instance: &Instance, catalog: &Catalog) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(instance.len());
    for fact in instance.facts() {
        let mut line = String::new();
        let _ = write!(line, "{}(", catalog.name(fact.rel));
        for (i, v) in fact.tuple.values().iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            let _ = write!(line, "{v}");
        }
        line.push_str(").");
        lines.push(line);
    }
    // Facts iterate per RelId order; sort by rendered text for a
    // name-based (catalog-independent) canonical order.
    lines.sort();
    let mut out = String::new();
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, RelationKind};
    use crate::tuple;

    #[test]
    fn renders_sorted_facts() {
        let mut cat = Catalog::new();
        let b = cat
            .declare_named("B", vec![ColType::Int], RelationKind::Intensional)
            .unwrap();
        let a = cat
            .declare_named(
                "A",
                vec![ColType::Symbol, ColType::Real],
                RelationKind::Extensional,
            )
            .unwrap();
        let mut d = Instance::new();
        d.insert(b, tuple![2i64]);
        d.insert(a, tuple!["x", 0.5]);
        d.insert(b, tuple![1i64]);
        assert_eq!(canonical_text(&d, &cat), "A(x, 0.5).\nB(1).\nB(2).\n");
    }

    #[test]
    fn empty_instance_renders_empty() {
        let cat = Catalog::new();
        assert_eq!(canonical_text(&Instance::new(), &cat), "");
    }
}
