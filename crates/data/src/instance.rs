//! Set-semantics database instances: the sample space `D` of the paper
//! (finite sets of facts, §2.3).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::schema::RelId;
use crate::tuple::Tuple;

/// A fact `R(v̄)`: a relation id plus a tuple.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fact {
    /// The relation the fact belongs to.
    pub rel: RelId,
    /// The attribute values.
    pub tuple: Tuple,
}

impl Fact {
    /// Creates a fact.
    pub fn new(rel: RelId, tuple: Tuple) -> Fact {
        Fact { rel, tuple }
    }
}

static EMPTY_RELATION: BTreeSet<Tuple> = BTreeSet::new();

/// A finite database instance with **set semantics**.
///
/// Facts are stored per relation in `BTreeSet`s, so an `Instance` has a
/// canonical representation: equality, ordering and hashing of instances are
/// well defined and deterministic. This is what lets the exact engine merge
/// chase-tree leaves that denote the same world, and lets `PossibleWorlds`
/// tables be compared across chase orders (Theorem 6.1).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instance {
    rels: BTreeMap<RelId, BTreeSet<Tuple>>,
    nfacts: usize,
}

impl Instance {
    /// The empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Builds an instance from facts (duplicates collapse).
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> Instance {
        let mut inst = Instance::new();
        for f in facts {
            inst.insert(f.rel, f.tuple);
        }
        inst
    }

    /// Inserts a fact; returns `true` if it was new (set semantics).
    pub fn insert(&mut self, rel: RelId, tuple: Tuple) -> bool {
        let fresh = self.rels.entry(rel).or_default().insert(tuple);
        if fresh {
            self.nfacts += 1;
        }
        fresh
    }

    /// Inserts a [`Fact`]; returns `true` if it was new.
    pub fn insert_fact(&mut self, fact: Fact) -> bool {
        self.insert(fact.rel, fact.tuple)
    }

    /// Removes a fact; returns `true` if it was present.
    pub fn remove(&mut self, rel: RelId, tuple: &Tuple) -> bool {
        let removed = self
            .rels
            .get_mut(&rel)
            .map(|s| s.remove(tuple))
            .unwrap_or(false);
        if removed {
            self.nfacts -= 1;
            if self.rels.get(&rel).is_some_and(BTreeSet::is_empty) {
                self.rels.remove(&rel);
            }
        }
        removed
    }

    /// Membership test.
    pub fn contains(&self, rel: RelId, tuple: &Tuple) -> bool {
        self.rels.get(&rel).is_some_and(|s| s.contains(tuple))
    }

    /// The tuples of one relation (empty set if the relation has no facts).
    pub fn relation(&self, rel: RelId) -> &BTreeSet<Tuple> {
        self.rels.get(&rel).unwrap_or(&EMPTY_RELATION)
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.nfacts
    }

    /// Whether the instance holds no facts.
    pub fn is_empty(&self) -> bool {
        self.nfacts == 0
    }

    /// Number of facts in one relation.
    pub fn relation_len(&self, rel: RelId) -> usize {
        self.rels.get(&rel).map_or(0, BTreeSet::len)
    }

    /// Iterates over all facts in canonical order.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.rels
            .iter()
            .flat_map(|(&rel, tuples)| tuples.iter().map(move |t| Fact::new(rel, t.clone())))
    }

    /// The relations that currently hold at least one fact.
    pub fn populated_relations(&self) -> impl Iterator<Item = RelId> + '_ {
        self.rels.keys().copied()
    }

    /// Set union (the paper's `D ∪ {f}` generalized to whole instances).
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        out.extend_from(other);
        out
    }

    /// Adds all facts of `other` into `self`.
    pub fn extend_from(&mut self, other: &Instance) {
        for (&rel, tuples) in &other.rels {
            let slot = self.rels.entry(rel).or_default();
            for t in tuples {
                if slot.insert(t.clone()) {
                    self.nfacts += 1;
                }
            }
        }
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Instance) -> bool {
        self.rels.iter().all(|(rel, tuples)| {
            let theirs = other.relation(*rel);
            tuples.iter().all(|t| theirs.contains(t))
        })
    }

    /// Keeps only the facts whose relation satisfies `keep`.
    ///
    /// This is the schema restriction used in Remark 4.9 / §6.2 to drop the
    /// auxiliary sampling relations from final results.
    pub fn project_relations(&self, mut keep: impl FnMut(RelId) -> bool) -> Instance {
        let mut out = Instance::new();
        for (&rel, tuples) in &self.rels {
            if keep(rel) {
                let n = tuples.len();
                out.rels.insert(rel, tuples.clone());
                out.nfacts += n;
            }
        }
        out
    }

    /// Retains only facts satisfying the predicate.
    pub fn retain_facts(&mut self, mut keep: impl FnMut(RelId, &Tuple) -> bool) {
        let mut removed = 0usize;
        self.rels.retain(|&rel, tuples| {
            let before = tuples.len();
            tuples.retain(|t| keep(rel, t));
            removed += before - tuples.len();
            !tuples.is_empty()
        });
        self.nfacts -= removed;
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Instance({} facts)", self.nfacts)
    }
}

impl FromIterator<Fact> for Instance {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Instance {
        Instance::from_facts(iter)
    }
}

impl Extend<Fact> for Instance {
    fn extend<I: IntoIterator<Item = Fact>>(&mut self, iter: I) {
        for f in iter {
            self.insert_fact(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    #[test]
    fn set_semantics_insert() {
        let mut d = Instance::new();
        assert!(d.insert(r(0), tuple![1i64]));
        assert!(!d.insert(r(0), tuple![1i64]), "duplicate must be ignored");
        assert_eq!(d.len(), 1);
        assert!(d.contains(r(0), &tuple![1i64]));
        assert!(!d.contains(r(1), &tuple![1i64]));
    }

    #[test]
    fn remove_maintains_count() {
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        d.insert(r(0), tuple![2i64]);
        assert!(d.remove(r(0), &tuple![1i64]));
        assert!(!d.remove(r(0), &tuple![1i64]));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn canonical_equality_is_order_independent() {
        let mut a = Instance::new();
        a.insert(r(0), tuple![1i64]);
        a.insert(r(1), tuple!["x"]);
        let mut b = Instance::new();
        b.insert(r(1), tuple!["x"]);
        b.insert(r(0), tuple![1i64]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn union_and_subset() {
        let mut a = Instance::new();
        a.insert(r(0), tuple![1i64]);
        let mut b = Instance::new();
        b.insert(r(0), tuple![2i64]);
        b.insert(r(1), tuple![3i64]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert!(!u.is_subset_of(&a));
    }

    #[test]
    fn projection_drops_relations() {
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        d.insert(r(1), tuple![2i64]);
        let p = d.project_relations(|rel| rel == r(0));
        assert_eq!(p.len(), 1);
        assert!(p.contains(r(0), &tuple![1i64]));
        assert!(!p.contains(r(1), &tuple![2i64]));
    }

    #[test]
    fn retain_facts_updates_len() {
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        d.insert(r(0), tuple![2i64]);
        d.insert(r(1), tuple![3i64]);
        d.retain_facts(|_, t| t[0].as_i64().unwrap() >= 2);
        assert_eq!(d.len(), 2);
        assert!(!d.contains(r(0), &tuple![1i64]));
    }

    #[test]
    fn facts_iterate_in_canonical_order() {
        let mut d = Instance::new();
        d.insert(r(1), tuple![5i64]);
        d.insert(r(0), tuple![9i64]);
        d.insert(r(0), tuple![3i64]);
        let facts: Vec<_> = d.facts().collect();
        assert_eq!(facts.len(), 3);
        assert_eq!(facts[0], Fact::new(r(0), tuple![3i64]));
        assert_eq!(facts[1], Fact::new(r(0), tuple![9i64]));
        assert_eq!(facts[2], Fact::new(r(1), tuple![5i64]));
    }
}
