//! Functional dependencies: the induced FDs `FD(φ̂)` of §3.5.
//!
//! For every existential rule `φ̂` with head relation `Ri(A1,…,Ak)`, the paper
//! associates the dependency `Ri: A1,…,A_{k−1} → Ak` — "at most one value of
//! the random attribute once all other attributes are fixed" — and
//! Lemma 3.10 shows every instance reachable by the chase satisfies it.
//! The engine uses [`FunctionalDependency::check`] as a runtime invariant in
//! tests and debug assertions.

use crate::instance::Instance;
use crate::schema::RelId;
use crate::tuple::Tuple;
use std::collections::HashMap;

/// A functional dependency `rel: lhs → rhs` on column indices.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunctionalDependency {
    /// The constrained relation.
    pub rel: RelId,
    /// Determinant column indices.
    pub lhs: Vec<usize>,
    /// Dependent column indices.
    pub rhs: Vec<usize>,
}

/// A witness that an instance violates a [`FunctionalDependency`]: two
/// tuples agreeing on `lhs` but disagreeing on `rhs`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FdViolation {
    /// The violated dependency.
    pub fd: FunctionalDependency,
    /// First witness tuple.
    pub first: Tuple,
    /// Second witness tuple.
    pub second: Tuple,
}

impl std::fmt::Display for FdViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FD violation on relation {:?}: {} vs {} agree on {:?} but differ on {:?}",
            self.fd.rel, self.first, self.second, self.fd.lhs, self.fd.rhs
        )
    }
}

impl FunctionalDependency {
    /// `rel: lhs → rhs`.
    pub fn new(rel: RelId, lhs: Vec<usize>, rhs: Vec<usize>) -> Self {
        FunctionalDependency { rel, lhs, rhs }
    }

    /// The paper's shape (§3.5): all columns but the last determine the last.
    pub fn last_column_of(rel: RelId, arity: usize) -> Self {
        assert!(arity >= 1, "FD needs at least one column");
        FunctionalDependency {
            rel,
            lhs: (0..arity - 1).collect(),
            rhs: vec![arity - 1],
        }
    }

    /// Checks `instance` against this dependency.
    ///
    /// # Errors
    /// Returns the first violation found (in canonical tuple order).
    pub fn check(&self, instance: &Instance) -> Result<(), FdViolation> {
        let mut seen: HashMap<Tuple, &Tuple> = HashMap::new();
        for t in instance.relation(self.rel) {
            let key = t.project(&self.lhs);
            match seen.get(&key) {
                None => {
                    seen.insert(key, t);
                }
                Some(prev) => {
                    if prev.project(&self.rhs) != t.project(&self.rhs) {
                        return Err(FdViolation {
                            fd: self.clone(),
                            first: (*prev).clone(),
                            second: t.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks whether adding `tuple` to `instance` would violate the FD.
    pub fn admits_insert(&self, instance: &Instance, tuple: &Tuple) -> bool {
        let key = tuple.project(&self.lhs);
        let rhs = tuple.project(&self.rhs);
        instance
            .relation(self.rel)
            .iter()
            .filter(|t| t.project(&self.lhs) == key)
            .all(|t| t.project(&self.rhs) == rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    #[test]
    fn satisfied_fd() {
        let mut d = Instance::new();
        d.insert(r(0), tuple!["a", 1i64]);
        d.insert(r(0), tuple!["b", 2i64]);
        let fd = FunctionalDependency::last_column_of(r(0), 2);
        assert!(fd.check(&d).is_ok());
    }

    #[test]
    fn violated_fd_reports_witnesses() {
        let mut d = Instance::new();
        d.insert(r(0), tuple!["a", 1i64]);
        d.insert(r(0), tuple!["a", 2i64]);
        let fd = FunctionalDependency::last_column_of(r(0), 2);
        let v = fd.check(&d).unwrap_err();
        assert_eq!(v.first.project(&[0]), v.second.project(&[0]));
        assert_ne!(v.first.project(&[1]), v.second.project(&[1]));
    }

    #[test]
    fn admits_insert_respects_existing_rows() {
        let mut d = Instance::new();
        d.insert(r(0), tuple!["a", 1i64]);
        let fd = FunctionalDependency::last_column_of(r(0), 2);
        assert!(fd.admits_insert(&d, &tuple!["a", 1i64]), "same row is fine");
        assert!(fd.admits_insert(&d, &tuple!["b", 9i64]));
        assert!(!fd.admits_insert(&d, &tuple!["a", 2i64]));
    }

    #[test]
    fn fd_on_other_relation_is_vacuous() {
        let mut d = Instance::new();
        d.insert(r(1), tuple!["a", 1i64]);
        d.insert(r(1), tuple!["a", 2i64]);
        let fd = FunctionalDependency::last_column_of(r(0), 2);
        assert!(fd.check(&d).is_ok());
    }

    #[test]
    fn arity_one_fd_means_at_most_one_fact() {
        // With lhs = ∅, any two distinct tuples violate the FD.
        let fd = FunctionalDependency::last_column_of(r(0), 1);
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        assert!(fd.check(&d).is_ok());
        d.insert(r(0), tuple![2i64]);
        assert!(fd.check(&d).is_err());
    }
}
