//! Property-based tests for the data model: ordering laws, set-semantics
//! laws, canonical-form stability.

use proptest::prelude::*;

use gdatalog_data::{Catalog, ColType, Fact, Instance, RelId, RelationKind, Tuple, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only; NaN is rejected by construction.
        (-1.0e12f64..1.0e12).prop_map(Value::real),
        "[a-z][a-z0-9]{0,6}".prop_map(|s| Value::sym(&s)),
        "[ -~]{0,8}".prop_map(|s| Value::str(&s)),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(arb_value(), 0..4).prop_map(Tuple::from)
}

fn arb_fact() -> impl Strategy<Value = Fact> {
    (0u32..4, arb_tuple()).prop_map(|(r, t)| Fact::new(RelId(r), t))
}

proptest! {
    #[test]
    fn value_order_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering::*;
        match a.cmp(&b) {
            Less => prop_assert_eq!(b.cmp(&a), Greater),
            Greater => prop_assert_eq!(b.cmp(&a), Less),
            Equal => {
                prop_assert_eq!(&a, &b);
                prop_assert_eq!(b.cmp(&a), Equal);
            }
        }
    }

    #[test]
    fn value_order_is_transitive(mut vs in proptest::collection::vec(arb_value(), 3)) {
        vs.sort();
        prop_assert!(vs[0] <= vs[1] && vs[1] <= vs[2] && vs[0] <= vs[2]);
    }

    #[test]
    fn instance_insert_is_idempotent(facts in proptest::collection::vec(arb_fact(), 0..20)) {
        let once = Instance::from_facts(facts.clone());
        let twice = Instance::from_facts(facts.iter().cloned().chain(facts.iter().cloned()));
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(once.len(), once.facts().count());
    }

    #[test]
    fn instance_equality_is_insertion_order_independent(
        facts in proptest::collection::vec(arb_fact(), 0..20),
        seed in any::<u64>(),
    ) {
        let fwd = Instance::from_facts(facts.clone());
        // Deterministic shuffle driven by `seed`.
        let mut shuffled = facts;
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let rev = Instance::from_facts(shuffled);
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn union_is_commutative_and_idempotent(
        a in proptest::collection::vec(arb_fact(), 0..12),
        b in proptest::collection::vec(arb_fact(), 0..12),
    ) {
        let da = Instance::from_facts(a);
        let db = Instance::from_facts(b);
        prop_assert_eq!(da.union(&db), db.union(&da));
        prop_assert_eq!(da.union(&da), da.clone());
        prop_assert!(da.is_subset_of(&da.union(&db)));
    }

    #[test]
    fn canonical_text_is_a_complete_invariant(
        a in proptest::collection::vec(arb_fact(), 0..10),
        b in proptest::collection::vec(arb_fact(), 0..10),
    ) {
        let mut cat = Catalog::new();
        for i in 0..4 {
            cat.declare_named(&format!("R{i}"), vec![ColType::Any; 4], RelationKind::Intensional)
                .unwrap();
        }
        let da = Instance::from_facts(a);
        let db = Instance::from_facts(b);
        let ta = gdatalog_data::canonical_text(&da, &cat);
        let tb = gdatalog_data::canonical_text(&db, &cat);
        prop_assert_eq!(da == db, ta == tb);
    }

    #[test]
    fn tuple_project_preserves_values(t in arb_tuple()) {
        let all: Vec<usize> = (0..t.arity()).collect();
        prop_assert_eq!(t.project(&all), t.clone());
        if t.arity() > 0 {
            let first = t.project(&[0]);
            prop_assert_eq!(first.values()[0].clone(), t[0].clone());
        }
    }
}
