//! Boundary-parameter property tests across the Ψ family: at the edges of
//! every parameter domain — `Uniform(a, a)`, `Geometric(1.0)`,
//! `Binomial(0, p)`, `Categorical` with a single nonzero weight,
//! `Flip(0.0)` / `Flip(1.0)`, `UniformInt(a, a)` — the three capabilities
//! of a member (sample, log-density, exact support) must **agree or error
//! cleanly**, never panic:
//!
//! * inadmissible parameters are `DistError`s from *every* entry point;
//! * admissible degenerate parameters give a Dirac member: sampling is
//!   constant, the support has one outcome of mass 1, and the log-density
//!   of that outcome is 0;
//! * for any admissible discrete parameters, sampled outcomes lie in the
//!   enumerated support and `exp(log_density)` matches the tabulated pmf.

use gdatalog_data::Value;
use gdatalog_dist::{DistError, ParamDist, Registry, Support};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn family() -> Registry {
    Registry::standard()
}

/// Draws `n` samples, asserting the call is total (no panic; Ok or Err).
fn try_samples(
    dist: &dyn ParamDist,
    params: &[Value],
    n: usize,
    seed: u64,
) -> Result<Vec<Value>, DistError> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| dist.sample(params, &mut rng)).collect()
}

/// Checks sample/log-density/enumerate coherence for admissible discrete
/// parameters.
fn check_discrete_coherence(
    dist: &dyn ParamDist,
    params: &[Value],
    support: &Support,
    samples: &[Value],
) -> Result<(), TestCaseError> {
    let mass = support.tabulated_mass();
    prop_assert!(
        mass <= 1.0 + 1e-9,
        "{}: tabulated mass {mass} > 1",
        dist.name()
    );
    for (v, p) in &support.outcomes {
        prop_assert!(*p > 0.0, "{}: zero-mass outcome listed", dist.name());
        let ld = dist.log_density(params, v).map_err(|e| {
            TestCaseError::fail(format!(
                "{}: log_density on support failed: {e}",
                dist.name()
            ))
        })?;
        prop_assert!(
            (ld.exp() - p).abs() < 1e-9,
            "{}: pmf {} vs exp(log_density) {}",
            dist.name(),
            p,
            ld.exp()
        );
    }
    for s in samples {
        prop_assert!(
            support.outcomes.iter().any(|(v, _)| v == s),
            "{}: sampled {s} outside the (fully tabulated) support",
            dist.name()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Uniform(a, a)` (and reversed bounds) is an empty interval: every
    /// capability errors cleanly, for any `a`.
    #[test]
    fn uniform_empty_interval_errors_everywhere(a in -1e6f64..1e6, seed in 0u64..1000) {
        let reg = family();
        let u = reg.get("Uniform").unwrap();
        let params = [Value::real(a), Value::real(a)];
        prop_assert!(try_samples(u.as_ref(), &params, 3, seed).is_err());
        prop_assert!(u.log_density(&params, &Value::real(a)).is_err());
        prop_assert!(u.cdf(&params, a).is_err());
        let reversed = [Value::real(a), Value::real(a - 1.0)];
        prop_assert!(try_samples(u.as_ref(), &reversed, 3, seed).is_err());
    }

    /// `Geometric(1.0)` is the Dirac at 0; `Geometric(0.0)` and
    /// out-of-range probabilities are clean errors.
    #[test]
    fn geometric_boundaries(seed in 0u64..1000, tol in 1e-9f64..1e-3) {
        let reg = family();
        let g = reg.get("Geometric").unwrap();
        let one = [Value::real(1.0)];
        let samples = try_samples(g.as_ref(), &one, 8, seed).unwrap();
        prop_assert!(samples.iter().all(|v| *v == Value::int(0)));
        let support = g.enumerate(&one, tol).unwrap();
        prop_assert_eq!(&support.outcomes, &vec![(Value::int(0), 1.0)]);
        check_discrete_coherence(g.as_ref(), &one, &support, &samples)?;
        prop_assert!((g.log_density(&one, &Value::int(0)).unwrap()).abs() < 1e-12);
        for bad in [0.0, -0.25, 1.5] {
            let params = [Value::real(bad)];
            prop_assert!(try_samples(g.as_ref(), &params, 3, seed).is_err());
            prop_assert!(g.enumerate(&params, tol).is_err());
            prop_assert!(g.log_density(&params, &Value::int(1)).is_err());
        }
    }

    /// `Binomial(0, p)` is the Dirac at 0 for every admissible `p`,
    /// including the `p ∈ {0, 1}` corners.
    #[test]
    fn binomial_zero_trials_is_dirac(p in 0.0f64..1.0, seed in 0u64..1000) {
        let reg = family();
        let b = reg.get("Binomial").unwrap();
        for p in [p, 0.0, 1.0] {
            let params = [Value::int(0), Value::real(p)];
            let samples = try_samples(b.as_ref(), &params, 8, seed).unwrap();
            prop_assert!(samples.iter().all(|v| *v == Value::int(0)));
            let support = b.enumerate(&params, 1e-9).unwrap();
            prop_assert_eq!(&support.outcomes, &vec![(Value::int(0), 1.0)]);
            check_discrete_coherence(b.as_ref(), &params, &support, &samples)?;
            prop_assert!((b.log_density(&params, &Value::int(0)).unwrap()).abs() < 1e-12);
            prop_assert_eq!(
                b.log_density(&params, &Value::int(1)).unwrap(),
                f64::NEG_INFINITY
            );
        }
    }

    /// `Categorical` with a single nonzero weight is the Dirac on that
    /// value regardless of how many zero-weight entries surround it; an
    /// all-zero weight vector errors cleanly.
    #[test]
    fn categorical_single_nonzero_weight(
        pick in 0usize..4,
        w in 1e-6f64..1e6,
        seed in 0u64..1000,
    ) {
        let reg = family();
        let c = reg.get("Categorical").unwrap();
        let mut params = Vec::new();
        for i in 0..4usize {
            params.push(Value::int(i as i64));
            params.push(Value::real(if i == pick { w } else { 0.0 }));
        }
        let samples = try_samples(c.as_ref(), &params, 8, seed).unwrap();
        prop_assert!(samples.iter().all(|v| *v == Value::int(pick as i64)));
        let support = c.enumerate(&params, 1e-9).unwrap();
        prop_assert_eq!(&support.outcomes, &vec![(Value::int(pick as i64), 1.0)]);
        check_discrete_coherence(c.as_ref(), &params, &support, &samples)?;
        // All-zero weights: clean error from every capability.
        let zeros: Vec<Value> = (0..4)
            .flat_map(|i| [Value::int(i), Value::real(0.0)])
            .collect();
        prop_assert!(try_samples(c.as_ref(), &zeros, 3, seed).is_err());
        prop_assert!(c.enumerate(&zeros, 1e-9).is_err());
        prop_assert!(c.log_density(&zeros, &Value::int(0)).is_err());
    }

    /// `Flip(0)` / `Flip(1)` and `UniformInt(a, a)` are Dirac members with
    /// singleton supports of mass exactly 1.
    #[test]
    fn dirac_corners_have_singleton_supports(a in -1000i64..1000, seed in 0u64..1000) {
        let reg = family();
        let flip = reg.get("Flip").unwrap();
        for (p, outcome) in [(0.0, 0i64), (1.0, 1i64)] {
            let params = [Value::real(p)];
            let support = flip.enumerate(&params, 1e-9).unwrap();
            prop_assert_eq!(&support.outcomes, &vec![(Value::int(outcome), 1.0)]);
            let samples = try_samples(flip.as_ref(), &params, 8, seed).unwrap();
            check_discrete_coherence(flip.as_ref(), &params, &support, &samples)?;
        }
        let ui = reg.get("UniformInt").unwrap();
        let params = [Value::int(a), Value::int(a)];
        let support = ui.enumerate(&params, 1e-9).unwrap();
        prop_assert_eq!(&support.outcomes, &vec![(Value::int(a), 1.0)]);
        let samples = try_samples(ui.as_ref(), &params, 8, seed).unwrap();
        check_discrete_coherence(ui.as_ref(), &params, &support, &samples)?;
        // Reversed bounds error cleanly.
        let reversed = [Value::int(a), Value::int(a - 1)];
        prop_assert!(try_samples(ui.as_ref(), &reversed, 3, seed).is_err());
        prop_assert!(ui.enumerate(&reversed, 1e-9).is_err());
    }

    /// Fuzz the whole discrete family with arbitrary (possibly
    /// inadmissible) real parameters: every capability is total — it
    /// returns `Ok` or `Err`, and whenever both sampling and enumeration
    /// succeed they agree.
    #[test]
    fn discrete_family_is_total_on_arbitrary_parameters(
        raw in prop_oneof![
            -2.0f64..2.0,
            Just(0.0),
            Just(1.0),
            Just(-1.0),
            0.0f64..1.0,
        ],
        n in prop_oneof![Just(0i64), Just(1i64), 0i64..40],
        seed in 0u64..1000,
    ) {
        let reg = family();
        for (name, params) in [
            ("Flip", vec![Value::real(raw)]),
            ("Bernoulli", vec![Value::real(raw)]),
            ("Geometric", vec![Value::real(raw)]),
            ("Poisson", vec![Value::real(raw)]),
            ("Binomial", vec![Value::int(n), Value::real(raw)]),
            ("UniformInt", vec![Value::int(n), Value::int(n + 3)]),
        ] {
            let dist = reg.get(name).unwrap();
            let sampled = try_samples(dist.as_ref(), &params, 4, seed);
            let support = dist.enumerate(&params, 1e-6);
            match (&sampled, &support) {
                (Ok(samples), Ok(support)) => {
                    // Tolerate truncated tails: a sample may fall past the
                    // tabulated support, but tabulated outcomes must obey
                    // the density and cover the bulk of the mass.
                    check_discrete_coherence(
                        dist.as_ref(),
                        &params,
                        support,
                        if support.tabulated_mass() > 1.0 - 1e-6 {
                            samples
                        } else {
                            &[]
                        },
                    )?;
                }
                (Err(_), Err(_)) => {}
                (Ok(_), Err(e)) => {
                    return Err(TestCaseError::fail(format!(
                        "{name}: sampling admits {params:?} but enumerate rejects: {e}"
                    )));
                }
                (Err(e), Ok(_)) => {
                    return Err(TestCaseError::fail(format!(
                        "{name}: enumerate admits {params:?} but sampling rejects: {e}"
                    )));
                }
            }
        }
    }
}
