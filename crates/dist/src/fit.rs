//! Weighted parameter estimation for the standard family.
//!
//! The estimators consume `(value, weight)` observations — EM
//! responsibilities when driven by the learning subsystem, all-ones for
//! plain maximum likelihood — through the [`WeightedStats`] /
//! [`CatCounts`] sufficient-statistic accumulators, and produce a full
//! parameter vector per family:
//!
//! * closed-form weighted MLE: `Flip`/`Bernoulli`, `Poisson`,
//!   `Geometric`, `Exponential`, `Normal`, `LogNormal`, `Laplace`,
//!   `Categorical`;
//! * support bounds: `Uniform` (half-open, so the observed maximum keeps
//!   finite density), `UniformInt`;
//! * moment matching with a Newton refinement on the shape (digamma /
//!   trigamma): `Gamma`, `Beta`, and the method-of-moments `Binomial`.
//!
//! Each estimator accepts a `fixed` mask pinning parameter slots that are
//! **not** free (`Normal<0.0, ?>` estimates the variance around the given
//! mean), and [`goodness_of_fit`] scores the result in `[0, 1]` —
//! `1 − D` for the weighted Kolmogorov–Smirnov statistic on continuous
//! families, `1 − TV` (total variation) on discrete ones.

use std::collections::BTreeMap;

use gdatalog_data::Value;

use crate::special::{digamma, trigamma};
use crate::{DistError, ParamDist};

/// Variance floor for location-scale estimates: degenerate (constant)
/// data would otherwise produce a zero scale the family validators
/// reject, and EM iterations may pass through near-degenerate states.
const SCALE_FLOOR: f64 = 1e-12;

/// Errors of the estimation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The family has no estimator (or the requested fixed/free pattern
    /// is not estimable).
    Unsupported {
        /// Family name.
        dist: String,
        /// What is missing.
        msg: String,
    },
    /// No observation carried positive weight.
    NoData {
        /// Family name.
        dist: String,
    },
    /// An observation lies outside the family's support or domain.
    BadObservation {
        /// Family name.
        dist: String,
        /// The offending value.
        value: Value,
        /// Why it is inadmissible.
        msg: String,
    },
    /// The data admits no valid parameter (e.g. all-zero `Exponential`
    /// observations).
    Degenerate {
        /// Family name.
        dist: String,
        /// What degenerated.
        msg: String,
    },
    /// An underlying density/CDF evaluation failed.
    Dist(DistError),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::Unsupported { dist, msg } => {
                write!(f, "cannot fit `{dist}`: {msg}")
            }
            FitError::NoData { dist } => {
                write!(
                    f,
                    "cannot fit `{dist}`: no observations with positive weight"
                )
            }
            FitError::BadObservation { dist, value, msg } => {
                write!(f, "cannot fit `{dist}`: observation {value} {msg}")
            }
            FitError::Degenerate { dist, msg } => {
                write!(f, "cannot fit `{dist}`: {msg}")
            }
            FitError::Dist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FitError {}

impl From<DistError> for FitError {
    fn from(e: DistError) -> FitError {
        FitError::Dist(e)
    }
}

/// Weighted sufficient statistics of a numeric sample: total weight, the
/// first two weighted moments, log-moments (for `LogNormal`/`Gamma`),
/// `ln(1−x)` moments (for `Beta`), range, and the retained `(x, w)` pairs
/// that order statistics (weighted median, KS distance) need.
#[derive(Debug, Clone, Default)]
pub struct WeightedStats {
    /// Number of accumulated observations (regardless of weight).
    pub count: usize,
    /// Σ w.
    pub w: f64,
    /// Σ w·x.
    pub wx: f64,
    /// Σ w·x².
    pub wx2: f64,
    /// Σ w·ln x (NaN when some x ≤ 0).
    pub wlog: f64,
    /// Σ w·(ln x)² (NaN when some x ≤ 0).
    pub wlog2: f64,
    /// Σ w·ln(1−x) (NaN when some x ≥ 1).
    pub wlog1m: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Whether every observation was an integer [`Value`].
    pub all_int: bool,
    samples: Vec<(f64, f64)>,
}

impl WeightedStats {
    /// An empty accumulator.
    pub fn new() -> WeightedStats {
        WeightedStats {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            all_int: true,
            ..WeightedStats::default()
        }
    }

    /// Folds one weighted observation. Non-positive weights are ignored.
    pub fn push(&mut self, x: f64, w: f64, is_int: bool) {
        if w <= 0.0 || w.is_nan() {
            return;
        }
        self.count += 1;
        self.w += w;
        self.wx += w * x;
        self.wx2 += w * x * x;
        self.wlog += w * x.ln();
        self.wlog2 += w * x.ln() * x.ln();
        self.wlog1m += w * (1.0 - x).ln();
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.all_int &= is_int;
        self.samples.push((x, w));
    }

    /// Weighted mean `Σwx / Σw`.
    pub fn mean(&self) -> f64 {
        self.wx / self.w
    }

    /// Weighted (biased, MLE) variance `Σw(x−m)²/Σw` around `m`.
    pub fn var_around(&self, m: f64) -> f64 {
        (self.wx2 / self.w - 2.0 * m * self.mean() + m * m).max(0.0)
    }

    /// Weighted mean of `ln x`.
    pub fn log_mean(&self) -> f64 {
        self.wlog / self.w
    }

    /// Weighted variance of `ln x` around `m`.
    pub fn log_var_around(&self, m: f64) -> f64 {
        (self.wlog2 / self.w - 2.0 * m * self.log_mean() + m * m).max(0.0)
    }

    /// The (lower) weighted median: the smallest x with cumulative weight
    /// ≥ half the total.
    pub fn weighted_median(&self) -> f64 {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
        let half = self.w / 2.0;
        let mut acc = 0.0;
        for (x, w) in &sorted {
            acc += w;
            if acc >= half {
                return *x;
            }
        }
        self.max
    }

    /// Weighted mean absolute deviation around `m` (the Laplace scale MLE).
    pub fn mean_abs_dev(&self, m: f64) -> f64 {
        self.samples
            .iter()
            .map(|(x, w)| w * (x - m).abs())
            .sum::<f64>()
            / self.w
    }
}

/// Weighted category counts for `Categorical`: total weight per distinct
/// outcome, keyed by the outcome's canonical text (so the integer `1` and
/// the real `1.0` — which render identically — coincide, matching the
/// facts-text round trip).
#[derive(Debug, Clone, Default)]
pub struct CatCounts {
    /// Σ w per rendered outcome.
    pub by_key: BTreeMap<String, f64>,
    /// Σ w.
    pub total: f64,
}

impl CatCounts {
    /// Folds one weighted outcome. Non-positive weights are ignored.
    pub fn push(&mut self, v: &Value, w: f64) {
        if w <= 0.0 || w.is_nan() {
            return;
        }
        *self.by_key.entry(v.to_string()).or_insert(0.0) += w;
        self.total += w;
    }
}

/// Fits the free parameters of `d` to weighted observations.
///
/// `fixed` has one slot per parameter: `Some(v)` pins the slot to the
/// constant `v` (it is echoed into the result), `None` marks a free slot
/// to estimate. The returned vector is the **full** parameter tuple, valid
/// for [`ParamDist::sample`] / [`ParamDist::log_density`].
///
/// # Errors
/// [`FitError::Unsupported`] for families without an estimator or
/// fixed/free patterns that are not estimable; [`FitError::NoData`] /
/// [`FitError::BadObservation`] / [`FitError::Degenerate`] on inadmissible
/// data.
pub fn fit_params(
    d: &dyn ParamDist,
    obs: &[(Value, f64)],
    fixed: &[Option<Value>],
) -> Result<Vec<Value>, FitError> {
    let name = d.name().to_string();
    // All slots pinned: nothing to estimate, echo the constants.
    if fixed.iter().all(Option::is_some) {
        return Ok(fixed.iter().map(|v| v.clone().expect("all some")).collect());
    }
    match d.name() {
        "Flip" | "Bernoulli" => {
            let s = numeric_stats(&name, obs, |x, _| {
                (x == 0.0 || x == 1.0).then_some(()).ok_or("must be 0 or 1")
            })?;
            Ok(vec![Value::real(s.mean())])
        }
        "Poisson" => {
            let s = numeric_stats(&name, obs, |x, is_int| {
                (is_int && x >= 0.0)
                    .then_some(())
                    .ok_or("must be a non-negative integer")
            })?;
            // λ > 0 is required by the family; all-zero data pins the MLE
            // to the boundary, so floor it.
            Ok(vec![Value::real(s.mean().max(SCALE_FLOOR))])
        }
        "Geometric" => {
            let s = numeric_stats(&name, obs, |x, is_int| {
                (is_int && x >= 0.0)
                    .then_some(())
                    .ok_or("must be a non-negative integer")
            })?;
            // k counts failures before the first success: E[k] = (1−p)/p,
            // so p̂ = 1 / (1 + mean).
            Ok(vec![Value::real(1.0 / (1.0 + s.mean()))])
        }
        "Exponential" => {
            let s = numeric_stats(&name, obs, |x, _| {
                (x >= 0.0).then_some(()).ok_or("must be non-negative")
            })?;
            if s.mean() <= 0.0 || s.mean().is_nan() {
                return Err(FitError::Degenerate {
                    dist: name,
                    msg: "all observations are zero; the rate MLE diverges".into(),
                });
            }
            Ok(vec![Value::real(1.0 / s.mean())])
        }
        "Normal" => {
            let s = numeric_stats(&name, obs, |_, _| Ok(()))?;
            let mu = match &fixed[0] {
                Some(v) => fixed_f64(&name, v)?,
                None => s.mean(),
            };
            let var = match &fixed[1] {
                Some(v) => fixed_f64(&name, v)?,
                None => s.var_around(mu).max(SCALE_FLOOR),
            };
            Ok(vec![Value::real(mu), Value::real(var)])
        }
        "LogNormal" => {
            let s = numeric_stats(&name, obs, |x, _| {
                (x > 0.0).then_some(()).ok_or("must be positive")
            })?;
            let mu = match &fixed[0] {
                Some(v) => fixed_f64(&name, v)?,
                None => s.log_mean(),
            };
            let var = match &fixed[1] {
                Some(v) => fixed_f64(&name, v)?,
                None => s.log_var_around(mu).max(SCALE_FLOOR),
            };
            Ok(vec![Value::real(mu), Value::real(var)])
        }
        "Laplace" => {
            let s = numeric_stats(&name, obs, |_, _| Ok(()))?;
            let mu = match &fixed[0] {
                Some(v) => fixed_f64(&name, v)?,
                None => s.weighted_median(),
            };
            let b = match &fixed[1] {
                Some(v) => fixed_f64(&name, v)?,
                None => s.mean_abs_dev(mu).max(SCALE_FLOOR),
            };
            Ok(vec![Value::real(mu), Value::real(b)])
        }
        "Uniform" => {
            let s = numeric_stats(&name, obs, |_, _| Ok(()))?;
            let a = match &fixed[0] {
                Some(v) => fixed_f64(&name, v)?,
                None => s.min,
            };
            // The support is the half-open [a, b): widen past the maximum
            // so the largest observation keeps finite density.
            let b = match &fixed[1] {
                Some(v) => fixed_f64(&name, v)?,
                None => next_up(s.max.max(a)),
            };
            if a.partial_cmp(&b) != Some(std::cmp::Ordering::Less) {
                return Err(FitError::Degenerate {
                    dist: name,
                    msg: format!("estimated interval [{a}, {b}) is empty"),
                });
            }
            Ok(vec![Value::real(a), Value::real(b)])
        }
        "UniformInt" => {
            let s = numeric_stats(&name, obs, |_, is_int| {
                is_int.then_some(()).ok_or("must be an integer")
            })?;
            let lo = match &fixed[0] {
                Some(v) => fixed_i64(&name, v)?,
                None => s.min as i64,
            };
            let hi = match &fixed[1] {
                Some(v) => fixed_i64(&name, v)?,
                None => s.max as i64,
            };
            if lo > hi {
                return Err(FitError::Degenerate {
                    dist: name,
                    msg: format!("estimated range [{lo}, {hi}] is empty"),
                });
            }
            Ok(vec![Value::int(lo), Value::int(hi)])
        }
        "Binomial" => {
            let s = numeric_stats(&name, obs, |x, is_int| {
                (is_int && x >= 0.0)
                    .then_some(())
                    .ok_or("must be a non-negative integer")
            })?;
            let m = s.mean();
            let n = match (&fixed[0], &fixed[1]) {
                (Some(v), _) => fixed_i64(&name, v)?,
                (None, p_fixed) => {
                    // Method of moments: Var = np(1−p) = m(1−p), so
                    // p ≈ 1 − Var/m and n ≈ m/p; with p pinned, n = m/p
                    // directly. Always at least the largest observation.
                    let p_hint = match p_fixed {
                        Some(v) => fixed_f64(&name, v)?,
                        None => {
                            let var = s.var_around(m);
                            if m > 0.0 {
                                (1.0 - var / m).clamp(0.05, 1.0)
                            } else {
                                1.0
                            }
                        }
                    };
                    let guess = if p_hint > 0.0 {
                        (m / p_hint).round() as i64
                    } else {
                        0
                    };
                    guess.max(s.max as i64).max(1)
                }
            };
            if (s.max as i64) > n {
                return Err(FitError::BadObservation {
                    dist: name,
                    value: Value::int(s.max as i64),
                    msg: format!("exceeds the fixed trial count {n}"),
                });
            }
            let p = match &fixed[1] {
                Some(v) => fixed_f64(&name, v)?,
                None => (m / n as f64).clamp(0.0, 1.0),
            };
            Ok(vec![Value::int(n), Value::real(p)])
        }
        "Gamma" => {
            let s = numeric_stats(&name, obs, |x, _| {
                (x > 0.0).then_some(()).ok_or("must be positive")
            })?;
            let m = s.mean();
            let (k, theta) = match (&fixed[0], &fixed[1]) {
                (Some(kv), None) => {
                    let k = fixed_f64(&name, kv)?;
                    (k, m / k)
                }
                (None, Some(tv)) => {
                    // Solve ψ(k) = E[ln x] − ln θ by Newton.
                    let theta = fixed_f64(&name, tv)?;
                    let c = s.log_mean() - theta.ln();
                    let mut k = (m / theta).max(1e-3);
                    for _ in 0..64 {
                        let step = (digamma(k) - c) / trigamma(k);
                        k = (k - step).max(k / 10.0).max(1e-8);
                        if step.abs() < 1e-12 * k.max(1.0) {
                            break;
                        }
                    }
                    (k, theta)
                }
                (None, None) => {
                    // s = ln(mean) − mean(ln x) ≥ 0 (Jensen); the classic
                    // closed-form start, then Newton on
                    // f(k) = ln k − ψ(k) − s.
                    let sgap = (m.ln() - s.log_mean()).max(1e-12);
                    let mut k =
                        (3.0 - sgap + ((sgap - 3.0).powi(2) + 24.0 * sgap).sqrt()) / (12.0 * sgap);
                    for _ in 0..64 {
                        let f = k.ln() - digamma(k) - sgap;
                        let fp = 1.0 / k - trigamma(k);
                        let step = f / fp;
                        k = (k - step).max(k / 10.0).max(1e-8);
                        if step.abs() < 1e-12 * k.max(1.0) {
                            break;
                        }
                    }
                    (k, m / k)
                }
                (Some(_), Some(_)) => unreachable!("all-fixed handled above"),
            };
            if !(k > 0.0 && theta > 0.0) {
                return Err(FitError::Degenerate {
                    dist: name,
                    msg: format!("estimated shape {k} / scale {theta} not positive"),
                });
            }
            Ok(vec![Value::real(k), Value::real(theta)])
        }
        "Beta" => {
            let s = numeric_stats(&name, obs, |x, _| {
                (0.0 < x && x < 1.0)
                    .then_some(())
                    .ok_or("must lie strictly in (0, 1)")
            })?;
            let m = s.mean();
            let var = s.var_around(m).max(SCALE_FLOOR);
            // Moment-matching start: α+β = m(1−m)/Var − 1.
            let t = (m * (1.0 - m) / var - 1.0).max(1e-3);
            let mut a = (m * t).max(1e-3);
            let mut b = ((1.0 - m) * t).max(1e-3);
            if let Some(v) = &fixed[0] {
                a = fixed_f64(&name, v)?;
            }
            if let Some(v) = &fixed[1] {
                b = fixed_f64(&name, v)?;
            }
            let lx = s.wlog / s.w;
            let l1x = s.wlog1m / s.w;
            // Newton refinement of the MLE score equations
            // ψ(α) − ψ(α+β) = E[ln x], ψ(β) − ψ(α+β) = E[ln(1−x)],
            // restricted to the free coordinates.
            for _ in 0..64 {
                let psi_ab = digamma(a + b);
                let tri_ab = trigamma(a + b);
                let g1 = digamma(a) - psi_ab - lx;
                let g2 = digamma(b) - psi_ab - l1x;
                let (da, db) = match (&fixed[0], &fixed[1]) {
                    (None, None) => {
                        // Solve the 2×2 system [h11 h12; h12 h22]·d = g.
                        let h11 = trigamma(a) - tri_ab;
                        let h22 = trigamma(b) - tri_ab;
                        let h12 = -tri_ab;
                        let det = h11 * h22 - h12 * h12;
                        if det.abs() < 1e-300 {
                            break;
                        }
                        ((g1 * h22 - g2 * h12) / det, (g2 * h11 - g1 * h12) / det)
                    }
                    (None, Some(_)) => ((g1) / (trigamma(a) - tri_ab), 0.0),
                    (Some(_), None) => (0.0, (g2) / (trigamma(b) - tri_ab)),
                    (Some(_), Some(_)) => unreachable!("all-fixed handled above"),
                };
                a = (a - da).max(a / 10.0).max(1e-8);
                b = (b - db).max(b / 10.0).max(1e-8);
                if da.abs() < 1e-10 * a.max(1.0) && db.abs() < 1e-10 * b.max(1.0) {
                    break;
                }
            }
            Ok(vec![Value::real(a), Value::real(b)])
        }
        "Categorical" => {
            // Parameters are ⟨v₁, w₁, …, vₖ, wₖ⟩ pairs: every value slot
            // must be pinned (the support is part of the model); every
            // weight slot must be free. The estimates are the relative
            // weight masses, which the family normalizes.
            if !fixed.len().is_multiple_of(2) || fixed.is_empty() {
                return Err(FitError::Unsupported {
                    dist: name,
                    msg: "Categorical takes value/weight pairs".into(),
                });
            }
            let mut values = Vec::new();
            for i in (0..fixed.len()).step_by(2) {
                match (&fixed[i], &fixed[i + 1]) {
                    (Some(v), None) => values.push(v.clone()),
                    (None, _) => {
                        return Err(FitError::Unsupported {
                            dist: name,
                            msg: "category values must be constants; only the \
                                  weights can be free (e.g. `Categorical<a, ?, b, ?>`)"
                                .into(),
                        })
                    }
                    (Some(_), Some(_)) => {
                        return Err(FitError::Unsupported {
                            dist: name,
                            msg: "mixing fixed and free weights is not estimable; \
                                  leave every weight free"
                                .into(),
                        })
                    }
                }
            }
            let mut counts = CatCounts::default();
            for (v, w) in obs {
                counts.push(v, *w);
            }
            if counts.total <= 0.0 {
                return Err(FitError::NoData { dist: name });
            }
            for key in counts.by_key.keys() {
                if !values.iter().any(|v| v.to_string() == *key) {
                    return Err(FitError::BadObservation {
                        dist: name,
                        value: Value::sym(key),
                        msg: "is not among the declared category values".into(),
                    });
                }
            }
            let mut out = Vec::with_capacity(fixed.len());
            for v in &values {
                let mass = counts.by_key.get(&v.to_string()).copied().unwrap_or(0.0);
                out.push(v.clone());
                out.push(Value::real(mass / counts.total));
            }
            Ok(out)
        }
        other => Err(FitError::Unsupported {
            dist: other.to_string(),
            msg: "no estimator is registered for this family".into(),
        }),
    }
}

/// Σ w·log f(x | params): the weighted log-likelihood of the observations
/// under the fitted parameters.
///
/// # Errors
/// Underlying density errors.
pub fn weighted_log_likelihood(
    d: &dyn ParamDist,
    params: &[Value],
    obs: &[(Value, f64)],
) -> Result<f64, FitError> {
    let mut acc = 0.0;
    for (v, w) in obs {
        if *w > 0.0 {
            acc += w * d.log_density(params, v)?;
        }
    }
    Ok(acc)
}

/// A goodness-of-fit score in `[0, 1]` (higher is better): `1 − D` for
/// the weighted Kolmogorov–Smirnov distance between the empirical CDF and
/// the fitted CDF on continuous families, `1 − TV` (total variation
/// between empirical and fitted pmf) on discrete ones.
///
/// # Errors
/// [`FitError::NoData`] without positively-weighted observations;
/// underlying CDF/enumeration errors.
pub fn goodness_of_fit(
    d: &dyn ParamDist,
    params: &[Value],
    obs: &[(Value, f64)],
) -> Result<f64, FitError> {
    let total: f64 = obs.iter().map(|(_, w)| w.max(0.0)).sum();
    if total <= 0.0 || total.is_nan() {
        return Err(FitError::NoData {
            dist: d.name().to_string(),
        });
    }
    if d.is_discrete() {
        let mut emp: BTreeMap<String, f64> = BTreeMap::new();
        for (v, w) in obs {
            if *w > 0.0 {
                *emp.entry(v.to_string()).or_insert(0.0) += w / total;
            }
        }
        let support = d.enumerate(params, 1e-9)?;
        let mut tv = 0.0;
        let mut seen_mass = 0.0;
        for (v, p) in &support.outcomes {
            let e = emp.remove(&v.to_string()).unwrap_or(0.0);
            tv += (e - p).abs();
            seen_mass += p;
        }
        // Empirical mass on outcomes outside the tabulated support, plus
        // fitted tail mass lost to truncation.
        tv += emp.values().sum::<f64>() + (1.0 - seen_mass).max(0.0);
        Ok((1.0 - 0.5 * tv).clamp(0.0, 1.0))
    } else {
        let mut pts: Vec<(f64, f64)> = obs
            .iter()
            .filter(|(_, w)| *w > 0.0)
            .map(|(v, w)| {
                v.as_f64()
                    .map(|x| (x, *w))
                    .ok_or_else(|| FitError::BadObservation {
                        dist: d.name().to_string(),
                        value: v.clone(),
                        msg: "is not numeric".into(),
                    })
            })
            .collect::<Result<_, _>>()?;
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut ks = 0.0f64;
        let mut cum = 0.0;
        for (x, w) in &pts {
            let f = d.cdf(params, *x)?;
            // Both sides of the empirical step at x.
            ks = ks.max((cum / total - f).abs());
            cum += w;
            ks = ks.max((cum / total - f).abs());
        }
        Ok((1.0 - ks).clamp(0.0, 1.0))
    }
}

/// The next representable `f64` above `x` (manual `nextafter`).
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1);
    }
    let bits = x.to_bits();
    if x > 0.0 {
        f64::from_bits(bits + 1)
    } else {
        f64::from_bits(bits - 1)
    }
}

/// Accumulates numeric observations, checking each against the family's
/// domain predicate (which returns a static description on violation).
fn numeric_stats(
    dist: &str,
    obs: &[(Value, f64)],
    check: impl Fn(f64, bool) -> Result<(), &'static str>,
) -> Result<WeightedStats, FitError> {
    let mut s = WeightedStats::new();
    for (v, w) in obs {
        if *w <= 0.0 || w.is_nan() {
            continue;
        }
        let x = v.as_f64().ok_or_else(|| FitError::BadObservation {
            dist: dist.to_string(),
            value: v.clone(),
            msg: "is not numeric".into(),
        })?;
        let is_int = v.as_i64().is_some();
        check(x, is_int).map_err(|msg| FitError::BadObservation {
            dist: dist.to_string(),
            value: v.clone(),
            msg: msg.to_string(),
        })?;
        s.push(x, *w, is_int);
    }
    if s.count == 0 {
        return Err(FitError::NoData {
            dist: dist.to_string(),
        });
    }
    Ok(s)
}

fn fixed_f64(dist: &str, v: &Value) -> Result<f64, FitError> {
    v.as_f64().ok_or_else(|| FitError::BadObservation {
        dist: dist.to_string(),
        value: v.clone(),
        msg: "pins a numeric parameter but is not numeric".into(),
    })
}

fn fixed_i64(dist: &str, v: &Value) -> Result<i64, FitError> {
    v.as_i64().ok_or_else(|| FitError::BadObservation {
        dist: dist.to_string(),
        value: v.clone(),
        msg: "pins an integer parameter but is not an integer".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use gdatalog_data::Value;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draws(dist: &str, params: &[Value], n: usize, seed: u64) -> Vec<(Value, f64)> {
        let reg = Registry::standard();
        let d = reg.get(dist).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (d.sample(params, &mut rng).unwrap(), 1.0))
            .collect()
    }

    fn fit(dist: &str, obs: &[(Value, f64)], fixed: &[Option<Value>]) -> Vec<f64> {
        let reg = Registry::standard();
        let d = reg.get(dist).unwrap();
        fit_params(d.as_ref(), obs, fixed)
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect()
    }

    #[test]
    fn normal_mle_recovers_moments() {
        let obs = draws("Normal", &[Value::real(3.0), Value::real(4.0)], 4000, 7);
        let est = fit("Normal", &obs, &[None, None]);
        assert!((est[0] - 3.0).abs() < 0.15, "mu = {}", est[0]);
        assert!((est[1] - 4.0).abs() < 0.5, "var = {}", est[1]);
        // Fixed mean: only the variance is estimated, around the pin.
        let est = fit("Normal", &obs, &[Some(Value::real(0.0)), None]);
        assert_eq!(est[0], 0.0);
        assert!(
            est[1] > 4.0,
            "variance around 0 must exceed the central one"
        );
    }

    #[test]
    fn closed_form_families_recover() {
        let obs = draws("Flip", &[Value::real(0.3)], 4000, 1);
        assert!((fit("Flip", &obs, &[None])[0] - 0.3).abs() < 0.03);
        let obs = draws("Poisson", &[Value::real(4.5)], 4000, 2);
        assert!((fit("Poisson", &obs, &[None])[0] - 4.5).abs() < 0.15);
        let obs = draws("Geometric", &[Value::real(0.25)], 4000, 3);
        assert!((fit("Geometric", &obs, &[None])[0] - 0.25).abs() < 0.02);
        let obs = draws("Exponential", &[Value::real(2.0)], 4000, 4);
        assert!((fit("Exponential", &obs, &[None])[0] - 2.0).abs() < 0.15);
        let obs = draws("LogNormal", &[Value::real(0.5), Value::real(0.25)], 4000, 5);
        let est = fit("LogNormal", &obs, &[None, None]);
        assert!((est[0] - 0.5).abs() < 0.05 && (est[1] - 0.25).abs() < 0.05);
        let obs = draws("Laplace", &[Value::real(-1.0), Value::real(2.0)], 4000, 6);
        let est = fit("Laplace", &obs, &[None, None]);
        assert!((est[0] + 1.0).abs() < 0.2 && (est[1] - 2.0).abs() < 0.2);
    }

    #[test]
    fn support_families_bracket_the_data() {
        let obs = draws("Uniform", &[Value::real(2.0), Value::real(5.0)], 2000, 8);
        let est = fit("Uniform", &obs, &[None, None]);
        assert!(est[0] >= 2.0 && est[0] < 2.05, "a = {}", est[0]);
        assert!(est[1] <= 5.0 && est[1] > 4.95, "b = {}", est[1]);
        // Every observation (including the max) has finite density.
        let reg = Registry::standard();
        let d = reg.get("Uniform").unwrap();
        let params = [Value::real(est[0]), Value::real(est[1])];
        for (v, _) in &obs {
            assert!(d.log_density(&params, v).unwrap().is_finite());
        }
        let obs = draws("UniformInt", &[Value::int(-2), Value::int(7)], 2000, 9);
        let est = fit("UniformInt", &obs, &[None, None]);
        assert_eq!(est, vec![-2.0, 7.0]);
    }

    #[test]
    fn newton_families_recover() {
        let obs = draws("Gamma", &[Value::real(3.0), Value::real(2.0)], 6000, 10);
        let est = fit("Gamma", &obs, &[None, None]);
        assert!((est[0] - 3.0).abs() < 0.3, "shape = {}", est[0]);
        assert!((est[1] - 2.0).abs() < 0.3, "scale = {}", est[1]);
        // Fixed scale → 1-d Newton on the shape.
        let est = fit("Gamma", &obs, &[None, Some(Value::real(2.0))]);
        assert!((est[0] - 3.0).abs() < 0.2, "shape = {}", est[0]);
        let obs = draws("Beta", &[Value::real(2.0), Value::real(5.0)], 6000, 11);
        let est = fit("Beta", &obs, &[None, None]);
        assert!((est[0] - 2.0).abs() < 0.3, "alpha = {}", est[0]);
        assert!((est[1] - 5.0).abs() < 0.7, "beta = {}", est[1]);
        let obs = draws("Binomial", &[Value::int(12), Value::real(0.3)], 6000, 12);
        let est = fit("Binomial", &obs, &[Some(Value::int(12)), None]);
        assert!((est[1] - 0.3).abs() < 0.02, "p = {}", est[1]);
        let est = fit("Binomial", &obs, &[None, None]);
        assert!((est[0] - 12.0).abs() <= 3.0, "n = {}", est[0]);
        assert!(
            (est[0] * est[1] - 3.6).abs() < 0.2,
            "np = {}",
            est[0] * est[1]
        );
    }

    #[test]
    fn categorical_frequencies() {
        let params = [
            Value::sym("a"),
            Value::real(0.6),
            Value::sym("b"),
            Value::real(0.3),
            Value::sym("c"),
            Value::real(0.1),
        ];
        let obs = draws("Categorical", &params, 5000, 13);
        let reg = Registry::standard();
        let d = reg.get("Categorical").unwrap();
        let fixed = vec![
            Some(Value::sym("a")),
            None,
            Some(Value::sym("b")),
            None,
            Some(Value::sym("c")),
            None,
        ];
        let est = fit_params(d.as_ref(), &obs, &fixed).unwrap();
        assert_eq!(est[0], Value::sym("a"));
        assert!((est[1].as_f64().unwrap() - 0.6).abs() < 0.03);
        assert!((est[3].as_f64().unwrap() - 0.3).abs() < 0.03);
        assert!((est[5].as_f64().unwrap() - 0.1).abs() < 0.03);
        // Value slots must be pinned.
        assert!(matches!(
            fit_params(d.as_ref(), &obs, &[None, None]),
            Err(FitError::Unsupported { .. })
        ));
    }

    #[test]
    fn weights_matter() {
        // Two points with asymmetric weight: the Flip MLE is the weighted
        // mean, not the count mean.
        let obs = vec![(Value::int(1), 3.0), (Value::int(0), 1.0)];
        assert!((fit("Flip", &obs, &[None])[0] - 0.75).abs() < 1e-12);
        // Zero and negative weights are ignored.
        let obs = vec![
            (Value::int(1), 1.0),
            (Value::int(0), 0.0),
            (Value::int(0), -2.0),
        ];
        assert!((fit("Flip", &obs, &[None])[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gof_separates_good_from_bad_fits() {
        let reg = Registry::standard();
        let d = reg.get("Normal").unwrap();
        let obs = draws("Normal", &[Value::real(0.0), Value::real(1.0)], 2000, 14);
        let good =
            goodness_of_fit(d.as_ref(), &[Value::real(0.0), Value::real(1.0)], &obs).unwrap();
        let bad = goodness_of_fit(d.as_ref(), &[Value::real(3.0), Value::real(0.1)], &obs).unwrap();
        assert!(good > 0.95, "good = {good}");
        assert!(bad < 0.2, "bad = {bad}");
        // Discrete path: total-variation score.
        let d = reg.get("Poisson").unwrap();
        let obs = draws("Poisson", &[Value::real(3.0)], 2000, 15);
        let good = goodness_of_fit(d.as_ref(), &[Value::real(3.0)], &obs).unwrap();
        let bad = goodness_of_fit(d.as_ref(), &[Value::real(9.0)], &obs).unwrap();
        assert!(good > 0.9, "good = {good}");
        assert!(bad < 0.35, "bad = {bad}");
    }

    #[test]
    fn error_paths_are_actionable() {
        let reg = Registry::standard();
        let d = reg.get("Exponential").unwrap();
        // Negative observation.
        let err = fit_params(d.as_ref(), &[(Value::real(-1.0), 1.0)], &[None]).unwrap_err();
        assert!(err.to_string().contains("must be non-negative"), "{err}");
        // No data.
        let err = fit_params(d.as_ref(), &[], &[None]).unwrap_err();
        assert!(matches!(err, FitError::NoData { .. }));
        // All-zero exponential data.
        let err = fit_params(d.as_ref(), &[(Value::real(0.0), 1.0)], &[None]).unwrap_err();
        assert!(matches!(err, FitError::Degenerate { .. }));
        // Non-integer Poisson observation.
        let d = reg.get("Poisson").unwrap();
        let err = fit_params(d.as_ref(), &[(Value::real(1.5), 1.0)], &[None]).unwrap_err();
        assert!(err.to_string().contains("non-negative integer"), "{err}");
    }

    #[test]
    fn log_likelihood_is_maximized_near_the_mle() {
        let reg = Registry::standard();
        let d = reg.get("Normal").unwrap();
        let obs = draws("Normal", &[Value::real(1.0), Value::real(2.0)], 1000, 16);
        let est = fit_params(d.as_ref(), &obs, &[None, None]).unwrap();
        let at_mle = weighted_log_likelihood(d.as_ref(), &est, &obs).unwrap();
        let off = weighted_log_likelihood(d.as_ref(), &[Value::real(2.0), Value::real(2.0)], &obs)
            .unwrap();
        assert!(at_mle > off);
    }
}
