//! Special functions underlying the densities: `ln Γ`, the error function,
//! and the standard normal CDF/PDF. Self-contained (no external crates) and
//! accurate to ~1e-14 (`ln Γ`) / ~1.2e-7 (erf), which is ample for density
//! bookkeeping and statistical verification.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
#[allow(clippy::excessive_precision, clippy::approx_constant)]
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small/negative arguments.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(n!)` via `ln Γ(n+1)`, exact for small `n`.
#[allow(clippy::excessive_precision, clippy::approx_constant)]
pub fn ln_factorial(n: u64) -> f64 {
    const SMALL: [f64; 16] = [
        0.0,
        0.0,
        0.693_147_180_559_945_3,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_47,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_89,
    ];
    if (n as usize) < SMALL.len() {
        SMALL[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// The digamma function `ψ(x) = d/dx ln Γ(x)` (recurrence into the
/// asymptotic region, then the standard Bernoulli-number series; ~1e-12
/// over the positive axis). Used by the Newton solver for Gamma/Beta
/// shape estimation.
pub fn digamma(x: f64) -> f64 {
    let mut x = x;
    let mut acc = 0.0;
    // ψ(x) = ψ(x+1) − 1/x: shift into x ≥ 10 where the series converges.
    while x < 10.0 {
        acc -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// The trigamma function `ψ′(x)` (same shift + asymptotic series), the
/// derivative the Newton updates divide by.
pub fn trigamma(x: f64) -> f64 {
    let mut x = x;
    let mut acc = 0.0;
    while x < 10.0 {
        acc += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    acc + inv * (1.0 + 0.5 * inv + inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 / 42.0)))
}

/// The error function (Abramowitz & Stegun 7.1.26; |ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// CDF of the standard normal distribution.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// PDF of the standard normal distribution.
pub fn std_normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)` (Lentz continued
/// fraction with the symmetry split at `x = (a+1)/(a+b+2)`), used by the
/// Beta CDF and the fit goodness-of-fit score.
pub fn regularized_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    // The exponent is symmetric under (a, x) ↔ (b, 1−x), so one front
    // factor serves both branches of the continued-fraction split.
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta (Numerical Recipes
/// `betacf`).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < 1e-300 {
        d = 1e-300;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + aa / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < 1e-300 {
            d = 1e-300;
        }
        c = 1.0 + aa / c;
        if c.abs() < 1e-300 {
            c = 1e-300;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Regularized lower incomplete gamma function `P(a, x)` (series /
/// continued fraction split), used by the Poisson CDF.
pub fn regularized_gamma_p(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut ap = a;
        for _ in 0..500 {
            ap += 1.0;
            term *= x / ap;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Lentz continued fraction for Q(a, x).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        1.0 - (-x + a * x.ln() - ln_gamma(a)).exp() * h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1u64..15 {
            let exact: f64 = (1..n).map(|k| (k as f64).ln()).sum();
            assert!((ln_gamma(n as f64) - exact).abs() < 1e-10, "n = {n}");
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((std_normal_cdf(1.959_963_985) - 0.975).abs() < 1e-6);
        assert!((std_normal_cdf(-1.959_963_985) - 0.025).abs() < 1e-6);
        assert!(std_normal_cdf(8.0) > 1.0 - 1e-14);
    }

    #[test]
    fn digamma_and_trigamma_reference_points() {
        // ψ(1) = −γ (Euler–Mascheroni).
        assert!((digamma(1.0) + 0.577_215_664_901_532_9).abs() < 1e-10);
        // ψ(x+1) = ψ(x) + 1/x.
        for x in [0.3, 1.7, 4.2, 11.0] {
            assert!(
                (digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10,
                "x = {x}"
            );
        }
        // ψ′(1) = π²/6.
        let pi2_6 = std::f64::consts::PI.powi(2) / 6.0;
        assert!((trigamma(1.0) - pi2_6).abs() < 1e-10);
        // Finite-difference cross-check of ψ′ against ψ.
        for x in [0.8, 2.5, 9.0] {
            let h = 1e-6;
            let fd = (digamma(x + h) - digamma(x - h)) / (2.0 * h);
            assert!((trigamma(x) - fd).abs() < 1e-5, "x = {x}");
        }
    }

    #[test]
    fn regularized_beta_reference_points() {
        // I_x(1, 1) = x (uniform CDF).
        for x in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert!((regularized_beta(1.0, 1.0, x) - x).abs() < 1e-12, "x = {x}");
        }
        // I_x(2, 1) = x² ; I_x(1, 2) = 1 − (1−x)².
        assert!((regularized_beta(2.0, 1.0, 0.3) - 0.09).abs() < 1e-12);
        assert!((regularized_beta(1.0, 2.0, 0.3) - 0.51).abs() < 1e-12);
        // Symmetry: I_x(a, b) = 1 − I_{1−x}(b, a).
        for (a, b, x) in [(2.5, 0.7, 0.2), (4.0, 9.0, 0.6), (0.5, 0.5, 0.5)] {
            let lhs = regularized_beta(a, b, x);
            let rhs = 1.0 - regularized_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "({a}, {b}, {x})");
        }
        // Beta(0.5, 0.5) median is 0.5 (arcsine law).
        assert!((regularized_beta(0.5, 0.5, 0.5) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_reference_points() {
        // P(1, x) = 1 - e^{-x}.
        for x in [0.1, 1.0, 3.0, 10.0] {
            assert!((regularized_gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-10);
        }
        // Poisson(λ=5): P(N ≤ 4) = Q(5, 5) = 1 - P(5, 5) ≈ 0.440493.
        assert!((1.0 - regularized_gamma_p(5.0, 5.0) - 0.440_493_285).abs() < 1e-6);
    }
}
