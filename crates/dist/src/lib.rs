#![warn(missing_docs)]

//! # gdatalog-dist
//!
//! The **parameterized distribution family Ψ** of Def. 2.1: every member
//! `ψ ∈ Ψ` is a measurable function from an admissible parameter space to
//! the probability measures over one attribute domain. This crate is the
//! executable counterpart:
//!
//! * [`ParamDist`] — one family member: sampling, (log-)densities with
//!   respect to the reference measure (counting measure for discrete
//!   members, Lebesgue for continuous ones), cumulative distribution
//!   functions, and — for discrete members — **exact support
//!   enumeration** with rigorous truncation accounting, which is what the
//!   exact chase-tree engine consumes.
//! * [`Registry`] — a concrete family Ψ. [`Registry::standard`] provides
//!   the members used throughout the paper's examples (Flip/Bernoulli,
//!   Categorical, UniformInt, Binomial, Geometric, Poisson) and the
//!   continuous ones the title is about (Uniform, Normal, Exponential,
//!   Gamma, Beta, LogNormal, Laplace).
//! * [`special`] — the special functions (`ln Γ`, erf, the standard
//!   normal CDF, digamma/trigamma, the regularized incomplete beta) the
//!   densities and estimators are built from.
//! * [`fit`] — weighted maximum-likelihood / moment-matching parameter
//!   estimation per family, consumed by the learning subsystem
//!   (`gdl fit`).
//!
//! Parameters arrive as [`Value`]s evaluated from rule bodies at chase
//! time, so every member validates them at the call site and reports
//! [`DistError`] rather than panicking — an invalid parameter (say a
//! negative variance flowing in from data) is a *runtime* error of the
//! program being evaluated, not of the engine.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use gdatalog_data::{ColType, Value};
use rand::Rng;

pub mod family;
pub mod fit;
pub mod special;

/// Errors raised by distribution members.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// Wrong number of parameters for the member.
    ParamCount {
        /// Distribution name.
        dist: &'static str,
        /// Expected arity.
        expected: DistArity,
        /// Number of parameters supplied.
        found: usize,
    },
    /// A parameter is outside the admissible space Θψ.
    BadParam {
        /// Distribution name.
        dist: &'static str,
        /// Human-readable description of the violation.
        msg: String,
    },
    /// An outcome incompatible with the member's support was supplied to a
    /// density query.
    BadOutcome {
        /// Distribution name.
        dist: &'static str,
        /// The offending outcome.
        outcome: Value,
    },
    /// The requested operation is not defined for this member (e.g. exact
    /// enumeration of a continuous distribution).
    Unsupported {
        /// Distribution name.
        dist: &'static str,
        /// The unsupported operation.
        op: &'static str,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::ParamCount {
                dist,
                expected,
                found,
            } => write!(f, "`{dist}` expects {expected} parameter(s), found {found}"),
            DistError::BadParam { dist, msg } => write!(f, "invalid parameter for `{dist}`: {msg}"),
            DistError::BadOutcome { dist, outcome } => {
                write!(f, "outcome {outcome} is outside the support of `{dist}`")
            }
            DistError::Unsupported { dist, op } => {
                write!(f, "`{dist}` does not support {op}")
            }
        }
    }
}

impl std::error::Error for DistError {}

/// Admissible parameter counts of a family member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistArity {
    /// Exactly `n` parameters.
    Exact(usize),
    /// An even, positive number of parameters (value/weight pairs).
    EvenPairs,
}

impl DistArity {
    /// Whether `n` parameters are admissible.
    pub fn admits(self, n: usize) -> bool {
        match self {
            DistArity::Exact(k) => n == k,
            DistArity::EvenPairs => n >= 2 && n.is_multiple_of(2),
        }
    }
}

impl fmt::Display for DistArity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistArity::Exact(k) => write!(f, "{k}"),
            DistArity::EvenPairs => write!(f, "an even number of"),
        }
    }
}

/// The tabulated support of a discrete member under given parameters.
///
/// For finite-support members the outcomes carry the whole mass
/// (`tabulated_mass() == 1`); countably-infinite supports are truncated at
/// the requested tail tolerance and the caller charges the missing mass to
/// the truncation deficit of the SPDB (see `gdatalog-pdb`).
#[derive(Debug, Clone)]
pub struct Support {
    /// `(outcome, probability)` pairs, each with positive probability.
    pub outcomes: Vec<(Value, f64)>,
}

impl Support {
    /// Total probability mass of the tabulated outcomes.
    pub fn tabulated_mass(&self) -> f64 {
        self.outcomes.iter().map(|(_, p)| p).sum()
    }
}

/// One member ψ of the parameterized family Ψ (Def. 2.1).
///
/// Implementations must be deterministic functions of `(params, rng
/// stream)` — the Monte-Carlo engine relies on this for bit-identical
/// multi-threaded runs.
pub trait ParamDist: Send + Sync {
    /// The member's name as it appears in program text (`Flip`, `Normal`…).
    fn name(&self) -> &str;

    /// Admissible parameter counts.
    fn arity(&self) -> DistArity;

    /// The attribute domain the member's measures live on.
    fn output_type(&self) -> ColType;

    /// Whether the member is discrete (counting reference measure) —
    /// the precondition for exact chase-tree enumeration.
    fn is_discrete(&self) -> bool;

    /// Draws one outcome under `params`.
    ///
    /// # Errors
    /// [`DistError`] on inadmissible parameters.
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError>;

    /// Log-density of `outcome` with respect to the member's reference
    /// measure (log-pmf for discrete members, log-pdf for continuous).
    ///
    /// # Errors
    /// [`DistError`] on inadmissible parameters or outcomes of the wrong
    /// type. Outcomes of the right type but outside the support yield
    /// `-inf`.
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError>;

    /// Density (pmf/pdf) of `outcome`; defaults to `exp(log_density)`.
    ///
    /// # Errors
    /// Same as [`ParamDist::log_density`].
    fn density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        Ok(self.log_density(params, outcome)?.exp())
    }

    /// Cumulative distribution function at `x` (numeric domains only).
    ///
    /// # Errors
    /// [`DistError::Unsupported`] for members without a numeric CDF.
    fn cdf(&self, params: &[Value], x: f64) -> Result<f64, DistError> {
        let _ = (params, x);
        Err(DistError::Unsupported {
            dist: "<unnamed>",
            op: "cdf",
        })
    }

    /// Tabulates the support under `params`, truncating countably-infinite
    /// supports once the remaining tail mass is at most `tol`.
    ///
    /// # Errors
    /// [`DistError::Unsupported`] for continuous members.
    fn enumerate(&self, params: &[Value], tol: f64) -> Result<Support, DistError> {
        let _ = (params, tol);
        Err(DistError::Unsupported {
            dist: "<unnamed>",
            op: "exact support enumeration",
        })
    }

    /// Draws one outcome per RNG lane under a **shared** parameter vector,
    /// appending to `out` — the batched counterpart of
    /// [`sample`](ParamDist::sample) used by the batched Monte-Carlo
    /// executor. Lane `i` must consume exactly the draws that
    /// `self.sample(params, &mut rngs[i])` would, producing the identical
    /// outcome — bit-identity with the scalar path is the contract, so
    /// overrides may hoist parameter validation and derived constants out
    /// of the lane loop but must keep every per-lane floating-point
    /// expression unchanged.
    ///
    /// The default is the scalar loop; members with hot kernels override
    /// it with a validate-once tight loop the compiler can vectorize.
    ///
    /// # Errors
    /// [`DistError`] on inadmissible parameters; `out` then holds the
    /// outcomes of the lanes drawn before the failure.
    fn sample_batch(
        &self,
        params: &[Value],
        rngs: &mut [rand::rngs::StdRng],
        out: &mut Vec<Value>,
    ) -> Result<(), DistError> {
        out.reserve(rngs.len());
        for rng in rngs {
            out.push(self.sample(params, rng)?);
        }
        Ok(())
    }

    /// Log-density of each outcome under a **shared** parameter vector,
    /// appending to `out` — the batched counterpart of
    /// [`log_density`](ParamDist::log_density). Entry `i` must equal
    /// `self.log_density(params, &outcomes[i])` bit-for-bit.
    ///
    /// # Errors
    /// [`DistError`] on inadmissible parameters or mistyped outcomes;
    /// `out` then holds the densities computed before the failure.
    fn log_density_batch(
        &self,
        params: &[Value],
        outcomes: &[Value],
        out: &mut Vec<f64>,
    ) -> Result<(), DistError> {
        out.reserve(outcomes.len());
        for outcome in outcomes {
            out.push(self.log_density(params, outcome)?);
        }
        Ok(())
    }
}

/// A concrete distribution family Ψ: named members, looked up by the
/// language front-end when compiling random terms.
pub struct Registry {
    by_name: HashMap<String, Arc<dyn ParamDist>>,
    names: Vec<String>,
}

impl Registry {
    /// An empty family.
    pub fn new() -> Registry {
        Registry {
            by_name: HashMap::new(),
            names: Vec::new(),
        }
    }

    /// The standard family: every distribution used by the paper's
    /// examples plus the common continuous ones.
    pub fn standard() -> Registry {
        let mut r = Registry::new();
        for d in family::standard_members() {
            r.register(d);
        }
        r
    }

    /// Adds (or replaces) a member under its own name.
    pub fn register(&mut self, dist: Arc<dyn ParamDist>) {
        let name = dist.name().to_string();
        if self.by_name.insert(name.clone(), dist).is_none() {
            self.names.push(name);
        }
    }

    /// Looks a member up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn ParamDist>> {
        self.by_name.get(name)
    }

    /// Member names in registration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Registry({} members)", self.names.len())
    }
}
