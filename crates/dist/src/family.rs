//! The standard family members. Each type implements [`ParamDist`]; the
//! set is assembled by [`standard_members`] into [`crate::Registry::standard`].
//!
//! Conventions:
//! * Real-valued parameters accept `Int` values too (ints embed into ℝ).
//! * `Normal⟨μ, σ²⟩` and `LogNormal⟨μ, σ²⟩` take the **variance** as the
//!   second parameter, matching the paper's moment notation (Example 3.5
//!   passes per-country `(µ, σ²)` moments straight in).
//! * Discrete members return `Int` outcomes except `Categorical`, which
//!   returns one of its listed values verbatim.
//!
//! Members are looked up by name through the registry; each one
//! validates its parameters at the call site, samples, reports densities,
//! and — when discrete — enumerates its support exactly:
//!
//! ```
//! use gdatalog_data::Value;
//! use gdatalog_dist::Registry;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let family = Registry::standard();
//!
//! // A discrete member: exact support enumeration for the chase tree.
//! let geometric = family.get("Geometric").unwrap();
//! let support = geometric.enumerate(&[Value::real(0.5)], 1e-6).unwrap();
//! assert!(support.tabulated_mass() > 1.0 - 1e-6);
//! assert_eq!(support.outcomes[0], (Value::int(0), 0.5));
//!
//! // A continuous member: sampling + log-density, no enumeration.
//! let normal = family.get("Normal").unwrap();
//! let params = [Value::real(0.0), Value::real(1.0)];
//! let mut rng = StdRng::seed_from_u64(7);
//! let draw = normal.sample(&params, &mut rng).unwrap();
//! assert!(draw.as_f64().unwrap().abs() < 6.0, "six sigma");
//! let log_pdf = normal.log_density(&params, &Value::real(0.0)).unwrap();
//! assert!((log_pdf - (-0.5 * (2.0 * std::f64::consts::PI).ln())).abs() < 1e-12);
//! assert!(normal.enumerate(&params, 1e-9).is_err(), "continuous");
//!
//! // Inadmissible parameters are runtime errors, not panics.
//! assert!(family.get("Flip").unwrap().sample(&[Value::real(1.5)], &mut rng).is_err());
//! ```

// Parameter guards are written `!(x > 0.0)` on purpose: the negation also
// rejects NaN, which `x <= 0.0` would silently admit.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use std::sync::Arc;

use gdatalog_data::{ColType, Value};
use rand::Rng;

use crate::special::{ln_factorial, ln_gamma, regularized_gamma_p, std_normal_cdf};
use crate::{DistArity, DistError, ParamDist, Support};

/// All members of the standard family, in registration order.
pub fn standard_members() -> Vec<Arc<dyn ParamDist>> {
    vec![
        Arc::new(Flip { name: "Flip" }),
        Arc::new(Flip { name: "Bernoulli" }),
        Arc::new(Categorical),
        Arc::new(UniformInt),
        Arc::new(Binomial),
        Arc::new(Geometric),
        Arc::new(Poisson),
        Arc::new(Uniform),
        Arc::new(Normal),
        Arc::new(Exponential),
        Arc::new(Gamma),
        Arc::new(Beta),
        Arc::new(LogNormal),
        Arc::new(Laplace),
    ]
}

fn real_param(
    dist: &'static str,
    params: &[Value],
    i: usize,
    what: &str,
) -> Result<f64, DistError> {
    params[i].as_f64().ok_or_else(|| DistError::BadParam {
        dist,
        msg: format!("{what} must be numeric, got {}", params[i]),
    })
}

fn int_param(dist: &'static str, params: &[Value], i: usize, what: &str) -> Result<i64, DistError> {
    params[i].as_i64().ok_or_else(|| DistError::BadParam {
        dist,
        msg: format!("{what} must be an integer, got {}", params[i]),
    })
}

fn check_arity(dist: &'static str, arity: DistArity, params: &[Value]) -> Result<(), DistError> {
    if arity.admits(params.len()) {
        Ok(())
    } else {
        Err(DistError::ParamCount {
            dist,
            expected: arity,
            found: params.len(),
        })
    }
}

fn int_outcome(dist: &'static str, outcome: &Value) -> Result<i64, DistError> {
    outcome.as_i64().ok_or_else(|| DistError::BadOutcome {
        dist,
        outcome: outcome.clone(),
    })
}

fn real_outcome(dist: &'static str, outcome: &Value) -> Result<f64, DistError> {
    outcome.as_f64().ok_or_else(|| DistError::BadOutcome {
        dist,
        outcome: outcome.clone(),
    })
}

/// Draws a standard normal deviate (Box–Muller).
fn std_normal(rng: &mut dyn Rng) -> f64 {
    let u1 = 1.0 - rng.gen_f64(); // (0, 1]
    let u2 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws Gamma(shape, 1) via Marsaglia–Tsang, boosted for shape < 1.
fn std_gamma(shape: f64, rng: &mut dyn Rng) -> f64 {
    if shape < 1.0 {
        let u: f64 = 1.0 - rng.gen_f64();
        return std_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = std_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = 1.0 - rng.gen_f64();
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

// ---------------------------------------------------------------------------
// Flip / Bernoulli
// ---------------------------------------------------------------------------

/// `Flip⟨p⟩` — Bernoulli over {0, 1}. Registered twice (as `Flip` and
/// `Bernoulli`) because Example 1.1's program G′0 turns on two *distinctly
/// named* but identically distributed members.
struct Flip {
    name: &'static str,
}

impl Flip {
    fn p(&self, params: &[Value]) -> Result<f64, DistError> {
        check_arity(self.name, self.arity(), params)?;
        let p = real_param(self.name, params, 0, "success probability")?;
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::BadParam {
                dist: self.name,
                msg: format!("success probability {p} outside [0, 1]"),
            });
        }
        Ok(p)
    }
}

impl ParamDist for Flip {
    fn name(&self) -> &str {
        self.name
    }
    fn arity(&self) -> DistArity {
        DistArity::Exact(1)
    }
    fn output_type(&self) -> ColType {
        ColType::Int
    }
    fn is_discrete(&self) -> bool {
        true
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let p = self.p(params)?;
        Ok(Value::int(i64::from(rng.gen_bool(p))))
    }
    fn sample_batch(
        &self,
        params: &[Value],
        rngs: &mut [rand::rngs::StdRng],
        out: &mut Vec<Value>,
    ) -> Result<(), DistError> {
        let p = self.p(params)?;
        out.reserve(rngs.len());
        for rng in rngs {
            out.push(Value::int(i64::from(rng.gen_bool(p))));
        }
        Ok(())
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let p = self.p(params)?;
        match int_outcome(self.name, outcome)? {
            1 => Ok(p.ln()),
            0 => Ok((1.0 - p).ln()),
            _ => Ok(f64::NEG_INFINITY),
        }
    }
    fn log_density_batch(
        &self,
        params: &[Value],
        outcomes: &[Value],
        out: &mut Vec<f64>,
    ) -> Result<(), DistError> {
        let p = self.p(params)?;
        let (ln_p, ln_q) = (p.ln(), (1.0 - p).ln());
        out.reserve(outcomes.len());
        for outcome in outcomes {
            out.push(match int_outcome(self.name, outcome)? {
                1 => ln_p,
                0 => ln_q,
                _ => f64::NEG_INFINITY,
            });
        }
        Ok(())
    }
    fn enumerate(&self, params: &[Value], _tol: f64) -> Result<Support, DistError> {
        let p = self.p(params)?;
        let mut outcomes = Vec::new();
        if p < 1.0 {
            outcomes.push((Value::int(0), 1.0 - p));
        }
        if p > 0.0 {
            outcomes.push((Value::int(1), p));
        }
        Ok(Support { outcomes })
    }
}

// ---------------------------------------------------------------------------
// Categorical
// ---------------------------------------------------------------------------

/// `Categorical⟨v₁, w₁, …, vₙ, wₙ⟩` — finite distribution over the listed
/// values, weights proportional to the `wᵢ`.
struct Categorical;

impl Categorical {
    fn pairs(&self, params: &[Value]) -> Result<(Vec<(Value, f64)>, f64), DistError> {
        check_arity("Categorical", self.arity(), params)?;
        let mut pairs = Vec::with_capacity(params.len() / 2);
        let mut total = 0.0;
        for chunk in params.chunks(2) {
            let w = chunk[1].as_f64().ok_or_else(|| DistError::BadParam {
                dist: "Categorical",
                msg: format!("weight must be numeric, got {}", chunk[1]),
            })?;
            if !(w >= 0.0) || !w.is_finite() {
                return Err(DistError::BadParam {
                    dist: "Categorical",
                    msg: format!("weight {w} must be finite and non-negative"),
                });
            }
            total += w;
            pairs.push((chunk[0].clone(), w));
        }
        if total <= 0.0 {
            return Err(DistError::BadParam {
                dist: "Categorical",
                msg: "total weight must be positive".to_string(),
            });
        }
        Ok((pairs, total))
    }
}

impl ParamDist for Categorical {
    fn name(&self) -> &str {
        "Categorical"
    }
    fn arity(&self) -> DistArity {
        DistArity::EvenPairs
    }
    fn output_type(&self) -> ColType {
        ColType::Any
    }
    fn is_discrete(&self) -> bool {
        true
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let (pairs, total) = self.pairs(params)?;
        let mut pick = rng.gen_f64() * total;
        for (v, w) in &pairs {
            if pick < *w {
                return Ok(v.clone());
            }
            pick -= w;
        }
        Ok(pairs.last().expect("nonempty").0.clone())
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let (pairs, total) = self.pairs(params)?;
        let mass: f64 = pairs
            .iter()
            .filter(|(v, _)| v == outcome)
            .map(|(_, w)| w)
            .sum();
        Ok((mass / total).ln())
    }
    fn enumerate(&self, params: &[Value], _tol: f64) -> Result<Support, DistError> {
        let (pairs, total) = self.pairs(params)?;
        // Aggregate duplicate values so the support is a genuine pmf.
        let mut outcomes: Vec<(Value, f64)> = Vec::new();
        for (v, w) in pairs {
            if w == 0.0 {
                continue;
            }
            match outcomes.iter_mut().find(|(u, _)| *u == v) {
                Some((_, acc)) => *acc += w / total,
                None => outcomes.push((v, w / total)),
            }
        }
        Ok(Support { outcomes })
    }
}

// ---------------------------------------------------------------------------
// UniformInt
// ---------------------------------------------------------------------------

/// `UniformInt⟨lo, hi⟩` — uniform over the integers `lo..=hi`.
struct UniformInt;

impl UniformInt {
    fn bounds(&self, params: &[Value]) -> Result<(i64, i64), DistError> {
        check_arity("UniformInt", self.arity(), params)?;
        let lo = int_param("UniformInt", params, 0, "lower bound")?;
        let hi = int_param("UniformInt", params, 1, "upper bound")?;
        if lo > hi {
            return Err(DistError::BadParam {
                dist: "UniformInt",
                msg: format!("empty range [{lo}, {hi}]"),
            });
        }
        Ok((lo, hi))
    }
}

impl ParamDist for UniformInt {
    fn name(&self) -> &str {
        "UniformInt"
    }
    fn arity(&self) -> DistArity {
        DistArity::Exact(2)
    }
    fn output_type(&self) -> ColType {
        ColType::Int
    }
    fn is_discrete(&self) -> bool {
        true
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let (lo, hi) = self.bounds(params)?;
        Ok(Value::int(rng.gen_range_i64(lo, hi)))
    }
    fn sample_batch(
        &self,
        params: &[Value],
        rngs: &mut [rand::rngs::StdRng],
        out: &mut Vec<Value>,
    ) -> Result<(), DistError> {
        let (lo, hi) = self.bounds(params)?;
        out.reserve(rngs.len());
        for rng in rngs {
            out.push(Value::int(rng.gen_range_i64(lo, hi)));
        }
        Ok(())
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let (lo, hi) = self.bounds(params)?;
        let k = int_outcome("UniformInt", outcome)?;
        if (lo..=hi).contains(&k) {
            Ok(-((hi - lo + 1) as f64).ln())
        } else {
            Ok(f64::NEG_INFINITY)
        }
    }
    fn log_density_batch(
        &self,
        params: &[Value],
        outcomes: &[Value],
        out: &mut Vec<f64>,
    ) -> Result<(), DistError> {
        let (lo, hi) = self.bounds(params)?;
        let in_range = -((hi - lo + 1) as f64).ln();
        out.reserve(outcomes.len());
        for outcome in outcomes {
            let k = int_outcome("UniformInt", outcome)?;
            out.push(if (lo..=hi).contains(&k) {
                in_range
            } else {
                f64::NEG_INFINITY
            });
        }
        Ok(())
    }
    fn enumerate(&self, params: &[Value], _tol: f64) -> Result<Support, DistError> {
        let (lo, hi) = self.bounds(params)?;
        let n = hi - lo + 1;
        if n > 1_000_000 {
            return Err(DistError::BadParam {
                dist: "UniformInt",
                msg: format!("support of {n} values is too large to enumerate"),
            });
        }
        let p = 1.0 / n as f64;
        Ok(Support {
            outcomes: (lo..=hi).map(|k| (Value::int(k), p)).collect(),
        })
    }
}

// ---------------------------------------------------------------------------
// Binomial
// ---------------------------------------------------------------------------

/// `Binomial⟨n, p⟩` — number of successes in `n` Bernoulli(p) trials.
struct Binomial;

impl Binomial {
    fn np(&self, params: &[Value]) -> Result<(i64, f64), DistError> {
        check_arity("Binomial", self.arity(), params)?;
        let n = int_param("Binomial", params, 0, "trial count")?;
        let p = real_param("Binomial", params, 1, "success probability")?;
        if n < 0 {
            return Err(DistError::BadParam {
                dist: "Binomial",
                msg: format!("trial count {n} must be non-negative"),
            });
        }
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::BadParam {
                dist: "Binomial",
                msg: format!("success probability {p} outside [0, 1]"),
            });
        }
        Ok((n, p))
    }

    fn log_pmf(n: i64, p: f64, k: i64) -> f64 {
        if k < 0 || k > n {
            return f64::NEG_INFINITY;
        }
        let (n_u, k_u) = (n as u64, k as u64);
        let ln_choose = ln_factorial(n_u) - ln_factorial(k_u) - ln_factorial(n_u - k_u);
        let term_p = if k == 0 { 0.0 } else { k as f64 * p.ln() };
        let term_q = if k == n {
            0.0
        } else {
            (n - k) as f64 * (1.0 - p).ln()
        };
        ln_choose + term_p + term_q
    }
}

impl ParamDist for Binomial {
    fn name(&self) -> &str {
        "Binomial"
    }
    fn arity(&self) -> DistArity {
        DistArity::Exact(2)
    }
    fn output_type(&self) -> ColType {
        ColType::Int
    }
    fn is_discrete(&self) -> bool {
        true
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let (n, p) = self.np(params)?;
        let mut k = 0i64;
        for _ in 0..n {
            if rng.gen_bool(p) {
                k += 1;
            }
        }
        Ok(Value::int(k))
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let (n, p) = self.np(params)?;
        Ok(Self::log_pmf(n, p, int_outcome("Binomial", outcome)?))
    }
    fn enumerate(&self, params: &[Value], _tol: f64) -> Result<Support, DistError> {
        let (n, p) = self.np(params)?;
        Ok(Support {
            outcomes: (0..=n)
                .map(|k| (Value::int(k), Self::log_pmf(n, p, k).exp()))
                .filter(|(_, q)| *q > 0.0)
                .collect(),
        })
    }
}

// ---------------------------------------------------------------------------
// Geometric
// ---------------------------------------------------------------------------

/// `Geometric⟨p⟩` — number of failures before the first success:
/// `P(k) = p (1-p)^k`, `k ≥ 0`.
struct Geometric;

impl Geometric {
    fn p(&self, params: &[Value]) -> Result<f64, DistError> {
        check_arity("Geometric", self.arity(), params)?;
        let p = real_param("Geometric", params, 0, "success probability")?;
        if !(p > 0.0 && p <= 1.0) {
            return Err(DistError::BadParam {
                dist: "Geometric",
                msg: format!("success probability {p} outside (0, 1]"),
            });
        }
        Ok(p)
    }
}

impl ParamDist for Geometric {
    fn name(&self) -> &str {
        "Geometric"
    }
    fn arity(&self) -> DistArity {
        DistArity::Exact(1)
    }
    fn output_type(&self) -> ColType {
        ColType::Int
    }
    fn is_discrete(&self) -> bool {
        true
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let p = self.p(params)?;
        if p >= 1.0 {
            return Ok(Value::int(0));
        }
        // Inversion: k = ⌊ln U / ln(1-p)⌋.
        let u = 1.0 - rng.gen_f64();
        Ok(Value::int((u.ln() / (1.0 - p).ln()).floor() as i64))
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let p = self.p(params)?;
        let k = int_outcome("Geometric", outcome)?;
        if k < 0 {
            return Ok(f64::NEG_INFINITY);
        }
        // Guard the k = 0 term: at p = 1 the naive `k · ln(1−p)` is
        // `0 · (−∞)` = NaN, but P(0) = p exactly.
        let tail = if k == 0 {
            0.0
        } else {
            k as f64 * (1.0 - p).ln()
        };
        Ok(p.ln() + tail)
    }
    fn enumerate(&self, params: &[Value], tol: f64) -> Result<Support, DistError> {
        let p = self.p(params)?;
        let mut outcomes = Vec::new();
        let mut k = 0i64;
        let mut pk = p; // P(k)
        let mut tail = 1.0;
        // Tail after tabulating 0..k is (1-p)^{k+1}; stop once ≤ tol.
        while tail > tol && k < 100_000 {
            outcomes.push((Value::int(k), pk));
            tail -= pk;
            pk *= 1.0 - p;
            k += 1;
            if pk == 0.0 {
                break;
            }
        }
        Ok(Support { outcomes })
    }
}

// ---------------------------------------------------------------------------
// Poisson
// ---------------------------------------------------------------------------

/// `Poisson⟨λ⟩`.
struct Poisson;

impl Poisson {
    fn lambda(&self, params: &[Value]) -> Result<f64, DistError> {
        check_arity("Poisson", self.arity(), params)?;
        let l = real_param("Poisson", params, 0, "rate λ")?;
        if !(l > 0.0) || !l.is_finite() {
            return Err(DistError::BadParam {
                dist: "Poisson",
                msg: format!("rate λ = {l} must be positive and finite"),
            });
        }
        Ok(l)
    }

    fn log_pmf(lambda: f64, k: i64) -> f64 {
        if k < 0 {
            return f64::NEG_INFINITY;
        }
        k as f64 * lambda.ln() - lambda - ln_factorial(k as u64)
    }
}

impl ParamDist for Poisson {
    fn name(&self) -> &str {
        "Poisson"
    }
    fn arity(&self) -> DistArity {
        DistArity::Exact(1)
    }
    fn output_type(&self) -> ColType {
        ColType::Int
    }
    fn is_discrete(&self) -> bool {
        true
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let lambda = self.lambda(params)?;
        if lambda < 500.0 {
            // Knuth's product-of-uniforms method; exp(-500) is still a
            // normal double, so the loop terminates correctly.
            let threshold = (-lambda).exp();
            let mut k = -1i64;
            let mut prod = 1.0;
            loop {
                k += 1;
                prod *= 1.0 - rng.gen_f64();
                if prod <= threshold {
                    return Ok(Value::int(k));
                }
            }
        }
        // Very large λ: split recursively; Poisson(a + b) = P(a) + P(b).
        let half = Value::real(lambda / 2.0);
        let a = self.sample(std::slice::from_ref(&half), rng)?;
        let b = self.sample(std::slice::from_ref(&half), rng)?;
        Ok(Value::int(
            a.as_i64().expect("int outcome") + b.as_i64().expect("int outcome"),
        ))
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let lambda = self.lambda(params)?;
        Ok(Self::log_pmf(lambda, int_outcome("Poisson", outcome)?))
    }
    fn cdf(&self, params: &[Value], x: f64) -> Result<f64, DistError> {
        let lambda = self.lambda(params)?;
        let k = x.floor();
        if k < 0.0 {
            return Ok(0.0);
        }
        Ok(1.0 - regularized_gamma_p(k + 1.0, lambda))
    }
    fn enumerate(&self, params: &[Value], tol: f64) -> Result<Support, DistError> {
        let lambda = self.lambda(params)?;
        let mut outcomes = Vec::new();
        let mut k = 0i64;
        let mut tabulated = 0.0;
        while tabulated < 1.0 - tol && k < 1_000_000 {
            let q = Self::log_pmf(lambda, k).exp();
            if q > 0.0 {
                outcomes.push((Value::int(k), q));
            }
            tabulated += q;
            k += 1;
            // Far past the mode with vanishing mass: stop.
            if k as f64 > lambda + 10.0 && q < 1e-300 {
                break;
            }
        }
        Ok(Support { outcomes })
    }
}

// ---------------------------------------------------------------------------
// Continuous members
// ---------------------------------------------------------------------------

/// `Uniform⟨a, b⟩` — uniform on `[a, b)`.
struct Uniform;

impl Uniform {
    fn bounds(&self, params: &[Value]) -> Result<(f64, f64), DistError> {
        check_arity("Uniform", self.arity(), params)?;
        let a = real_param("Uniform", params, 0, "lower bound")?;
        let b = real_param("Uniform", params, 1, "upper bound")?;
        if !(a < b) {
            return Err(DistError::BadParam {
                dist: "Uniform",
                msg: format!("empty interval [{a}, {b})"),
            });
        }
        Ok((a, b))
    }
}

impl ParamDist for Uniform {
    fn name(&self) -> &str {
        "Uniform"
    }
    fn arity(&self) -> DistArity {
        DistArity::Exact(2)
    }
    fn output_type(&self) -> ColType {
        ColType::Real
    }
    fn is_discrete(&self) -> bool {
        false
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let (a, b) = self.bounds(params)?;
        Ok(Value::real(a + rng.gen_f64() * (b - a)))
    }
    fn sample_batch(
        &self,
        params: &[Value],
        rngs: &mut [rand::rngs::StdRng],
        out: &mut Vec<Value>,
    ) -> Result<(), DistError> {
        let (a, b) = self.bounds(params)?;
        let w = b - a;
        out.reserve(rngs.len());
        for rng in rngs {
            out.push(Value::real(a + rng.gen_f64() * w));
        }
        Ok(())
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let (a, b) = self.bounds(params)?;
        let x = real_outcome("Uniform", outcome)?;
        if (a..b).contains(&x) {
            Ok(-(b - a).ln())
        } else {
            Ok(f64::NEG_INFINITY)
        }
    }
    fn log_density_batch(
        &self,
        params: &[Value],
        outcomes: &[Value],
        out: &mut Vec<f64>,
    ) -> Result<(), DistError> {
        let (a, b) = self.bounds(params)?;
        let in_range = -(b - a).ln();
        out.reserve(outcomes.len());
        for outcome in outcomes {
            let x = real_outcome("Uniform", outcome)?;
            out.push(if (a..b).contains(&x) {
                in_range
            } else {
                f64::NEG_INFINITY
            });
        }
        Ok(())
    }
    fn cdf(&self, params: &[Value], x: f64) -> Result<f64, DistError> {
        let (a, b) = self.bounds(params)?;
        Ok(((x - a) / (b - a)).clamp(0.0, 1.0))
    }
}

/// `Normal⟨μ, σ²⟩` — second parameter is the **variance**.
struct Normal;

impl Normal {
    fn moments(&self, params: &[Value]) -> Result<(f64, f64), DistError> {
        check_arity("Normal", self.arity(), params)?;
        let mu = real_param("Normal", params, 0, "mean")?;
        let var = real_param("Normal", params, 1, "variance")?;
        if !(var > 0.0) || !var.is_finite() {
            return Err(DistError::BadParam {
                dist: "Normal",
                msg: format!("variance {var} must be positive and finite"),
            });
        }
        Ok((mu, var))
    }
}

impl ParamDist for Normal {
    fn name(&self) -> &str {
        "Normal"
    }
    fn arity(&self) -> DistArity {
        DistArity::Exact(2)
    }
    fn output_type(&self) -> ColType {
        ColType::Real
    }
    fn is_discrete(&self) -> bool {
        false
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let (mu, var) = self.moments(params)?;
        Ok(Value::real(mu + var.sqrt() * std_normal(rng)))
    }
    fn sample_batch(
        &self,
        params: &[Value],
        rngs: &mut [rand::rngs::StdRng],
        out: &mut Vec<Value>,
    ) -> Result<(), DistError> {
        let (mu, var) = self.moments(params)?;
        let sd = var.sqrt();
        out.reserve(rngs.len());
        for rng in rngs {
            out.push(Value::real(mu + sd * std_normal(rng)));
        }
        Ok(())
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let (mu, var) = self.moments(params)?;
        let x = real_outcome("Normal", outcome)?;
        let z = (x - mu) * (x - mu) / var;
        Ok(-0.5 * (z + var.ln() + (2.0 * std::f64::consts::PI).ln()))
    }
    fn log_density_batch(
        &self,
        params: &[Value],
        outcomes: &[Value],
        out: &mut Vec<f64>,
    ) -> Result<(), DistError> {
        let (mu, var) = self.moments(params)?;
        // Hoisted terms; the per-lane expression keeps the scalar path's
        // left-to-right addition order, so results are bit-identical.
        let ln_var = var.ln();
        let ln_two_pi = (2.0 * std::f64::consts::PI).ln();
        out.reserve(outcomes.len());
        for outcome in outcomes {
            let x = real_outcome("Normal", outcome)?;
            let z = (x - mu) * (x - mu) / var;
            out.push(-0.5 * (z + ln_var + ln_two_pi));
        }
        Ok(())
    }
    fn cdf(&self, params: &[Value], x: f64) -> Result<f64, DistError> {
        let (mu, var) = self.moments(params)?;
        Ok(std_normal_cdf((x - mu) / var.sqrt()))
    }
}

/// `Exponential⟨λ⟩` — rate parameterization.
struct Exponential;

impl Exponential {
    fn rate(&self, params: &[Value]) -> Result<f64, DistError> {
        check_arity("Exponential", self.arity(), params)?;
        let l = real_param("Exponential", params, 0, "rate λ")?;
        if !(l > 0.0) || !l.is_finite() {
            return Err(DistError::BadParam {
                dist: "Exponential",
                msg: format!("rate λ = {l} must be positive and finite"),
            });
        }
        Ok(l)
    }
}

impl ParamDist for Exponential {
    fn name(&self) -> &str {
        "Exponential"
    }
    fn arity(&self) -> DistArity {
        DistArity::Exact(1)
    }
    fn output_type(&self) -> ColType {
        ColType::Real
    }
    fn is_discrete(&self) -> bool {
        false
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let l = self.rate(params)?;
        Ok(Value::real(-(1.0 - rng.gen_f64()).ln() / l))
    }
    fn sample_batch(
        &self,
        params: &[Value],
        rngs: &mut [rand::rngs::StdRng],
        out: &mut Vec<Value>,
    ) -> Result<(), DistError> {
        let l = self.rate(params)?;
        out.reserve(rngs.len());
        for rng in rngs {
            out.push(Value::real(-(1.0 - rng.gen_f64()).ln() / l));
        }
        Ok(())
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let l = self.rate(params)?;
        let x = real_outcome("Exponential", outcome)?;
        if x < 0.0 {
            Ok(f64::NEG_INFINITY)
        } else {
            Ok(l.ln() - l * x)
        }
    }
    fn log_density_batch(
        &self,
        params: &[Value],
        outcomes: &[Value],
        out: &mut Vec<f64>,
    ) -> Result<(), DistError> {
        let l = self.rate(params)?;
        let ln_l = l.ln();
        out.reserve(outcomes.len());
        for outcome in outcomes {
            let x = real_outcome("Exponential", outcome)?;
            out.push(if x < 0.0 {
                f64::NEG_INFINITY
            } else {
                ln_l - l * x
            });
        }
        Ok(())
    }
    fn cdf(&self, params: &[Value], x: f64) -> Result<f64, DistError> {
        let l = self.rate(params)?;
        Ok(if x <= 0.0 { 0.0 } else { 1.0 - (-l * x).exp() })
    }
}

/// `Gamma⟨k, θ⟩` — shape/scale parameterization.
struct Gamma;

impl Gamma {
    fn shape_scale(&self, params: &[Value]) -> Result<(f64, f64), DistError> {
        check_arity("Gamma", self.arity(), params)?;
        let k = real_param("Gamma", params, 0, "shape")?;
        let theta = real_param("Gamma", params, 1, "scale")?;
        if !(k > 0.0 && theta > 0.0) {
            return Err(DistError::BadParam {
                dist: "Gamma",
                msg: format!("shape {k} and scale {theta} must be positive"),
            });
        }
        Ok((k, theta))
    }
}

impl ParamDist for Gamma {
    fn name(&self) -> &str {
        "Gamma"
    }
    fn arity(&self) -> DistArity {
        DistArity::Exact(2)
    }
    fn output_type(&self) -> ColType {
        ColType::Real
    }
    fn is_discrete(&self) -> bool {
        false
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let (k, theta) = self.shape_scale(params)?;
        Ok(Value::real(std_gamma(k, rng) * theta))
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let (k, theta) = self.shape_scale(params)?;
        let x = real_outcome("Gamma", outcome)?;
        if x <= 0.0 {
            return Ok(f64::NEG_INFINITY);
        }
        Ok((k - 1.0) * x.ln() - x / theta - ln_gamma(k) - k * theta.ln())
    }
    fn cdf(&self, params: &[Value], x: f64) -> Result<f64, DistError> {
        let (k, theta) = self.shape_scale(params)?;
        Ok(if x <= 0.0 {
            0.0
        } else {
            regularized_gamma_p(k, x / theta)
        })
    }
}

/// `Beta⟨α, β⟩`.
struct Beta;

impl Beta {
    fn ab(&self, params: &[Value]) -> Result<(f64, f64), DistError> {
        check_arity("Beta", self.arity(), params)?;
        let a = real_param("Beta", params, 0, "α")?;
        let b = real_param("Beta", params, 1, "β")?;
        if !(a > 0.0 && b > 0.0) {
            return Err(DistError::BadParam {
                dist: "Beta",
                msg: format!("α = {a} and β = {b} must be positive"),
            });
        }
        Ok((a, b))
    }
}

impl ParamDist for Beta {
    fn name(&self) -> &str {
        "Beta"
    }
    fn arity(&self) -> DistArity {
        DistArity::Exact(2)
    }
    fn output_type(&self) -> ColType {
        ColType::Real
    }
    fn is_discrete(&self) -> bool {
        false
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let (a, b) = self.ab(params)?;
        let x = std_gamma(a, rng);
        let y = std_gamma(b, rng);
        Ok(Value::real(x / (x + y)))
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let (a, b) = self.ab(params)?;
        let x = real_outcome("Beta", outcome)?;
        if !(0.0..=1.0).contains(&x) {
            return Ok(f64::NEG_INFINITY);
        }
        let ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
        Ok((a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - ln_beta)
    }
    fn cdf(&self, params: &[Value], x: f64) -> Result<f64, DistError> {
        let (a, b) = self.ab(params)?;
        Ok(crate::special::regularized_beta(a, b, x))
    }
}

/// `LogNormal⟨μ, σ²⟩` — `exp` of a `Normal⟨μ, σ²⟩` draw (variance of the
/// underlying normal, mirroring [`Normal`]).
struct LogNormal;

impl ParamDist for LogNormal {
    fn name(&self) -> &str {
        "LogNormal"
    }
    fn arity(&self) -> DistArity {
        DistArity::Exact(2)
    }
    fn output_type(&self) -> ColType {
        ColType::Real
    }
    fn is_discrete(&self) -> bool {
        false
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let (mu, var) = Normal.moments(params)?;
        Ok(Value::real((mu + var.sqrt() * std_normal(rng)).exp()))
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let (mu, var) = Normal.moments(params)?;
        let x = real_outcome("LogNormal", outcome)?;
        if x <= 0.0 {
            return Ok(f64::NEG_INFINITY);
        }
        let z = (x.ln() - mu) * (x.ln() - mu) / var;
        Ok(-0.5 * (z + var.ln() + (2.0 * std::f64::consts::PI).ln()) - x.ln())
    }
    fn cdf(&self, params: &[Value], x: f64) -> Result<f64, DistError> {
        let (mu, var) = Normal.moments(params)?;
        Ok(if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - mu) / var.sqrt())
        })
    }
}

/// `Laplace⟨μ, b⟩` — location/scale.
struct Laplace;

impl Laplace {
    fn loc_scale(&self, params: &[Value]) -> Result<(f64, f64), DistError> {
        check_arity("Laplace", self.arity(), params)?;
        let mu = real_param("Laplace", params, 0, "location")?;
        let b = real_param("Laplace", params, 1, "scale")?;
        if !(b > 0.0) || !b.is_finite() {
            return Err(DistError::BadParam {
                dist: "Laplace",
                msg: format!("scale {b} must be positive and finite"),
            });
        }
        Ok((mu, b))
    }
}

impl ParamDist for Laplace {
    fn name(&self) -> &str {
        "Laplace"
    }
    fn arity(&self) -> DistArity {
        DistArity::Exact(2)
    }
    fn output_type(&self) -> ColType {
        ColType::Real
    }
    fn is_discrete(&self) -> bool {
        false
    }
    fn sample(&self, params: &[Value], rng: &mut dyn Rng) -> Result<Value, DistError> {
        let (mu, b) = self.loc_scale(params)?;
        // Difference of two Exp(1) draws is Laplace(0, 1); unlike the
        // inverse-CDF form this stays finite for every rng output.
        let e1 = -(1.0 - rng.gen_f64()).ln();
        let e2 = -(1.0 - rng.gen_f64()).ln();
        Ok(Value::real(mu + b * (e1 - e2)))
    }
    fn log_density(&self, params: &[Value], outcome: &Value) -> Result<f64, DistError> {
        let (mu, b) = self.loc_scale(params)?;
        let x = real_outcome("Laplace", outcome)?;
        Ok(-(x - mu).abs() / b - (2.0 * b).ln())
    }
    fn cdf(&self, params: &[Value], x: f64) -> Result<f64, DistError> {
        let (mu, b) = self.loc_scale(params)?;
        Ok(if x < mu {
            0.5 * ((x - mu) / b).exp()
        } else {
            1.0 - 0.5 * (-(x - mu) / b).exp()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_f64s(name: &str, params: &[Value], n: usize) -> Vec<f64> {
        let reg = Registry::standard();
        let d = reg.get(name).expect("registered");
        let mut rng = StdRng::seed_from_u64(12);
        (0..n)
            .map(|_| {
                d.sample(params, &mut rng)
                    .expect("valid params")
                    .as_f64()
                    .expect("numeric outcome")
            })
            .collect()
    }

    fn mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().sum::<f64>() / n;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
        (m, v)
    }

    #[test]
    fn standard_registry_contains_the_family() {
        let reg = Registry::standard();
        for name in [
            "Flip",
            "Bernoulli",
            "Categorical",
            "UniformInt",
            "Binomial",
            "Geometric",
            "Poisson",
            "Uniform",
            "Normal",
            "Exponential",
            "Gamma",
            "Beta",
            "LogNormal",
            "Laplace",
        ] {
            assert!(reg.get(name).is_some(), "missing {name}");
        }
        assert!(reg.get("Zorp").is_none());
    }

    #[test]
    fn flip_frequency_and_density() {
        let xs = sample_f64s("Flip", &[Value::real(0.3)], 20_000);
        let (m, _) = mean_var(&xs);
        assert!((m - 0.3).abs() < 0.02, "mean {m}");
        let reg = Registry::standard();
        let flip = reg.get("Flip").expect("registered");
        let ld = flip
            .log_density(&[Value::real(0.5)], &Value::int(1))
            .expect("ok");
        assert!((ld - 0.5f64.ln()).abs() < 1e-12);
        assert!(flip
            .sample(&[Value::real(1.5)], &mut StdRng::seed_from_u64(0))
            .is_err());
        // Degenerate edges are total.
        assert_eq!(
            flip.sample(&[Value::real(1.0)], &mut StdRng::seed_from_u64(0))
                .expect("ok"),
            Value::int(1)
        );
    }

    #[test]
    fn flip_enumeration_is_exact() {
        let reg = Registry::standard();
        let flip = reg.get("Flip").expect("registered");
        let s = flip.enumerate(&[Value::real(0.25)], 1e-9).expect("ok");
        assert_eq!(s.outcomes.len(), 2);
        assert!((s.tabulated_mass() - 1.0).abs() < 1e-12);
        let one = flip.enumerate(&[Value::real(1.0)], 1e-9).expect("ok");
        assert_eq!(one.outcomes, vec![(Value::int(1), 1.0)]);
    }

    #[test]
    fn normal_takes_variance() {
        let xs = sample_f64s("Normal", &[Value::real(10.0), Value::real(49.0)], 20_000);
        let (m, v) = mean_var(&xs);
        assert!((m - 10.0).abs() < 0.2, "mean {m}");
        assert!((v - 49.0).abs() < 2.0, "var {v}");
        let reg = Registry::standard();
        let n = reg.get("Normal").expect("registered");
        // CDF at the mean is 1/2; density integrates the right scale.
        assert!(
            (n.cdf(&[Value::real(10.0), Value::real(49.0)], 10.0)
                .expect("ok")
                - 0.5)
                .abs()
                < 1e-9
        );
        assert!(n
            .log_density(&[Value::real(0.0), Value::real(-1.0)], &Value::real(0.0))
            .is_err());
    }

    #[test]
    fn geometric_enumeration_truncates_at_tol() {
        let reg = Registry::standard();
        let g = reg.get("Geometric").expect("registered");
        let s = g.enumerate(&[Value::real(0.5)], 1e-4).expect("ok");
        let mass = s.tabulated_mass();
        assert!(mass < 1.0, "must truncate strictly");
        assert!(1.0 - mass <= 1e-4 + 1e-12, "tail {}", 1.0 - mass);
        // pmf values are p(1-p)^k.
        assert!((s.outcomes[0].1 - 0.5).abs() < 1e-12);
        assert!((s.outcomes[2].1 - 0.125).abs() < 1e-12);
    }

    #[test]
    fn poisson_moments_and_enumeration() {
        for lambda in [3.0, 80.0] {
            let xs = sample_f64s("Poisson", &[Value::real(lambda)], 20_000);
            let (m, v) = mean_var(&xs);
            assert!(
                (m - lambda).abs() < 0.05 * lambda + 0.1,
                "λ={lambda} mean {m}"
            );
            assert!(
                (v - lambda).abs() < 0.1 * lambda + 0.2,
                "λ={lambda} var {v}"
            );
        }
        let reg = Registry::standard();
        let p = reg.get("Poisson").expect("registered");
        let s = p.enumerate(&[Value::real(3.0)], 1e-9).expect("ok");
        assert!(1.0 - s.tabulated_mass() <= 1e-9 + 1e-12);
        // P(0) = e^{-3}.
        assert!((s.outcomes[0].1 - (-3.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn continuous_members_match_their_moments() {
        let (m, v) = mean_var(&sample_f64s(
            "Uniform",
            &[Value::real(2.0), Value::real(6.0)],
            20_000,
        ));
        assert!(
            (m - 4.0).abs() < 0.05 && (v - 16.0 / 12.0).abs() < 0.1,
            "U: {m} {v}"
        );
        let (m, v) = mean_var(&sample_f64s("Exponential", &[Value::real(1.5)], 20_000));
        assert!(
            (m - 1.0 / 1.5).abs() < 0.02 && (v - 1.0 / 2.25).abs() < 0.05,
            "E: {m} {v}"
        );
        let (m, v) = mean_var(&sample_f64s(
            "Gamma",
            &[Value::real(3.0), Value::real(2.0)],
            20_000,
        ));
        assert!(
            (m - 6.0).abs() < 0.15 && (v - 12.0).abs() < 1.0,
            "G: {m} {v}"
        );
        let (m, _) = mean_var(&sample_f64s(
            "Gamma",
            &[Value::real(0.4), Value::real(1.0)],
            20_000,
        ));
        assert!((m - 0.4).abs() < 0.03, "G(k<1): {m}");
        let (m, _) = mean_var(&sample_f64s(
            "Beta",
            &[Value::real(2.0), Value::real(5.0)],
            20_000,
        ));
        assert!((m - 2.0 / 7.0).abs() < 0.01, "B: {m}");
        let (m, v) = mean_var(&sample_f64s(
            "Laplace",
            &[Value::real(1.0), Value::real(2.0)],
            20_000,
        ));
        assert!((m - 1.0).abs() < 0.1 && (v - 8.0).abs() < 0.6, "L: {m} {v}");
    }

    #[test]
    fn categorical_samples_and_enumerates_by_weight() {
        let params = [
            Value::sym("a"),
            Value::real(1.0),
            Value::sym("b"),
            Value::real(3.0),
        ];
        let reg = Registry::standard();
        let c = reg.get("Categorical").expect("registered");
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000)
            .filter(|_| c.sample(&params, &mut rng).expect("ok") == Value::sym("b"))
            .count();
        assert!((hits as f64 / 10_000.0 - 0.75).abs() < 0.02);
        let s = c.enumerate(&params, 1e-9).expect("ok");
        assert_eq!(s.outcomes.len(), 2);
        assert!((s.tabulated_mass() - 1.0).abs() < 1e-12);
        let ld = c.log_density(&params, &Value::sym("a")).expect("ok");
        assert!((ld - 0.25f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn uniform_int_and_binomial_supports() {
        let reg = Registry::standard();
        let u = reg.get("UniformInt").expect("registered");
        let s = u
            .enumerate(&[Value::int(0), Value::int(9)], 1e-9)
            .expect("ok");
        assert_eq!(s.outcomes.len(), 10);
        assert!((s.tabulated_mass() - 1.0).abs() < 1e-12);
        let b = reg.get("Binomial").expect("registered");
        let s = b
            .enumerate(&[Value::int(40), Value::real(0.3)], 1e-9)
            .expect("ok");
        assert!((s.tabulated_mass() - 1.0).abs() < 1e-9);
        let xs = sample_f64s("Binomial", &[Value::int(40), Value::real(0.3)], 10_000);
        let (m, _) = mean_var(&xs);
        assert!((m - 12.0).abs() < 0.2, "mean {m}");
    }

    #[test]
    fn continuous_members_refuse_enumeration() {
        let reg = Registry::standard();
        for name in [
            "Uniform",
            "Normal",
            "Exponential",
            "Gamma",
            "Beta",
            "LogNormal",
            "Laplace",
        ] {
            let d = reg.get(name).expect("registered");
            assert!(!d.is_discrete());
            assert!(
                d.enumerate(&[Value::real(1.0), Value::real(1.0)], 1e-9)
                    .is_err(),
                "{name} must refuse enumeration"
            );
        }
    }

    #[test]
    fn batched_kernels_are_bit_identical_to_scalar() {
        let reg = Registry::standard();
        let cases: Vec<(&str, Vec<Value>)> = vec![
            ("Flip", vec![Value::real(0.37)]),
            ("Bernoulli", vec![Value::real(0.8)]),
            ("UniformInt", vec![Value::int(-3), Value::int(11)]),
            ("Uniform", vec![Value::real(2.0), Value::real(6.5)]),
            ("Normal", vec![Value::real(1.5), Value::real(4.0)]),
            ("Exponential", vec![Value::real(0.7)]),
            // Members on the default scalar-loop fallback.
            ("Geometric", vec![Value::real(0.25)]),
            ("Gamma", vec![Value::real(2.0), Value::real(1.5)]),
        ];
        for (name, params) in cases {
            let d = reg.get(name).expect("registered");
            // Independent per-lane streams, exactly as the MC engine seeds.
            let mut scalar_rngs: Vec<StdRng> =
                (0..17).map(|i| StdRng::seed_from_u64(1000 + i)).collect();
            let mut batch_rngs = scalar_rngs.clone();
            let scalar: Vec<Value> = scalar_rngs
                .iter_mut()
                .map(|rng| d.sample(&params, rng).expect("valid params"))
                .collect();
            let mut batched = Vec::new();
            d.sample_batch(&params, &mut batch_rngs, &mut batched)
                .expect("valid params");
            assert_eq!(scalar, batched, "{name} sample_batch diverged");
            // The lanes' rng states must advance identically too.
            for (a, b) in scalar_rngs.iter_mut().zip(batch_rngs.iter_mut()) {
                assert_eq!(a.next_u64(), b.next_u64(), "{name} rng state diverged");
            }
            let scalar_ld: Vec<f64> = batched
                .iter()
                .map(|o| d.log_density(&params, o).expect("ok"))
                .collect();
            let mut batched_ld = Vec::new();
            d.log_density_batch(&params, &batched, &mut batched_ld)
                .expect("ok");
            let same = scalar_ld
                .iter()
                .zip(&batched_ld)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{name} log_density_batch diverged");
        }
    }

    #[test]
    fn batched_kernels_report_parameter_errors() {
        let reg = Registry::standard();
        let flip = reg.get("Flip").expect("registered");
        let mut rngs = vec![StdRng::seed_from_u64(0)];
        let mut out = Vec::new();
        assert!(flip
            .sample_batch(&[Value::real(1.5)], &mut rngs, &mut out)
            .is_err());
        let mut ld = Vec::new();
        assert!(flip
            .log_density_batch(&[Value::real(1.5)], &[Value::int(1)], &mut ld)
            .is_err());
        // A mistyped outcome mid-batch also surfaces.
        assert!(flip
            .log_density_batch(
                &[Value::real(0.5)],
                &[Value::int(1), Value::sym("x")],
                &mut ld
            )
            .is_err());
    }

    #[test]
    fn normal_log_density_matches_closed_form() {
        let reg = Registry::standard();
        let n = reg.get("Normal").expect("registered");
        let ld = n
            .log_density(&[Value::real(0.0), Value::real(1.0)], &Value::real(0.0))
            .expect("ok");
        assert!((ld + 0.5 * (2.0 * std::f64::consts::PI).ln()).abs() < 1e-12);
        let d = n
            .density(&[Value::real(0.0), Value::real(1.0)], &Value::real(0.7))
            .expect("ok");
        assert!((d - crate::special::std_normal_pdf(0.7)).abs() < 1e-12);
    }
}
