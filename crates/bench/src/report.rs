//! The one bench-report emitter: every `BENCH_PR*.json` is written
//! through [`Report`], so all suites share one schema —
//!
//! ```json
//! {
//!   "pr": 9,
//!   "bench": "mc_batching",
//!   "metrics": {"scalar_runs_per_s": 1.2e6, "...": 0},
//!   "gates": {"speedup_ge_2x": true}
//! }
//! ```
//!
//! `metrics` are flat name → number pairs (slash-namespaced by
//! convention, e.g. `"serving/batch_1worker/req_per_s"`); `gates` are the
//! suite's acceptance criteria. [`Report::write`] renders the JSON, then
//! **panics if any gate failed** — a bench smoke in CI fails the build by
//! construction, with the failing gate named in the message and the full
//! report on disk for the artifact upload.
//!
//! [`check_trend`] compares a gated ratio against the previous report on
//! disk (when one exists), so local re-runs and cached CI workspaces
//! catch regressions that still clear the absolute floor.

use std::fmt::Write as _;

/// One bench suite's machine-readable result: flat metrics plus named
/// pass/fail gates, serialized as `{pr, bench, metrics{...}, gates{...}}`.
#[derive(Debug, Clone)]
pub struct Report {
    pr: u32,
    bench: String,
    metrics: Vec<(String, f64)>,
    gates: Vec<(String, bool)>,
}

impl Report {
    /// A new empty report for PR `pr`'s suite named `bench`.
    pub fn new(pr: u32, bench: &str) -> Report {
        Report {
            pr,
            bench: bench.to_string(),
            metrics: Vec::new(),
            gates: Vec::new(),
        }
    }

    /// Records one metric (last write wins on duplicate names).
    pub fn metric(&mut self, name: &str, value: f64) -> &mut Report {
        if let Some(slot) = self.metrics.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.metrics.push((name.to_string(), value));
        }
        self
    }

    /// Records one acceptance gate.
    pub fn gate(&mut self, name: &str, pass: bool) -> &mut Report {
        self.gates.push((name.to_string(), pass));
        self
    }

    /// Records the ratio as a metric **and** gates it against a floor —
    /// the common "≥ Nx speedup" acceptance shape.
    pub fn gate_ratio(&mut self, name: &str, ratio: f64, floor: f64) -> &mut Report {
        self.metric(name, ratio);
        self.gate(&format!("{name}_ge_{floor}"), ratio >= floor)
    }

    /// The first failed gate, if any.
    pub fn failed_gate(&self) -> Option<&str> {
        self.gates
            .iter()
            .find(|(_, pass)| !pass)
            .map(|(name, _)| name.as_str())
    }

    /// Renders the `{pr, bench, metrics{...}, gates{...}}` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"pr\": {},\n  \"bench\": \"{}\",\n  \"metrics\": {{\n",
            self.pr, self.bench
        );
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            // Integral values render without a fraction so counts stay
            // greppable; everything else keeps full precision.
            if value.fract() == 0.0 && value.abs() < 1e15 {
                let _ = writeln!(out, "    \"{name}\": {value:.0}{comma}");
            } else {
                let _ = writeln!(out, "    \"{name}\": {value}{comma}");
            }
        }
        out.push_str("  },\n  \"gates\": {\n");
        for (i, (name, pass)) in self.gates.iter().enumerate() {
            let comma = if i + 1 < self.gates.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{name}\": {pass}{comma}");
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes the report to `path`, then asserts every gate passed — the
    /// report survives on disk for the CI artifact even when the process
    /// exits nonzero.
    ///
    /// # Panics
    /// When a gate failed (naming it), or when `path` is not writable.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\n  wrote {path}");
        if let Some(gate) = self.failed_gate() {
            panic!("acceptance gate `{gate}` failed — see {path}");
        }
    }
}

/// Reads `metric` out of a previous report at `path` (the flat
/// `"name": value` line of the unified schema). `None` when the file is
/// absent or the metric is not present — first runs have no trend.
pub fn previous_metric(path: &str, metric: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"{metric}\":");
    text.lines().find_map(|line| {
        let rest = line.trim().strip_prefix(&needle)?;
        rest.trim().trim_end_matches(',').parse::<f64>().ok()
    })
}

/// The trend gate: when a previous report exists at `path`, the new value
/// of `metric` must not regress below `tolerance` × the previous value
/// (e.g. `0.8` tolerates 20% machine noise). Records the verdict on
/// `report` as gate `"<metric>_trend"`; a missing previous report passes
/// trivially.
pub fn check_trend(report: &mut Report, path: &str, metric: &str, new_value: f64, tolerance: f64) {
    match previous_metric(path, metric) {
        Some(prev) if prev > 0.0 => {
            report.gate(&format!("{metric}_trend"), new_value >= prev * tolerance);
        }
        _ => {
            report.gate(&format!("{metric}_trend"), true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape_and_gate_failure() {
        let mut r = Report::new(9, "mc_batching");
        r.metric("runs_per_s", 1234.0);
        r.gate_ratio("speedup", 2.5, 2.0);
        let json = r.to_json();
        assert!(json.contains("\"pr\": 9"));
        assert!(json.contains("\"bench\": \"mc_batching\""));
        assert!(json.contains("\"runs_per_s\": 1234"));
        assert!(json.contains("\"speedup\": 2.5"));
        assert!(json.contains("\"speedup_ge_2\": true"));
        assert!(r.failed_gate().is_none());
        r.gate("bit_identity", false);
        assert_eq!(r.failed_gate(), Some("bit_identity"));
    }

    #[test]
    fn trend_reads_the_unified_schema() {
        let dir = std::env::temp_dir().join("gdl_report_trend_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_TEST.json");
        let path = path.to_str().unwrap();
        let mut prev = Report::new(9, "trend");
        prev.metric("speedup", 4.0);
        std::fs::write(path, prev.to_json()).unwrap();
        assert_eq!(previous_metric(path, "speedup"), Some(4.0));
        let mut next = Report::new(9, "trend");
        check_trend(&mut next, path, "speedup", 3.6, 0.8);
        assert!(next.failed_gate().is_none());
        let mut bad = Report::new(9, "trend");
        check_trend(&mut bad, path, "speedup", 1.0, 0.8);
        assert_eq!(bad.failed_gate(), Some("speedup_trend"));
        assert_eq!(previous_metric("/nonexistent/BENCH.json", "speedup"), None);
    }
}
