//! A faithful copy of the original (seed) semi-naive evaluator, kept as
//! the measured perf baseline: lazily rebuilt `(rel, cols) → key → tuples`
//! hash indexes with owned `Vec<Value>` keys, per-round re-planning, and
//! per-frame candidate buffers. Benchmarks compare the planned/incremental
//! engine in `gdatalog-datalog` against this to quantify the win; nothing
//! else should use it.

use std::collections::HashMap;

use gdatalog_data::{Instance, RelId, Tuple, Value};
use gdatalog_datalog::{Atom, DatalogProgram, Term};

/// The original lazily built, rebuild-after-mutation index cache.
type LegacyBuckets = HashMap<Vec<Value>, Vec<Tuple>>;

struct LegacyIndex<'a> {
    instance: &'a Instance,
    cache: HashMap<(RelId, Vec<usize>), LegacyBuckets>,
}

static EMPTY: Vec<Tuple> = Vec::new();

impl<'a> LegacyIndex<'a> {
    fn new(instance: &'a Instance) -> Self {
        LegacyIndex {
            instance,
            cache: HashMap::new(),
        }
    }

    fn probe(&mut self, rel: RelId, key_cols: &[usize], key: &[Value]) -> &[Tuple] {
        let entry = self
            .cache
            .entry((rel, key_cols.to_vec()))
            .or_insert_with(|| {
                let mut map = LegacyBuckets::new();
                for t in self.instance.relation(rel) {
                    let k: Vec<Value> = key_cols.iter().map(|&c| t[c].clone()).collect();
                    map.entry(k).or_default().push(t.clone());
                }
                map
            });
        entry.get(key).map_or(EMPTY.as_slice(), Vec::as_slice)
    }
}

struct AtomPlan<'r> {
    atom: &'r Atom,
    key_cols: Vec<usize>,
    key_terms: Vec<&'r Term>,
    binds: Vec<(usize, usize)>,
    checks: Vec<(usize, usize)>,
}

fn plan_body(body: &[Atom], n_vars: usize) -> Vec<AtomPlan<'_>> {
    let mut bound = vec![false; n_vars];
    body.iter()
        .map(|atom| {
            let mut key_cols = Vec::new();
            let mut key_terms = Vec::new();
            let mut binds = Vec::new();
            let mut checks = Vec::new();
            let mut bound_here: Vec<usize> = Vec::new();
            for (c, t) in atom.args.iter().enumerate() {
                match t {
                    Term::Const(_) => {
                        key_cols.push(c);
                        key_terms.push(t);
                    }
                    Term::Var(v) => {
                        if bound[*v] {
                            key_cols.push(c);
                            key_terms.push(t);
                        } else if bound_here.contains(v) {
                            checks.push((c, *v));
                        } else {
                            binds.push((c, *v));
                            bound_here.push(*v);
                        }
                    }
                }
            }
            for v in bound_here {
                bound[v] = true;
            }
            AtomPlan {
                atom,
                key_cols,
                key_terms,
                binds,
                checks,
            }
        })
        .collect()
}

fn candidates(
    plan: &AtomPlan<'_>,
    binding: &[Option<Value>],
    index: &mut LegacyIndex<'_>,
) -> Vec<Tuple> {
    let key: Vec<Value> = plan
        .key_terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => c.clone(),
            Term::Var(v) => binding[*v].clone().expect("planned var must be bound"),
        })
        .collect();
    index.probe(plan.atom.rel, &plan.key_cols, &key).to_vec()
}

fn match_body(
    plans: &[AtomPlan<'_>],
    index: &mut LegacyIndex<'_>,
    delta: Option<(usize, &mut LegacyIndex<'_>)>,
    n_vars: usize,
    emit: &mut dyn FnMut(&[Option<Value>]),
) {
    let mut binding: Vec<Option<Value>> = vec![None; n_vars];
    let (delta_pos, mut delta_index) = match delta {
        Some((p, ix)) => (Some(p), Some(ix)),
        None => (None, None),
    };
    struct Frame {
        tuples: Vec<Tuple>,
        next: usize,
    }
    let mut stack: Vec<Frame> = Vec::with_capacity(plans.len());

    if plans.is_empty() {
        emit(&binding);
        return;
    }
    let first = if delta_pos == Some(0) {
        let ix = delta_index.as_deref_mut().expect("delta index present");
        candidates(&plans[0], &binding, ix)
    } else {
        candidates(&plans[0], &binding, index)
    };
    stack.push(Frame {
        tuples: first,
        next: 0,
    });

    while let Some(depth) = stack.len().checked_sub(1) {
        let frame = stack.last_mut().expect("nonempty stack");
        if frame.next >= frame.tuples.len() {
            stack.pop();
            for (_, v) in &plans[depth].binds {
                binding[*v] = None;
            }
            continue;
        }
        let tuple = frame.tuples[frame.next].clone();
        frame.next += 1;
        for (_, v) in &plans[depth].binds {
            binding[*v] = None;
        }
        for (c, v) in &plans[depth].binds {
            binding[*v] = Some(tuple[*c].clone());
        }
        let ok = plans[depth]
            .checks
            .iter()
            .all(|(c, v)| binding[*v].as_ref() == Some(&tuple[*c]));
        if !ok {
            continue;
        }
        if depth + 1 == plans.len() {
            emit(&binding);
            continue;
        }
        let next_tuples = if delta_pos == Some(depth + 1) {
            let ix = delta_index.as_deref_mut().expect("delta index present");
            candidates(&plans[depth + 1], &binding, ix)
        } else {
            candidates(&plans[depth + 1], &binding, index)
        };
        stack.push(Frame {
            tuples: next_tuples,
            next: 0,
        });
    }
}

/// The seed's semi-naive fixpoint, verbatim: rebuilds all (lazy) indexes
/// every round and replans every rule on every round.
pub fn fixpoint_seminaive_seed(program: &DatalogProgram, input: &Instance) -> Instance {
    let mut current = input.clone();

    let mut delta = Instance::new();
    {
        let mut new_facts: Vec<(RelId, Tuple)> = Vec::new();
        {
            let mut index = LegacyIndex::new(&current);
            for rule in &program.rules {
                let plans = plan_body(&rule.body, rule.n_vars);
                let mut emit = |binding: &[Option<Value>]| {
                    new_facts.push((rule.head.rel, rule.head.instantiate(binding)));
                };
                match_body(&plans, &mut index, None, rule.n_vars, &mut emit);
            }
        }
        for (rel, t) in new_facts {
            if current.insert(rel, t.clone()) {
                delta.insert(rel, t);
            }
        }
    }

    while !delta.is_empty() {
        let mut new_facts: Vec<(RelId, Tuple)> = Vec::new();
        {
            let mut index = LegacyIndex::new(&current);
            let mut delta_index = LegacyIndex::new(&delta);
            for rule in &program.rules {
                if rule.body.is_empty() {
                    continue;
                }
                let plans = plan_body(&rule.body, rule.n_vars);
                for pos in 0..rule.body.len() {
                    if delta.relation_len(rule.body[pos].rel) == 0 {
                        continue;
                    }
                    let mut emit = |binding: &[Option<Value>]| {
                        new_facts.push((rule.head.rel, rule.head.instantiate(binding)));
                    };
                    match_body(
                        &plans,
                        &mut index,
                        Some((pos, &mut delta_index)),
                        rule.n_vars,
                        &mut emit,
                    );
                }
            }
        }
        let mut next_delta = Instance::new();
        for (rel, t) in new_facts {
            if current.insert(rel, t.clone()) {
                next_delta.insert(rel, t);
            }
        }
        delta = next_delta;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;
    use gdatalog_datalog::{fixpoint_seminaive, DatalogRule};

    #[test]
    fn seed_baseline_agrees_with_current_engine() {
        let edge = RelId(0);
        let tc = RelId(1);
        let program = DatalogProgram::new(vec![
            DatalogRule::new(
                Atom::new(tc, vec![Term::Var(0), Term::Var(1)]),
                vec![Atom::new(edge, vec![Term::Var(0), Term::Var(1)])],
                2,
            )
            .unwrap(),
            DatalogRule::new(
                Atom::new(tc, vec![Term::Var(0), Term::Var(2)]),
                vec![
                    Atom::new(tc, vec![Term::Var(0), Term::Var(1)]),
                    Atom::new(edge, vec![Term::Var(1), Term::Var(2)]),
                ],
                3,
            )
            .unwrap(),
        ]);
        let mut input = Instance::new();
        for i in 0..12i64 {
            input.insert(edge, tuple![i, i + 1]);
        }
        input.insert(edge, tuple![12i64, 0i64]);
        let legacy = fixpoint_seminaive_seed(&program, &input);
        let (current, _) = fixpoint_seminaive(&program, &input);
        assert_eq!(legacy, current);
    }
}
