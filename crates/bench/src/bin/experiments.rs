//! The experiment harness: regenerates every quantitative claim of the
//! paper (experiments E1–E8 of DESIGN.md) and prints paper-expected vs
//! measured values. `cargo run --release -p gdatalog-bench --bin
//! experiments [e1 e2 …]` — no arguments runs everything.
//!
//! `cargo run --release -p gdatalog-bench --bin experiments bench`
//! additionally runs the perf-trajectory suite and writes
//! `BENCH_PR1.json` (per-bench median nanoseconds plus incremental-vs-
//! rebuild speedups) so later PRs can track the performance curve
//! machine-readably.
//!
//! The output of this binary is the source of EXPERIMENTS.md.

use std::sync::Arc;
use std::time::Instant;

use gdatalog_bench::report::{check_trend, Report};
use gdatalog_bench::{burglary_program, geometric_chain, heights_program, normal_chain};
use gdatalog_core::engine::Engine;
use gdatalog_core::{
    build_chase_tree, ChasePolicy, ChaseVariant, ExactConfig, McConfig, PolicyKind, RunOutcome,
};
use gdatalog_data::{Fact, Tuple, Value};
use gdatalog_dist::Registry;
use gdatalog_lang::{
    parse_program, simulate_barany_in_grohe, simulate_grohe_in_barany, SemanticsMode, BSIM_PREFIX,
};
use gdatalog_pdb::PossibleWorlds;
use gdatalog_stats::{ks_one_sample, ks_two_sample, Summary};

fn header(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

fn row3(a: impl std::fmt::Display, b: impl std::fmt::Display, c: impl std::fmt::Display) {
    println!("  {a:<34} {b:>16} {c:>16}");
}

/// Outcome triple (only R(1), only R(0), both) for programs with a unary R.
fn triple(engine: &Engine, worlds: &PossibleWorlds) -> (f64, f64, f64) {
    let r = engine.program().catalog.require("R").expect("R declared");
    let one = Tuple::from(vec![Value::int(1)]);
    let zero = Tuple::from(vec![Value::int(0)]);
    (
        worlds.probability(|d| d.contains(r, &one) && !d.contains(r, &zero)),
        worlds.probability(|d| d.contains(r, &zero) && !d.contains(r, &one)),
        worlds.probability(|d| d.contains(r, &zero) && d.contains(r, &one)),
    )
}

fn e1() {
    header(
        "E1",
        "Example 1.1 — programs G0, Gε, G′0 under both semantics",
    );
    let g0 = "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.";

    let new = Engine::from_source(g0, SemanticsMode::Grohe).expect("ok");
    let w = new.eval().exact().worlds().expect("ok");
    let (p1, p0, pb) = triple(&new, &w);
    println!("\nG0 under this paper's semantics (paper: 1/4, 1/4, 1/2):");
    row3("outcome", "paper", "measured");
    row3("{R(1)}", 0.25, p1);
    row3("{R(0)}", 0.25, p0);
    row3("{R(0), R(1)}", 0.5, pb);

    let old = Engine::from_source(g0, SemanticsMode::Barany).expect("ok");
    let w = old.eval().exact().worlds().expect("ok");
    let (p1, p0, pb) = triple(&old, &w);
    println!("\nG0 under Bárány et al. semantics (paper: 1/2, 1/2, 0):");
    row3("outcome", "paper", "measured");
    row3("{R(1)}", 0.5, p1);
    row3("{R(0)}", 0.5, p0);
    row3("{R(0), R(1)}", 0.0, pb);

    println!("\nGε as displayed (rules Flip<1/2>, Flip<1/2+ε>), new semantics:");
    println!("  (expected (1/2)(1/2+ε), (1/2)(1/2−ε), 1/2 — see errata note: the");
    println!("  paper's stated 1/4±ε+ε² arithmetic corresponds to Flip<1/2+ε> twice)");
    println!(
        "  {:>8} {:>12} {:>12} {:>12}",
        "ε", "{R(1)}", "{R(0)}", "both"
    );
    for eps in [0.25, 0.1, 0.05, 0.01, 0.0] {
        let src = format!("R(Flip<0.5>) :- true. R(Flip<{}>) :- true.", 0.5 + eps);
        let e = Engine::from_source(&src, SemanticsMode::Grohe).expect("ok");
        let w = e.eval().exact().worlds().expect("ok");
        let (p1, p0, pb) = triple(&e, &w);
        println!("  {eps:>8} {p1:>12.6} {p0:>12.6} {pb:>12.6}");
    }

    println!("\nGε paper-arithmetic variant (Flip<1/2+ε> twice), new semantics:");
    println!(
        "  {:>8} {:>12} {:>12} {:>14} {:>14}",
        "ε", "{R(1)}", "paper", "both", "paper"
    );
    for eps in [0.25f64, 0.1, 0.01] {
        let p = 0.5 + eps;
        let src = format!("R(Flip<{p}>) :- true. R(Flip<{p}>) :- true.");
        let e = Engine::from_source(&src, SemanticsMode::Grohe).expect("ok");
        let w = e.eval().exact().worlds().expect("ok");
        let (p1, _, pb) = triple(&e, &w);
        println!(
            "  {eps:>8} {p1:>12.6} {:>12.6} {pb:>14.6} {:>14.6}",
            0.25 + eps + eps * eps,
            0.5 - 2.0 * eps * eps
        );
    }

    let g0p = "R(Flip<0.5>) :- true. R(Bernoulli<0.5>) :- true.";
    println!("\nG′0 (Flip vs identically-distributed Bernoulli):");
    for (label, mode, expect) in [
        (
            "new semantics (same as G0)",
            SemanticsMode::Grohe,
            (0.25, 0.25, 0.5),
        ),
        (
            "Bárány (rename decorrelates)",
            SemanticsMode::Barany,
            (0.25, 0.25, 0.5),
        ),
    ] {
        let e = Engine::from_source(g0p, mode).expect("ok");
        let w = e.eval().exact().worlds().expect("ok");
        let t = triple(&e, &w);
        println!(
            "  {label:<32} paper ({:.2}, {:.2}, {:.2})  measured ({:.4}, {:.4}, {:.4})",
            expect.0, expect.1, expect.2, t.0, t.1, t.2
        );
    }
}

fn e2() {
    header(
        "E2",
        "Example 3.4 — burglary network: exact vs closed form vs MC",
    );
    let engine = Engine::from_source(&burglary_program(2), SemanticsMode::Grohe).expect("ok");
    let worlds = engine.eval().exact().worlds().expect("ok");
    println!(
        "exact worlds over the output schema: {} (mass {:.9})",
        worlds.len(),
        worlds.mass()
    );
    let pdb = engine
        .eval()
        .sample(100_000)
        .seed(7)
        .threads(4)
        .variant(ChaseVariant::Saturating)
        .pdb()
        .expect("ok");
    let alarm = engine.program().catalog.require("Alarm").expect("ok");
    println!("\n  unit  rate   closed-form      exact           MC(100k)");
    for (unit, rate) in [("h0", 0.3), ("h1", 0.3), ("b1", 0.1)] {
        let fact = Fact::new(alarm, Tuple::from(vec![Value::sym(unit)]));
        let closed = 1.0 - (1.0 - 0.1 * 0.6) * (1.0 - rate * 0.9);
        println!(
            "  {unit:<5} {rate:<6} {closed:<16.6} {:<15.9} {:.6}",
            worlds.marginal(&fact),
            pdb.marginal(&fact)
        );
    }
    // Correlation through the shared earthquake.
    let a0 = Fact::new(alarm, Tuple::from(vec![Value::sym("h0")]));
    let a1 = Fact::new(alarm, Tuple::from(vec![Value::sym("h1")]));
    let joint =
        worlds.probability(|d| d.contains(a0.rel, &a0.tuple) && d.contains(a1.rel, &a1.tuple));
    println!(
        "\n  P(alarm h0 ∧ alarm h1) = {:.6} > product {:.6} (same-city correlation)",
        joint,
        worlds.marginal(&a0) * worlds.marginal(&a1)
    );
}

fn e3() {
    header(
        "E3",
        "Example 3.5 — heights from per-country Normals (continuous MC)",
    );
    let engine = Engine::from_source(&heights_program(2), SemanticsMode::Grohe).expect("ok");
    let pheight = engine.program().catalog.require("PHeight").expect("ok");
    let pdb = engine
        .eval()
        .sample(8_000)
        .seed(3)
        .threads(4)
        .pdb()
        .expect("ok");
    println!("worlds sampled: {} ({} errors)\n", pdb.runs(), pdb.errors());
    println!("  person  target µ  target σ   sample mean  sample sd   KS p-value");
    for (person, mu, s2) in [("nl0", 183.8, 49.0f64), ("pe0", 165.2, 36.0)] {
        let mut vals = Vec::new();
        for world in pdb.samples() {
            for t in world.relation(pheight) {
                if t[0] == Value::sym(person) {
                    vals.push(t[1].as_f64().expect("real"));
                }
            }
        }
        let s = Summary::of(&vals);
        let sigma = s2.sqrt();
        let ks = ks_one_sample(&vals, |x| {
            gdatalog_dist::special::std_normal_cdf((x - mu) / sigma)
        });
        println!(
            "  {person:<7} {mu:<9} {sigma:<10.3} {:<12.3} {:<11.3} {:.3}",
            s.mean(),
            s.std_dev(),
            ks.p_value
        );
    }
}

fn e4() {
    header(
        "E4",
        "Theorem 6.1/6.2 — chase independence (policies & parallel)",
    );
    let engine = Engine::from_source(&burglary_program(2), SemanticsMode::Grohe).expect("ok");
    let program = engine.program();
    let reference = engine.eval().exact().worlds().expect("ok");
    println!("\n  discrete (burglary, exact): total variation vs canonical policy");
    for kind in [
        PolicyKind::Reverse,
        PolicyKind::RoundRobin,
        PolicyKind::Random { seed: 417 },
        PolicyKind::DeterministicFirst,
    ] {
        let w = engine
            .eval()
            .exact()
            .policy(kind)
            .keep_aux(true)
            .worlds()
            .expect("ok")
            .map(|d| program.project_output(d));
        let label = format!("{kind:?}");
        println!("    {label:<28} TV = {:.2e}", reference.total_variation(&w));
    }
    let par = engine.eval().exact_parallel().worlds().expect("ok");
    println!(
        "    {:<28} TV = {:.2e}",
        "Parallel chase",
        reference.total_variation(&par)
    );

    println!("\n  continuous (heights, MC): two-sample KS vs canonical sequential");
    let heights_engine =
        Engine::from_source(&heights_program(1), SemanticsMode::Grohe).expect("ok");
    let ph = heights_engine
        .program()
        .catalog
        .require("PHeight")
        .expect("ok");
    let sample_with = |variant, seed| {
        heights_engine
            .eval()
            .sample(4_000)
            .seed(seed)
            .variant(variant)
            .pdb()
            .expect("ok")
            .column_values(ph, 1)
    };
    let base = sample_with(ChaseVariant::Sequential(PolicyKind::Canonical), 100);
    for (label, variant, seed) in [
        (
            "Sequential(Reverse)",
            ChaseVariant::Sequential(PolicyKind::Reverse),
            101,
        ),
        (
            "Sequential(Random)",
            ChaseVariant::Sequential(PolicyKind::Random { seed: 5 }),
            102,
        ),
        ("Parallel", ChaseVariant::Parallel, 103),
        ("Saturating", ChaseVariant::Saturating, 104),
    ] {
        let other = sample_with(variant, seed);
        let ks = ks_two_sample(&base, &other);
        println!(
            "    {label:<28} KS D = {:.4}, p = {:.3}",
            ks.statistic, ks.p_value
        );
    }
}

fn e5() {
    header("E5", "Theorem 6.3 / §6.3 — weak acyclicity and termination");
    println!("\n  program                      weakly acyclic   behavior");
    let cases: [(&str, String); 4] = [
        ("burglary (Ex. 3.4)", burglary_program(2)),
        ("heights (Ex. 3.5)", heights_program(1)),
        ("normal chain (§6.3)", normal_chain().to_string()),
        ("geometric chain (§6.3)", geometric_chain().to_string()),
    ];
    for (label, src) in &cases {
        let engine = Engine::from_source(src, SemanticsMode::Grohe).expect("ok");
        let wa = engine.program().weakly_acyclic();
        let pdb = engine
            .eval()
            .sample(200)
            .max_depth(500)
            .seed(11)
            .threads(4)
            .pdb()
            .expect("ok");
        let behavior = if pdb.errors() == 0 {
            "terminates (all runs)".to_string()
        } else if pdb.errors() == pdb.runs() {
            "never terminated within budget".to_string()
        } else {
            format!(
                "{}/{} runs terminated",
                pdb.runs() - pdb.errors(),
                pdb.runs()
            )
        };
        println!("  {label:<28} {wa:<16} {behavior}");
    }

    println!("\n  continuous chain: alive fraction by step budget (paper: a.s. non-terminating)");
    let cont = Engine::from_source(normal_chain(), SemanticsMode::Grohe).expect("ok");
    for budget in [10usize, 100, 500] {
        let pdb = cont
            .eval()
            .sample(200)
            .max_depth(budget)
            .seed(2)
            .threads(4)
            .pdb()
            .expect("ok");
        println!(
            "    budget {budget:>5}: alive {:.3} (expected 1.000)",
            pdb.errors() as f64 / pdb.runs() as f64
        );
    }

    println!("\n  geometric chain: terminates a.s.; exact termination mass by depth");
    let disc = Engine::from_source(geometric_chain(), SemanticsMode::Grohe).expect("ok");
    // Paths below probability 1e-6 are pruned into the unresolved mass,
    // keeping the tree finite (the geometric support alone has ~20
    // outcomes per sample at this tolerance).
    for depth in [4usize, 8, 12, 16] {
        let w = disc
            .eval()
            .exact()
            .policy(PolicyKind::Canonical)
            .keep_aux(true)
            .max_depth(depth)
            .support_tol(1e-6)
            .min_path_prob(1e-6)
            .worlds()
            .expect("ok");
        println!(
            "    depth ≤ {depth:>2}: terminated mass ≥ {:.6}, unresolved ≤ {:.6}",
            w.mass(),
            w.deficit().nontermination + w.deficit().truncation
        );
    }
    let mut lens = Vec::new();
    for seed in 0..2_000u64 {
        let run = disc
            .eval()
            .policy(PolicyKind::Canonical)
            .seed(seed)
            .max_depth(100_000)
            .trace()
            .expect("ok");
        assert_eq!(run.outcome, RunOutcome::Terminated);
        lens.push(run.steps as f64);
    }
    let s = Summary::of(&lens);
    println!(
        "    2000 MC runs all terminated; steps: mean {:.2}, max {:.0}",
        s.mean(),
        s.max()
    );
}

fn e6() {
    header(
        "E6",
        "§6.2 — semantics simulation (H ↦ H′ and the tagged dual)",
    );
    let h = "R(Flip<0.5>) :- true. S(Flip<0.5>) :- true.";
    let old_engine = Engine::from_source(h, SemanticsMode::Barany).expect("ok");
    let old_table = old_engine
        .eval()
        .exact()
        .worlds()
        .expect("ok")
        .table(&old_engine.program().catalog);
    println!("\n  H under Bárány et al. (paper: two perfectly correlated worlds):");
    for (t, p) in &old_table {
        println!("    {p:.4}  {t}");
    }

    let h_prime = simulate_barany_in_grohe(&parse_program(h).expect("ok"));
    let sim_engine = Engine::from_ast(
        h_prime,
        SemanticsMode::Grohe,
        Arc::new(Registry::standard()),
    )
    .expect("ok");
    let sim_catalog = sim_engine.program().catalog.clone();
    let sim_table = sim_engine
        .eval()
        .exact()
        .worlds()
        .expect("ok")
        .project_relations(|rel| !sim_catalog.name(rel).starts_with(BSIM_PREFIX))
        .table(&sim_catalog);
    println!("\n  H′ under this paper's semantics, helpers projected (paper: same):");
    for (t, p) in &sim_table {
        println!("    {p:.4}  {t}");
    }
    let agree = old_table.len() == sim_table.len()
        && old_table
            .iter()
            .zip(&sim_table)
            .all(|((ta, pa), (tb, pb))| ta == tb && (pa - pb).abs() < 1e-12);
    println!("\n  tables agree exactly: {agree}");

    // Dual direction.
    let g = "Quake(C, Flip<R>) :- City(C, R).\nEcho(C, Flip<R>) :- City(C, R).\nCity(a, 0.5).\nCity(b, 0.25).";
    let new_engine = Engine::from_source(g, SemanticsMode::Grohe).expect("ok");
    let new_table = new_engine
        .eval()
        .exact()
        .worlds()
        .expect("ok")
        .table(&new_engine.program().catalog);
    let tagged = simulate_grohe_in_barany(&parse_program(g).expect("ok"));
    let dual_engine = Engine::from_ast(
        tagged,
        SemanticsMode::Barany,
        Arc::new(Registry::standard()),
    )
    .expect("ok");
    let dual_table = dual_engine
        .eval()
        .exact()
        .worlds()
        .expect("ok")
        .table(&dual_engine.program().catalog);
    let agree_dual = new_table.len() == dual_table.len()
        && new_table
            .iter()
            .zip(&dual_table)
            .all(|((ta, pa), (tb, pb))| ta == tb && (pa - pb).abs() < 1e-12);
    println!(
        "  dual (tagging) simulation agrees exactly: {agree_dual} ({} worlds)",
        new_table.len()
    );
}

fn e7() {
    header(
        "E7",
        "Theorems 4.8/5.5 — probabilistic inputs (SPDB → SPDB)",
    );
    let engine = Engine::from_source(
        r#"
        rel Device(symbol, real) input.
        Fault(D, Flip<P>) :- Device(D, P).
        Alert(D) :- Fault(D, 1).
        "#,
        SemanticsMode::Grohe,
    )
    .expect("ok");
    let device = engine.program().catalog.require("Device").expect("ok");
    let alert = engine.program().catalog.require("Alert").expect("ok");
    let mut w1 = gdatalog_data::Instance::new();
    w1.insert(
        device,
        Tuple::from(vec![Value::sym("pump"), Value::real(0.5)]),
    );
    let mut w2 = w1.clone();
    w2.insert(
        device,
        Tuple::from(vec![Value::sym("valve"), Value::real(0.25)]),
    );
    let mut input = PossibleWorlds::new();
    input.add(w1, 0.6);
    input.add(w2, 0.4);
    let out = engine.eval().transform(&input).expect("ok");
    println!(
        "\n  input: 2 worlds (0.6 / 0.4); output mass {:.9}",
        out.mass()
    );
    println!("  {:<22} {:>12} {:>12}", "marginal", "analytic", "measured");
    let pump = Fact::new(alert, Tuple::from(vec![Value::sym("pump")]));
    let valve = Fact::new(alert, Tuple::from(vec![Value::sym("valve")]));
    println!(
        "  {:<22} {:>12} {:>12.6}",
        "P(Alert(pump))",
        0.5,
        out.marginal(&pump)
    );
    println!(
        "  {:<22} {:>12} {:>12.6}",
        "P(Alert(valve))",
        0.1,
        out.marginal(&valve)
    );
}

fn e8() {
    header("E8", "Figure 1 — chase-tree path census and DOT rendering");
    let engine = Engine::from_source(geometric_chain(), SemanticsMode::Grohe).expect("ok");
    let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
    let tree = build_chase_tree(
        engine.program(),
        &engine.program().initial_instance,
        &mut policy,
        ExactConfig {
            max_depth: 8,
            support_tol: 1e-6,
            min_path_prob: 1e-6,
            ..ExactConfig::default()
        },
    )
    .expect("discrete");
    println!("\n  nodes: {}", tree.nodes.len());
    println!(
        "  finite maximal paths (→ instances): {} carrying mass {:.6}",
        tree.leaves().count(),
        tree.terminated_mass()
    );
    println!(
        "  budget-cut paths (→ err):           {} carrying mass {:.6}",
        tree.cut_nodes().count(),
        tree.cut_mass()
    );
    println!(
        "  truncated support mass:             {:.6}",
        tree.truncated_mass
    );
    println!("\n  terminated mass by depth:");
    for (d, m) in tree.mass_by_depth() {
        let bar = "#".repeat((m * 60.0).round() as usize);
        println!("    depth {d:>2}: {m:.6} {bar}");
    }
    // A tiny tree rendered in full.
    let flip = Engine::from_source("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).expect("ok");
    let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
    let small = build_chase_tree(
        flip.program(),
        &flip.program().initial_instance,
        &mut policy,
        ExactConfig::default(),
    )
    .expect("ok");
    println!("\n  DOT rendering of the single-flip chase tree:\n");
    for line in small.to_dot(&flip.program().catalog).lines() {
        println!("    {line}");
    }
}

/// Median wall-clock nanoseconds of `f` over `samples` timed calls (after
/// one warm-up call).
fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    let n = times.len();
    if n % 2 == 1 {
        times[n / 2]
    } else {
        0.5 * (times[n / 2 - 1] + times[n / 2])
    }
}

/// The perf-trajectory suite behind `BENCH_PR1.json`: the Datalog
/// substrate (transitive closure, naive vs rebuild-per-round semi-naive vs
/// incremental semi-naive) and the chase (rebuild-per-step saturating
/// baseline vs incremental saturating, plus sequential/parallel MC), with
/// per-bench median ns and the incremental-vs-rebuild speedups.
fn bench_pr1() {
    use gdatalog_core::saturate::run_saturating_rebuild_baseline;
    use gdatalog_core::{run_saturating, sample_pdb};
    use gdatalog_data::{tuple, Instance, RelId};
    use gdatalog_datalog::{
        fixpoint_naive, fixpoint_seminaive, fixpoint_seminaive_rebuild, Atom, DatalogProgram,
        DatalogRule, Term,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    header("BENCH", "perf trajectory (written to BENCH_PR1.json)");

    // Transitive closure over a chain: T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).
    let tc = DatalogProgram::new(vec![
        DatalogRule::new(
            Atom::new(RelId(1), vec![Term::Var(0), Term::Var(1)]),
            vec![Atom::new(RelId(0), vec![Term::Var(0), Term::Var(1)])],
            2,
        )
        .expect("safe"),
        DatalogRule::new(
            Atom::new(RelId(1), vec![Term::Var(0), Term::Var(2)]),
            vec![
                Atom::new(RelId(1), vec![Term::Var(0), Term::Var(1)]),
                Atom::new(RelId(0), vec![Term::Var(1), Term::Var(2)]),
            ],
            3,
        )
        .expect("safe"),
    ]);
    let chain = |n: i64| -> Instance {
        let mut d = Instance::new();
        for i in 0..n {
            d.insert(RelId(0), tuple![i, i + 1]);
        }
        d
    };

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut push = |name: &str, ns: f64| {
        println!("  {name:<44} {ns:>14.0} ns");
        results.push((name.to_string(), ns));
    };

    for n in [32i64, 128] {
        let input = chain(n);
        push(
            &format!("datalog_tc/naive/{n}"),
            median_ns(5, || {
                std::hint::black_box(fixpoint_naive(&tc, &input));
            }),
        );
        push(
            &format!("datalog_tc/seminaive_seed/{n}"),
            median_ns(7, || {
                std::hint::black_box(gdatalog_bench::legacy::fixpoint_seminaive_seed(&tc, &input));
            }),
        );
        push(
            &format!("datalog_tc/seminaive_rebuild/{n}"),
            median_ns(7, || {
                std::hint::black_box(fixpoint_seminaive_rebuild(&tc, &input));
            }),
        );
        push(
            &format!("datalog_tc/seminaive/{n}"),
            median_ns(7, || {
                std::hint::black_box(fixpoint_seminaive(&tc, &input));
            }),
        );
    }

    // Chase benches on the burglary network (Ex. 3.4).
    let engine = Engine::from_source(&burglary_program(8), SemanticsMode::Grohe).expect("ok");
    let program = engine.program();
    push(
        "chase/saturating_rebuild/8houses",
        median_ns(5, || {
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..10 {
                std::hint::black_box(
                    run_saturating_rebuild_baseline(
                        program,
                        &program.initial_instance,
                        &mut rng,
                        100_000,
                    )
                    .expect("runs"),
                );
            }
        }),
    );
    push(
        "chase/saturating/8houses",
        median_ns(5, || {
            let mut rng = StdRng::seed_from_u64(1);
            for _ in 0..10 {
                std::hint::black_box(
                    run_saturating(program, &program.initial_instance, &mut rng, 100_000, false)
                        .expect("runs"),
                );
            }
        }),
    );
    for (label, variant) in [
        (
            "sequential",
            ChaseVariant::Sequential(PolicyKind::Canonical),
        ),
        ("parallel", ChaseVariant::Parallel),
        ("saturating", ChaseVariant::Saturating),
    ] {
        push(
            &format!("chase_mc/{label}/8houses"),
            median_ns(5, || {
                let cfg = McConfig {
                    runs: 50,
                    max_steps: 100_000,
                    seed: 1,
                    variant,
                    ..McConfig::default()
                };
                std::hint::black_box(
                    sample_pdb(program, &program.initial_instance, &cfg).expect("runs"),
                );
            }),
        );
    }

    let lookup = |name: &str| -> f64 {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .expect("recorded bench")
    };
    let speedups = [
        (
            "datalog_tc/seminaive/128 vs seed",
            lookup("datalog_tc/seminaive_seed/128") / lookup("datalog_tc/seminaive/128"),
        ),
        (
            "datalog_tc/seminaive/128 vs rebuild",
            lookup("datalog_tc/seminaive_rebuild/128") / lookup("datalog_tc/seminaive/128"),
        ),
        (
            "datalog_tc/seminaive/128 vs naive",
            lookup("datalog_tc/naive/128") / lookup("datalog_tc/seminaive/128"),
        ),
        (
            "chase/saturating vs rebuild",
            lookup("chase/saturating_rebuild/8houses") / lookup("chase/saturating/8houses"),
        ),
    ];
    println!();
    for (name, x) in &speedups {
        println!("  speedup {name:<38} {x:>10.2}x");
    }

    let mut report = Report::new(1, "perf_trajectory");
    for (name, ns) in &results {
        report.metric(&format!("{name}/median_ns"), ns.round());
    }
    for (name, x) in &speedups {
        report.metric(&format!("speedup/{name}"), *x);
    }
    report.write("BENCH_PR1.json");
}

/// Resident set size in KiB (Linux), or 0 where unavailable.
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// The PR2 suite behind `BENCH_PR2.json`: streaming Monte-Carlo through
/// the Session/Evaluation API. A 1M-run marginal folds run-by-run into an
/// O(result) sink (single- and multi-threaded), compared against the PR1
/// baseline that materializes every sampled instance into an
/// `EmpiricalPdb` (run at 100k and extrapolated to 1M for the memory
/// ratio).
fn bench_pr2() {
    use gdatalog_core::Session;
    use gdatalog_data::tuple;
    use std::time::Instant;

    header(
        "BENCH2",
        "streaming Monte-Carlo (written to BENCH_PR2.json)",
    );

    let session = Session::from_source("R(Flip<0.5>) :- true. S(X) :- R(X).", SemanticsMode::Grohe)
        .expect("ok");
    let r = session.program().catalog.require("R").expect("declared");
    let fact = Fact::new(r, tuple![1i64]);

    const STREAM_RUNS: usize = 1_000_000;
    const MAT_RUNS: usize = 100_000;

    // 1M-run streaming marginal: no per-run instance survives the fold.
    let rss_before = rss_kb();
    let t = Instant::now();
    let p1 = session
        .eval()
        .sample(STREAM_RUNS)
        .seed(7)
        .marginal(&fact)
        .expect("runs");
    let stream_ns = t.elapsed().as_nanos() as f64;
    let stream_rss_kb = rss_kb().saturating_sub(rss_before);

    let t = Instant::now();
    let p4 = session
        .eval()
        .sample(STREAM_RUNS)
        .seed(7)
        .threads(4)
        .marginal(&fact)
        .expect("runs");
    let stream4_ns = t.elapsed().as_nanos() as f64;
    assert!((p1 - p4).abs() < 1e-9, "deterministic across threads");
    assert!((p1 - 0.5).abs() < 0.01, "P(R(1)) ≈ 1/2");

    // PR1 baseline: materialize every sampled instance (at 100k runs;
    // memory extrapolated ×10 for the 1M comparison).
    let rss_before = rss_kb();
    let t = Instant::now();
    let pdb = session.eval().sample(MAT_RUNS).seed(7).pdb().expect("runs");
    let mat_ns = t.elapsed().as_nanos() as f64;
    let mat_rss_kb = rss_kb().saturating_sub(rss_before);
    let retained = pdb.samples().len();
    assert!((pdb.marginal(&fact) - p1).abs() < 0.01);
    drop(pdb);

    let stream_rate = STREAM_RUNS as f64 / (stream_ns / 1e9);
    let stream4_rate = STREAM_RUNS as f64 / (stream4_ns / 1e9);
    let mat_rate = MAT_RUNS as f64 / (mat_ns / 1e9);
    println!(
        "  {:<44} {:>14.0} runs/s",
        "mc_stream/marginal/1thread", stream_rate
    );
    println!(
        "  {:<44} {:>14.0} runs/s",
        "mc_stream/marginal/4threads", stream4_rate
    );
    println!(
        "  {:<44} {:>14.0} runs/s",
        "mc_materialize/pdb/1thread", mat_rate
    );
    println!(
        "  streaming retained ~{stream_rss_kb} KiB over {STREAM_RUNS} runs; \
         materializing retained ~{mat_rss_kb} KiB over {retained} instances"
    );

    let mut report = Report::new(2, "mc_streaming");
    report
        .metric(
            "mc_stream/marginal/1M/1thread/runs_per_s",
            stream_rate.round(),
        )
        .metric(
            "mc_stream/marginal/1M/1thread/rss_delta_kb",
            stream_rss_kb as f64,
        )
        .metric(
            "mc_stream/marginal/1M/4threads/runs_per_s",
            stream4_rate.round(),
        )
        .metric(
            "mc_materialize/pdb/100k/1thread/runs_per_s",
            mat_rate.round(),
        )
        .metric(
            "mc_materialize/pdb/100k/1thread/rss_delta_kb",
            mat_rss_kb as f64,
        )
        .metric("mc_materialize/retained_instances", retained as f64)
        .metric(
            "memory_ratio_1m_extrapolated",
            (mat_rss_kb.max(1) * 10) as f64 / stream_rss_kb.max(1) as f64,
        )
        .metric("marginal", p1)
        .gate("deterministic_across_threads", (p1 - p4).abs() < 1e-9)
        .gate("marginal_near_half", (p1 - 0.5).abs() < 0.01);
    report.write("BENCH_PR2.json");
}

/// The PR3 suite behind `BENCH_PR3.json`: the serving layer. A
/// 100-request batch of mixed queries (marginal / probability /
/// expectation / histogram, each with its own evidence) against **one**
/// model is answered two ways — naive per-request compile+plan+evaluate
/// (the pre-PR3 workflow of every caller) and through the cached, pooled,
/// batched `Server` — with bit-identity asserted between the batch, the
/// single-request path, and a fresh uncached session before any timing is
/// reported. A seeded Monte-Carlo sub-batch extends the identity check to
/// the sampling backend.
fn bench_pr3() {
    use gdatalog_bench::serving_library_program;
    use gdatalog_core::Session;
    use gdatalog_serve::{execute_on, ProgramCache, Reply, Request, Server};

    header("BENCH3", "serving layer (written to BENCH_PR3.json)");

    let model_src = serving_library_program(16);
    const BATCH: usize = 100;

    // Mixed exact workload: the four query kinds round-robin, evidence
    // differing per request.
    let requests: Vec<Request> = (0..BATCH)
        .map(|i| {
            let d = i % 16;
            let evidence = format!("In{d}(c{i}, 0.{}).", 1 + i % 8);
            match i % 4 {
                0 => Request::marginal(format!("Out{d}(c{i})")),
                1 => Request::probability(format!("Out{d}(c{i})")),
                2 => Request::expectation(format!("Out{d}"), gdatalog_pdb::AggFun::Count),
                _ => Request::histogram(format!("Ev{d}"), 1, 0.0, 2.0, 2),
            }
            .evidence(evidence)
            .exact()
        })
        .collect();

    // Naive baseline: compile + plan + evaluate per request (every
    // session is fresh, so nothing is amortized).
    let naive = |reqs: &[Request]| -> Vec<Reply> {
        reqs.iter()
            .map(|req| {
                let mut session =
                    Session::from_source(&model_src, SemanticsMode::Grohe).expect("compiles");
                execute_on(&mut session, req).expect("request succeeds")
            })
            .collect()
    };

    let unwrap = |answers: Vec<Result<Reply, gdatalog_serve::ServeError>>| {
        answers
            .into_iter()
            .map(|a| a.expect("request succeeds"))
            .collect::<Vec<Reply>>()
    };

    let cache = ProgramCache::new();
    let model = cache
        .get_or_compile(&model_src, SemanticsMode::Grohe)
        .expect("compiles");
    let server1 = Server::new(Arc::clone(&model));
    let server4 = Server::new(Arc::clone(&model)).threads(4);

    // Bit-identity first: batch == sequential single-request == naive
    // uncached, response by response (Response equality is exact f64
    // equality). A seeded MC sub-batch covers the sampling backend.
    let reference = naive(&requests);
    let singles = unwrap(
        requests
            .iter()
            .map(|r| server1.execute(r))
            .collect::<Vec<_>>(),
    );
    let seq = unwrap(server1.batch(&requests));
    let par = unwrap(server4.batch(&requests));
    for i in 0..BATCH {
        assert_eq!(reference[i], singles[i], "single-request differs at {i}");
        assert_eq!(reference[i], seq[i], "sequential batch differs at {i}");
        assert_eq!(reference[i], par[i], "parallel batch differs at {i}");
    }
    let mc_batch: Vec<Request> = (0..8)
        .map(|i| {
            Request::marginal(format!("Out0(m{i})"))
                .evidence(format!("In0(m{i}, 0.4)."))
                .mc(2_000)
                .seed(i as u64)
        })
        .collect();
    assert_eq!(
        unwrap(server4.batch(&mc_batch)),
        naive(&mc_batch),
        "seeded Monte-Carlo batch must be bit-identical too"
    );
    println!("  bit-identity: naive == single-request == batch(1) == batch(4)  ✓ (exact + MC)");

    let naive_ns = median_ns(5, || {
        std::hint::black_box(naive(&requests));
    });
    let seq_ns = median_ns(5, || {
        std::hint::black_box(server1.batch(&requests));
    });
    let par_ns = median_ns(5, || {
        std::hint::black_box(server4.batch(&requests));
    });

    let rate = |ns: f64| BATCH as f64 / (ns / 1e9);
    let speedup_seq = naive_ns / seq_ns;
    let speedup_par = naive_ns / par_ns;
    println!(
        "  {:<44} {:>14.0} req/s",
        "naive compile-per-request",
        rate(naive_ns)
    );
    println!(
        "  {:<44} {:>14.0} req/s   ({speedup_seq:.1}x)",
        "cached+pooled batch, 1 worker",
        rate(seq_ns)
    );
    println!(
        "  {:<44} {:>14.0} req/s   ({speedup_par:.1}x)",
        "cached+pooled batch, 4 workers",
        rate(par_ns)
    );
    let stats = cache.stats();
    println!(
        "  cache: {} hit(s), {} miss(es); pool sessions created: {} (seq) / {} (par)",
        stats.hits,
        stats.misses,
        server1.pool().created(),
        server4.pool().created()
    );
    // Acceptance gate: ≥5x throughput for the served batch vs naive
    // per-request compile+evaluate (worker count per available
    // parallelism; on a single-core runner the two batch rows coincide).
    let best = speedup_seq.max(speedup_par);
    assert!(
        best >= 5.0,
        "acceptance: ≥5x throughput for the batched path (got {best:.1}x)"
    );

    let mut report = Report::new(3, "serving");
    report
        .metric("batch_requests", BATCH as f64)
        .metric(
            "serving/naive_compile_per_request/median_ns",
            naive_ns.round(),
        )
        .metric(
            "serving/naive_compile_per_request/req_per_s",
            rate(naive_ns).round(),
        )
        .metric("serving/batch_1worker/median_ns", seq_ns.round())
        .metric("serving/batch_1worker/req_per_s", rate(seq_ns).round())
        .metric("serving/batch_4workers/median_ns", par_ns.round())
        .metric("serving/batch_4workers/req_per_s", rate(par_ns).round())
        .metric("speedup/batch_1worker_vs_naive", speedup_seq)
        .metric("speedup/batch_4workers_vs_naive", speedup_par)
        .gate("bit_identical_to_sequential", true)
        .gate("best_speedup_ge_5x", best >= 5.0);
    report.write("BENCH_PR3.json");
}

/// The PR5 suite behind `BENCH_PR5.json`: single-pass multi-query
/// execution. A dashboard-style client asks K = 8 statistics about one
/// program + input; the pre-PR5 workflow sends 8 single-query requests
/// (8 backend passes), the Query-IR workflow sends 1 request with a
/// `"queries"` array (1 backend pass fanned out to 8 sinks).
/// Bit-identity between the two is asserted before any timing, and the
/// acceptance gate is ≥4x throughput at K = 8.
fn bench_pr5() {
    use gdatalog_bench::serving_library_program;
    use gdatalog_serve::{QueryKind, Reply, Request, Server};

    header(
        "BENCH5",
        "multi-query single pass (written to BENCH_PR5.json)",
    );

    const K: usize = 8;
    let model_src = serving_library_program(16);
    let input: String = (0..K)
        .map(|d| format!("In{d}(c{d}, 0.3). "))
        .collect::<String>();
    let kinds: Vec<QueryKind> = (0..K)
        .map(|d| match d % 4 {
            0 => QueryKind::Marginal {
                fact: format!("Out{d}(c{d})"),
            },
            1 => QueryKind::Marginals {
                rel: format!("Out{d}"),
            },
            2 => QueryKind::Expectation {
                rel: format!("Out{d}"),
                agg: gdatalog_pdb::AggFun::Count,
                col: None,
            },
            _ => QueryKind::Histogram {
                rel: format!("Ev{d}"),
                col: 1,
                lo: 0.0,
                hi: 2.0,
                bins: 2,
            },
        })
        .collect();

    let configure = |req: Request, mc: bool| {
        let req = req.input(input.clone());
        if mc {
            req.mc(2_000).seed(7)
        } else {
            req.exact()
        }
    };
    let server = Server::from_source(&model_src, SemanticsMode::Grohe).expect("compiles");

    let mut results = Vec::new();
    for (label, mc) in [("exact", false), ("mc2000", true)] {
        let multi = configure(Request::multi(kinds.clone()), mc);
        let singles: Vec<Request> = kinds
            .iter()
            .map(|kind| configure(Request::multi(vec![kind.clone()]), mc))
            .collect();

        // Bit-identity first: the multiplexed answers must equal the K
        // independent single-query answers, response by response
        // (Response equality is exact f64 equality).
        let reply = server.execute(&multi).expect("multi request succeeds");
        assert_eq!(reply.responses.len(), K);
        for (i, single) in singles.iter().enumerate() {
            let expect = server.execute(single).expect("single request succeeds");
            assert_eq!(
                &reply.responses[i],
                expect.single(),
                "{label}: slot {i} differs"
            );
        }

        let one_pass_ns = median_ns(9, || {
            std::hint::black_box(server.execute(&multi).expect("ok"));
        });
        let k_passes_ns = median_ns(9, || {
            let replies: Vec<Reply> = singles
                .iter()
                .map(|r| server.execute(r).expect("ok"))
                .collect();
            std::hint::black_box(replies);
        });
        let speedup = k_passes_ns / one_pass_ns;
        println!(
            "  {label:<10} {K} queries: one pass {one_pass_ns:>12.0} ns, \
             {K} passes {k_passes_ns:>12.0} ns   ({speedup:.1}x)"
        );
        results.push((label, one_pass_ns, k_passes_ns, speedup));
    }
    println!("  bit-identity: multi-query reply == K single-query replies  ✓ (exact + MC)");

    // Acceptance gate: ≥4x throughput at K = 8 for the multiplexed pass,
    // in EVERY mode — gating on the best would let a mode-specific
    // regression (say, the MC fan-out path) slip through while exact
    // keeps CI green.
    for (label, _, _, speedup) in &results {
        assert!(
            *speedup >= 4.0,
            "acceptance: >=4x throughput at K = {K} for {label} (got {speedup:.1}x)"
        );
    }

    let mut report = Report::new(5, "multi_query");
    report.metric("queries_per_request", K as f64);
    for (label, one, k, speedup) in &results {
        report
            .metric(
                &format!("multi_query/{label}/one_pass_median_ns"),
                one.round(),
            )
            .metric(
                &format!("multi_query/{label}/repeated_single_query_median_ns"),
                k.round(),
            )
            .gate_ratio(&format!("multi_query/{label}/speedup"), *speedup, 4.0);
    }
    report.gate("bit_identical_to_single_query_requests", true);
    report.write("BENCH_PR5.json");
}

/// The PR7 suite behind `BENCH_PR7.json`: the HTTP serving subsystem.
/// Two measurements, bit-identity asserted **before** any timing:
///
/// 1. **Batch scheduling** — a 64-request corpus with deliberately
///    skewed per-request cost (Monte-Carlo run counts varying 4x) is
///    answered at 1 and 4 workers. Work stealing must never lose to a
///    single worker (0.9x floor, asserted everywhere); on a machine
///    with ≥ 4 cores it must win ≥ 2.5x (the ISSUE 7 acceptance gate —
///    meaningless on fewer cores, so gated on `available_parallelism`,
///    with the core count recorded in the JSON).
/// 2. **The wire** — an in-process `HttpServer` takes a closed-loop
///    loadgen burst; every reply must be 2xx, and req/s + exact
///    p50/p99 land in the JSON next to the server's own bucketed view.
fn bench_pr7() {
    use gdatalog_bench::serving_library_program;
    use gdatalog_net::{self as net, HttpServer, LoadgenConfig, NetConfig};
    use gdatalog_serve::{ProgramCache, Reply, Request, Server};

    header(
        "BENCH7",
        "HTTP serving subsystem (written to BENCH_PR7.json)",
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let model_src = serving_library_program(16);
    const BATCH: usize = 64;

    // Skewed corpus: run counts vary 4x so contiguous-chunk scheduling
    // would tail on whichever chunk drew the heavy requests.
    let requests: Vec<Request> = (0..BATCH)
        .map(|i| {
            let d = i % 16;
            Request::marginal(format!("Out{d}(c{i})"))
                .input(format!("In{d}(c{i}, 0.{}).", 1 + i % 8))
                .mc(500 + 500 * (i % 4))
                .seed(i as u64)
        })
        .collect();

    let cache = ProgramCache::new();
    let model = cache
        .get_or_compile(&model_src, SemanticsMode::Grohe)
        .expect("compiles");
    let server1 = Server::new(Arc::clone(&model));
    let server4 = Server::new(Arc::clone(&model)).threads(4);

    // Bit-identity before timing: the work-stealing batch at 4 workers
    // must equal the 1-worker batch must equal one-at-a-time execution.
    let unwrap = |answers: Vec<Result<Reply, gdatalog_serve::ServeError>>| {
        answers
            .into_iter()
            .map(|a| a.expect("request succeeds"))
            .collect::<Vec<Reply>>()
    };
    let singles = unwrap(
        requests
            .iter()
            .map(|r| server1.execute(r))
            .collect::<Vec<_>>(),
    );
    let seq = unwrap(server1.batch(&requests));
    let par = unwrap(server4.batch(&requests));
    for i in 0..BATCH {
        assert_eq!(singles[i], seq[i], "1-worker batch differs at {i}");
        assert_eq!(singles[i], par[i], "4-worker batch differs at {i}");
    }
    println!("  bit-identity: singles == batch(1) == batch(4)  ✓ (seeded MC, skewed costs)");

    let t1_ns = median_ns(5, || {
        std::hint::black_box(server1.batch(&requests));
    });
    let t4_ns = median_ns(5, || {
        std::hint::black_box(server4.batch(&requests));
    });
    let rate = |ns: f64| BATCH as f64 / (ns / 1e9);
    let ratio = t1_ns / t4_ns; // >1 means 4 workers are faster
    println!("  {:<44} {:>14.0} req/s", "batch, 1 worker", rate(t1_ns));
    println!(
        "  {:<44} {:>14.0} req/s   ({ratio:.2}x, {cores} core(s))",
        "batch, 4 workers",
        rate(t4_ns)
    );
    assert!(
        ratio >= 0.9,
        "acceptance: 4 workers must never regress below 0.9x of 1 worker \
         (got {ratio:.3}x)"
    );
    if cores >= 4 {
        assert!(
            ratio >= 2.5,
            "acceptance: ≥2.5x batch throughput at 4 workers on a {cores}-core \
             machine (got {ratio:.2}x)"
        );
    } else {
        println!(
            "  (2.5x multi-core gate skipped: {cores} core(s) available; \
             the 0.9x no-regression floor was enforced)"
        );
    }

    // The wire: an in-process server takes a closed-loop burst.
    let http_workers = cores.clamp(1, 4);
    let server = HttpServer::start_cached(
        Arc::new(ProgramCache::new()),
        &model_src,
        SemanticsMode::Grohe,
        "127.0.0.1:0",
        NetConfig {
            workers: http_workers,
            ..NetConfig::default()
        },
    )
    .expect("server starts");
    let bodies: Vec<String> = (0..16)
        .map(|i| {
            let d = i % 16;
            format!(
                "{{\"kind\":\"marginal\",\"fact\":\"Out{d}(w{i})\",\
                 \"input\":\"In{d}(w{i}, 0.4).\",\"backend\":\"exact\"}}"
            )
        })
        .collect();
    let report = net::run_loadgen(
        &bodies,
        &LoadgenConfig {
            addr: server.addr().to_string(),
            connections: http_workers,
            duration: std::time::Duration::from_millis(1_500),
            ..LoadgenConfig::default()
        },
    );
    assert!(report.sent > 0, "loadgen drove traffic: {report:?}");
    assert_eq!(report.io_errors, 0, "no transport failures: {report:?}");
    assert_eq!(
        report.non_2xx, 0,
        "every reply of the burst must be 2xx: {report:?}"
    );
    let metrics = server.metrics();
    assert_eq!(metrics.requests, report.ok_2xx);
    server.shutdown();
    server.join();
    println!(
        "  {:<44} {:>14.0} req/s   (p50 {} µs, p99 {} µs, {} conn(s))",
        "HTTP serve + loadgen, all 2xx",
        report.req_per_sec,
        report.p50_us,
        report.p99_us,
        http_workers
    );

    let mut out = Report::new(7, "http_serving");
    out.metric("cores", cores as f64)
        .metric("batch_requests", BATCH as f64)
        .metric("net/batch_1worker/median_ns", t1_ns.round())
        .metric("net/batch_1worker/req_per_s", rate(t1_ns).round())
        .metric("net/batch_4workers/median_ns", t4_ns.round())
        .metric("net/batch_4workers/req_per_s", rate(t4_ns).round())
        .metric("net/http_loadgen/req_per_s", report.req_per_sec.round())
        .metric("net/http_loadgen/p50_us", report.p50_us as f64)
        .metric("net/http_loadgen/p99_us", report.p99_us as f64)
        .metric("net/http_loadgen/connections", http_workers as f64)
        .metric("net/http_loadgen/sent", report.sent as f64)
        .metric("net/http_loadgen/ok_2xx", report.ok_2xx as f64)
        .metric("speedup/batch_4workers_vs_1worker", ratio)
        .gate("no_regression_floor_0.9x", ratio >= 0.9)
        .gate("multi_core_2.5x", cores < 4 || ratio >= 2.5)
        .gate(
            "loadgen_all_2xx",
            report.non_2xx == 0 && report.io_errors == 0,
        )
        .gate("bit_identical_to_sequential", true);
    out.write("BENCH_PR7.json");
}

/// The PR8 suite behind `BENCH_PR8.json`: posterior inference under
/// sharp evidence. One conditioned model — a rare cause behind a noisy
/// detector — is answered three ways:
///
/// 1. **Fixed-budget likelihood weighting** (`sample(N)`): hard
///    evidence kills ~94% of prior runs, so the achieved ESS is a small
///    fraction of the budget.
/// 2. **ESS-adaptive sampling** (`sample_until`): states the quality
///    target directly; the driver grows runs in doubling batches until
///    the achieved ESS reaches it.
/// 3. **Metropolis-Hastings** (`mh(kept)`): every kept state carries
///    equal weight, so the nominal ESS equals the kept-state count.
///
/// Correctness against exact enumeration is asserted **before** any
/// timing (generous z-tolerance — this is a smoke gate, not the
/// statistical harness; `tests/inference_backends.rs` is the tight
/// one), and the adaptive run must actually reach its target.
fn bench_pr8() {
    use gdatalog_core::{EssTarget, Session};

    header(
        "BENCH8",
        "posterior inference backends (written to BENCH_PR8.json)",
    );

    // P(Quake) = 0.02; the detector fires at 0.7 given a quake and
    // 0.05 otherwise. Posterior P(Quake | Alarm) = 14/63 ≈ 0.2222,
    // evidence mass P(Alarm) = 0.063.
    let session = Session::from_source(
        "Quake(Flip<0.02>) :- true.
         Trig(Flip<0.7>) :- Quake(1).
         Trig(Flip<0.05>) :- Quake(0).
         Alarm() :- Trig(1).",
        SemanticsMode::Grohe,
    )
    .expect("model compiles");
    let quake = session.program().catalog.require("Quake").expect("Quake");
    let fact = Fact::new(quake, Tuple::from(vec![Value::int(1)]));
    let queries = gdatalog_core::QuerySet::new().marginal(&fact);
    const GIVEN: &str = "Alarm().";
    const LW_RUNS: usize = 40_000;
    const ESS_TARGET: f64 = 2_000.0;
    const MH_KEPT: usize = 20_000;

    let exact = session
        .eval()
        .exact()
        .given(GIVEN)
        .marginal(&fact)
        .expect("exact posterior");

    let check = |label: &str, p: f64, n_eff: f64| {
        let se = (exact * (1.0 - exact) / n_eff.max(1.0)).sqrt();
        let tol = 6.0 * se + 1e-3;
        assert!(
            (p - exact).abs() <= tol,
            "{label}: estimate {p} vs exact {exact} exceeds {tol}"
        );
    };

    // Correctness + achieved statistics first (timing never gates it).
    let lw = session
        .eval()
        .sample(LW_RUNS)
        .seed(0x8EED)
        .given(GIVEN)
        .answer(&queries)
        .expect("lw answers");
    let lw_p = lw.get(0).expect("answer").as_probability().expect("p");
    let lw_ev = lw.evidence();
    check("lw_fixed", lw_p, lw_ev.ess);

    let adaptive = session
        .eval()
        .sample_until(EssTarget::new(ESS_TARGET).max_runs(1 << 18))
        .seed(0x8EED)
        .given(GIVEN)
        .answer(&queries)
        .expect("adaptive answers");
    let ad_p = adaptive
        .get(0)
        .expect("answer")
        .as_probability()
        .expect("p");
    let ad_ev = adaptive.evidence();
    assert!(
        ad_ev.ess >= ESS_TARGET,
        "acceptance: adaptive run reaches its ESS target \
         (achieved {:.1} < {ESS_TARGET})",
        ad_ev.ess
    );
    check("ess_adaptive", ad_p, ad_ev.ess);

    let mh = session
        .eval()
        .mh(MH_KEPT)
        .burn_in(1_000)
        .seed(0xC0DE)
        .given(GIVEN)
        .answer(&queries)
        .expect("mh answers");
    let mh_p = mh.get(0).expect("answer").as_probability().expect("p");
    let mh_ev = mh.evidence();
    let mh_accept = mh_ev.accept_rate.expect("mh reports acceptance");
    // Chain autocorrelation discount, matching the statistical harness.
    check("mh", mh_p, MH_KEPT as f64 / 20.0);

    let lw_ns = median_ns(5, || {
        std::hint::black_box(
            session
                .eval()
                .sample(LW_RUNS)
                .seed(0x8EED)
                .given(GIVEN)
                .answer(&queries)
                .expect("ok"),
        );
    });
    let ad_ns = median_ns(5, || {
        std::hint::black_box(
            session
                .eval()
                .sample_until(EssTarget::new(ESS_TARGET).max_runs(1 << 18))
                .seed(0x8EED)
                .given(GIVEN)
                .answer(&queries)
                .expect("ok"),
        );
    });
    let mh_ns = median_ns(5, || {
        std::hint::black_box(
            session
                .eval()
                .mh(MH_KEPT)
                .burn_in(1_000)
                .seed(0xC0DE)
                .given(GIVEN)
                .answer(&queries)
                .expect("ok"),
        );
    });

    println!("  exact posterior P(Quake | Alarm) = {exact:.6}");
    println!(
        "  {:<26} {:>12.0} ns   ess {:>8.1} / {:>6} runs   p = {:.4}",
        "lw_fixed(40k)", lw_ns, lw_ev.ess, lw_ev.runs, lw_p
    );
    println!(
        "  {:<26} {:>12.0} ns   ess {:>8.1} / {:>6} runs   p = {:.4}",
        "ess_adaptive(target 2k)", ad_ns, ad_ev.ess, ad_ev.runs, ad_p
    );
    println!(
        "  {:<26} {:>12.0} ns   ess {:>8.1} / {:>6} kept   p = {:.4}   accept {:.3}",
        "mh(20k kept)", mh_ns, mh_ev.ess, mh_ev.runs, mh_p, mh_accept
    );

    let mut report = Report::new(8, "inference");
    report
        .metric("exact_posterior", exact)
        .metric("inference/lw_fixed/median_ns", lw_ns.round())
        .metric("inference/lw_fixed/runs", lw_ev.runs as f64)
        .metric("inference/lw_fixed/ess", lw_ev.ess)
        .metric("inference/lw_fixed/estimate", lw_p)
        .metric("inference/ess_adaptive/median_ns", ad_ns.round())
        .metric("inference/ess_adaptive/runs", ad_ev.runs as f64)
        .metric("inference/ess_adaptive/ess", ad_ev.ess)
        .metric("inference/ess_adaptive/ess_target", ESS_TARGET)
        .metric("inference/ess_adaptive/estimate", ad_p)
        .metric("inference/mh/median_ns", mh_ns.round())
        .metric("inference/mh/kept", mh_ev.runs as f64)
        .metric("inference/mh/accept_rate", mh_accept)
        .metric("inference/mh/estimate", mh_p)
        .gate("adaptive_reached_ess_target", ad_ev.ess >= ESS_TARGET)
        .gate("all_backends_within_tolerance_of_exact", true);
    report.write("BENCH_PR8.json");
}

/// The PR9 suite behind `BENCH_PR9.json`: batched Monte-Carlo execution.
/// The BENCH_PR2 workload — a 1M-run streaming marginal over
/// `R(Flip<0.5>) :- true. S(X) :- R(X).` — is driven twice through the
/// Session API: scalar (`batch(1)`) and batched (lane width 64).
/// **Bit-identity is asserted before any timing**: the two marginals must
/// agree bit for bit under the same seed, single- and multi-threaded, and
/// a conditioned pass must agree too. The acceptance gate is ≥2x
/// single-core runs/s for the batched executor over the scalar path, plus
/// a trend gate against the previous `BENCH_PR9.json` when one exists.
fn bench_pr9() {
    use gdatalog_core::Session;
    use gdatalog_data::tuple;

    header(
        "BENCH9",
        "batched Monte-Carlo execution (written to BENCH_PR9.json)",
    );

    let session = Session::from_source("R(Flip<0.5>) :- true. S(X) :- R(X).", SemanticsMode::Grohe)
        .expect("ok");
    let r = session.program().catalog.require("R").expect("declared");
    let fact = Fact::new(r, tuple![1i64]);
    const RUNS: usize = 1_000_000;
    const LANES: usize = 64;

    let run = |batch: usize, threads: usize| -> f64 {
        session
            .eval()
            .sample(RUNS)
            .seed(7)
            .batch(batch)
            .threads(threads)
            .marginal(&fact)
            .expect("runs")
    };

    // Bit-identity before any timing: scalar vs batched, single- and
    // multi-threaded, unconditioned and conditioned.
    let scalar_p = run(1, 1);
    let batched_p = run(LANES, 1);
    assert_eq!(
        scalar_p.to_bits(),
        batched_p.to_bits(),
        "batched marginal must be bit-identical to scalar ({scalar_p} vs {batched_p})"
    );
    assert_eq!(
        run(1, 4).to_bits(),
        run(LANES, 4).to_bits(),
        "bit-identity must hold at 4 workers too"
    );
    let cond = |batch: usize| -> f64 {
        session
            .eval()
            .sample(100_000)
            .seed(7)
            .batch(batch)
            .given("S(1).")
            .marginal(&fact)
            .expect("runs")
    };
    assert_eq!(
        cond(1).to_bits(),
        cond(LANES).to_bits(),
        "conditioned bit-identity must hold"
    );
    println!("  bit-identity: batch({LANES}) == batch(1)  ✓ (1/4 threads, ±evidence)");

    let scalar_ns = median_ns(5, || {
        std::hint::black_box(run(1, 1));
    });
    let batched_ns = median_ns(5, || {
        std::hint::black_box(run(LANES, 1));
    });
    let scalar_rate = RUNS as f64 / (scalar_ns / 1e9);
    let batched_rate = RUNS as f64 / (batched_ns / 1e9);
    let speedup = scalar_ns / batched_ns;
    println!(
        "  {:<44} {:>14.0} runs/s",
        "mc_batch/scalar/1thread", scalar_rate
    );
    println!(
        "  {:<44} {:>14.0} runs/s   ({speedup:.1}x)",
        "mc_batch/batched64/1thread", batched_rate
    );

    let mut report = Report::new(9, "mc_batching");
    check_trend(
        &mut report,
        "BENCH_PR9.json",
        "speedup/batched_vs_scalar",
        speedup,
        0.5,
    );
    report
        .metric("runs", RUNS as f64)
        .metric("lane_batch", LANES as f64)
        .metric("mc_batch/scalar/1thread/runs_per_s", scalar_rate.round())
        .metric(
            "mc_batch/batched64/1thread/runs_per_s",
            batched_rate.round(),
        )
        .metric("marginal", batched_p)
        .gate("bit_identical_to_scalar", true)
        .gate_ratio("speedup/batched_vs_scalar", speedup, 2.0);
    report.write("BENCH_PR9.json");
}

/// bench10 — the learning subsystem (PR 10, `crates/learn`): gates the
/// acceptance property — fit → sample → refit recovers the parameters of
/// every closed-form family within ≈6 asymptotic standard errors, and the
/// latent EM path lands on the exact-enumeration MLE — then times
/// closed-form fitting throughput and the EM iteration rate, writing
/// `BENCH_PR10.json`.
fn bench_pr10() {
    use gdatalog_learn::{fit_program, FitOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt::Write as _;

    header(
        "bench10",
        "learning: fit → sample → refit recovery and throughput",
    );

    let registry = Registry::standard();
    let dataset = |family: &str, params: &[Value], rel: &str, n: usize, seed: u64| -> String {
        let d = registry.get(family).expect("standard family");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut text = String::new();
        for k in 0..n {
            let v = d.sample(params, &mut rng).expect("admissible parameters");
            let _ = writeln!(text, "% run {k}\n{rel}({v}).");
        }
        text
    };
    let refit = |src: &str, data: &str| -> Vec<f64> {
        fit_program(src, data, &FitOptions::default())
            .expect("fit succeeds")
            .report
            .estimates
            .iter()
            .map(|e| e.value.as_f64().expect("numeric estimate"))
            .collect()
    };

    // Gates come before any timing. Each closed-form family round-trips at
    // n = 4000 draws with a fixed seed; tolerances mirror the integration
    // suite (≈6 asymptotic standard errors, order-statistic slack for
    // Uniform, normalized masses for Categorical).
    const N: usize = 4000;
    let nf = N as f64;
    let se = |p: f64| 6.0 * (p * (1.0 - p) / nf).sqrt();
    #[allow(clippy::type_complexity)]
    let families: Vec<(&str, &str, Vec<Value>, &str, Vec<f64>, Vec<f64>, bool)> = vec![
        (
            "normal",
            "Normal",
            vec![Value::real(2.5), Value::real(4.0)],
            "rel Obs(real). Obs(Normal<?mu, ?s2>) :- true.",
            vec![2.5, 4.0],
            vec![6.0 * (4.0f64 / nf).sqrt(), 6.0 * 4.0 * (2.0 / nf).sqrt()],
            false,
        ),
        (
            "lognormal",
            "LogNormal",
            vec![Value::real(0.4), Value::real(0.25)],
            "rel Obs(real). Obs(LogNormal<?, ?>) :- true.",
            vec![0.4, 0.25],
            vec![6.0 * (0.25f64 / nf).sqrt(), 6.0 * 0.25 * (2.0 / nf).sqrt()],
            false,
        ),
        (
            "exponential",
            "Exponential",
            vec![Value::real(1.7)],
            "rel Obs(real). Obs(Exponential<?>) :- true.",
            vec![1.7],
            vec![6.0 * 1.7 / nf.sqrt()],
            false,
        ),
        (
            "uniform",
            "Uniform",
            vec![Value::real(-1.0), Value::real(3.0)],
            "rel Obs(real). Obs(Uniform<?, ?>) :- true.",
            vec![-1.0, 3.0],
            vec![12.0 * 4.0 / nf; 2],
            false,
        ),
        (
            "poisson",
            "Poisson",
            vec![Value::real(3.2)],
            "rel Obs(int). Obs(Poisson<?>) :- true.",
            vec![3.2],
            vec![6.0 * (3.2f64 / nf).sqrt()],
            false,
        ),
        (
            "geometric",
            "Geometric",
            vec![Value::real(0.35)],
            "rel Obs(int). Obs(Geometric<?>) :- true.",
            vec![0.35],
            vec![6.0 * 0.35 * (0.65f64 / nf).sqrt()],
            false,
        ),
        (
            "flip",
            "Flip",
            vec![Value::real(0.3)],
            "rel Coin(int). Coin(Flip<?p>) :- true.",
            vec![0.3],
            vec![se(0.3)],
            false,
        ),
        (
            "binomial",
            "Binomial",
            vec![Value::int(10), Value::real(0.45)],
            "rel Obs(int). Obs(Binomial<10, ?p>) :- true.",
            vec![0.45],
            vec![6.0 * (0.45f64 * 0.55 / (10.0 * nf)).sqrt()],
            false,
        ),
        (
            "categorical",
            "Categorical",
            vec![
                Value::sym("a"),
                Value::real(0.5),
                Value::sym("b"),
                Value::real(0.3),
                Value::sym("c"),
                Value::real(0.2),
            ],
            "rel Obs(symbol). Obs(Categorical<a, ?, b, ?, c, ?>) :- true.",
            vec![0.5, 0.3, 0.2],
            vec![se(0.5), se(0.3), se(0.2)],
            true,
        ),
    ];

    let mut recovered: Vec<(&str, f64)> = Vec::new();
    for (gate, family, params, src, truth, tol, normalize) in &families {
        let rel = if *gate == "flip" { "Coin" } else { "Obs" };
        let data = dataset(family, params, rel, N, 10);
        let mut est = refit(src, &data);
        if *normalize {
            let mass: f64 = est.iter().sum();
            for e in &mut est {
                *e /= mass;
            }
        }
        let worst = est
            .iter()
            .zip(truth.iter().zip(tol))
            .map(|(e, (t, tl))| (e - t).abs() / tl)
            .fold(0.0f64, f64::max);
        assert!(
            worst <= 1.0,
            "recovery/{gate}: estimate outside tolerance (err/tol = {worst:.2})"
        );
        println!("  recovery/{gate:<12} max |est−truth|/tol = {worst:.2}  ✓");
        recovered.push((gate, worst));
    }

    // The latent EM path must land on the exact-enumeration MLE of the
    // two-hop chain: with 7 of 10 blocks observing S(1), invert the
    // forward map P(S=1) = 0.2 + 0.7·p.
    let chain = "rel S(int).\nR(Flip<?p>) :- true.\nS(Flip<0.9>) :- R(1).\nS(Flip<0.2>) :- R(0).";
    let mut em_data = String::new();
    for (i, s) in [1, 1, 1, 0, 1, 1, 0, 1, 1, 0].iter().enumerate() {
        let _ = writeln!(em_data, "% run {i}\nS({s}).");
    }
    let p_mle = (0.7 - 0.2) / 0.7;
    let em_opts = FitOptions {
        em_iters: 500,
        tol: 1e-10,
        ..FitOptions::default()
    };
    let em_fit = fit_program(chain, &em_data, &em_opts).expect("EM fit succeeds");
    let p_hat = em_fit.report.estimates[0].value.as_f64().expect("real p");
    assert!(
        (p_hat - p_mle).abs() < 1e-3,
        "EM p-hat {p_hat} vs exact MLE {p_mle}"
    );
    assert!(em_fit.report.em && em_fit.report.converged, "EM converges");
    println!("  em/latent_chain  p-hat = {p_hat:.6} vs exact MLE {p_mle:.6}  ✓");

    // Timing, now that the gates hold: end-to-end closed-form fit
    // throughput (dataset parse + tuple matching + weighted MLE) on a
    // 20k-fact Normal dataset, and the EM iteration rate on the chain.
    const FIT_FACTS: usize = 20_000;
    let big = dataset(
        "Normal",
        &[Value::real(2.5), Value::real(4.0)],
        "Obs",
        FIT_FACTS,
        11,
    );
    let normal_src = "rel Obs(real). Obs(Normal<?mu, ?s2>) :- true.";
    let fit_ns = median_ns(5, || {
        std::hint::black_box(fit_program(normal_src, &big, &FitOptions::default()).expect("fit"));
    });
    let facts_per_s = FIT_FACTS as f64 / (fit_ns / 1e9);

    let em_iters = em_fit.report.iterations as f64;
    let em_ns = median_ns(5, || {
        std::hint::black_box(fit_program(chain, &em_data, &em_opts).expect("EM fit"));
    });
    let em_iters_per_s = em_iters / (em_ns / 1e9);

    println!(
        "  {:<44} {:>14.0} facts/s",
        "fit/closed_form/normal_20k", facts_per_s
    );
    println!(
        "  {:<44} {:>14.0} iters/s",
        "fit/em/latent_chain", em_iters_per_s
    );

    let mut report = Report::new(10, "learning");
    check_trend(
        &mut report,
        "BENCH_PR10.json",
        "fit/closed_form/facts_per_s",
        facts_per_s,
        0.5,
    );
    report
        .metric("recovery/families", families.len() as f64)
        .metric("recovery/n_draws", N as f64)
        .metric("fit/closed_form/facts_per_s", facts_per_s.round())
        .metric("fit/em/iterations_per_s", em_iters_per_s.round())
        .metric("fit/em/p_hat", p_hat)
        .gate("em_matches_exact_mle", (p_hat - p_mle).abs() < 1e-3)
        .gate("em_converged", em_fit.report.converged);
    for (gate, worst) in &recovered {
        report.gate(&format!("recovery/{gate}"), *worst <= 1.0);
    }
    report.write("BENCH_PR10.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_all = args.is_empty();
    let want = |id: &str| run_all || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    let experiments: Vec<(&str, fn())> = vec![
        ("e1", e1 as fn()),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("bench", bench_pr1),
        ("bench2", bench_pr2),
        ("bench3", bench_pr3),
        ("bench5", bench_pr5),
        ("bench7", bench_pr7),
        ("bench8", bench_pr8),
        ("bench9", bench_pr9),
        ("bench10", bench_pr10),
    ];
    let mut ran = 0;
    for (id, f) in &experiments {
        if want(id) {
            f();
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!(
            "unknown experiment id; available: e1..e8, bench, bench2, bench3, bench5, bench7, \
             bench8, bench9, bench10"
        );
        std::process::exit(2);
    }
    println!("\nAll requested experiments completed.");
}
