//! Shared program corpus for the benchmark suite and the experiment
//! harness: the paper's example programs plus parameterized generators for
//! scaling studies.

use gdatalog_core::Engine;
use gdatalog_lang::SemanticsMode;
use std::fmt::Write as _;

pub mod legacy;
pub mod report;

/// Example 3.4 of the paper (earthquake/burglary/alarm), parameterized by
/// the number of houses in the first city.
pub fn burglary_program(houses: usize) -> String {
    let mut src = String::from(
        r#"
        rel City(symbol, real) input.
        rel House(symbol, symbol) input.
        rel Business(symbol, symbol) input.
        City(gotham, 0.3).
        City(metropolis, 0.1).
        Business(b1, metropolis).
        Earthquake(C, Flip<0.1>) :- City(C, R).
        Unit(H, C) :- House(H, C).
        Unit(B, C) :- Business(B, C).
        Burglary(X, C, Flip<R>) :- Unit(X, C), City(C, R).
        Trig(X, Flip<0.6>) :- Unit(X, C), Earthquake(C, 1).
        Trig(X, Flip<0.9>) :- Burglary(X, C, 1).
        Alarm(X) :- Trig(X, 1).
    "#,
    );
    for h in 0..houses {
        let _ = writeln!(src, "House(h{h}, gotham).");
    }
    src
}

/// `k` independent coins: the chase tree has exactly `2^k` leaves — the
/// scaling workload for exact enumeration.
pub fn coins_program(k: usize) -> String {
    let mut src = String::new();
    for i in 0..k {
        let _ = writeln!(src, "C{i}(Flip<0.5>) :- true.");
    }
    src
}

/// Example 3.5 of the paper (heights), parameterized by the number of
/// persons per country.
pub fn heights_program(per_country: usize) -> String {
    let mut src = String::from(
        r#"
        rel PCountry(symbol, symbol) input.
        rel CMoments(symbol, real, real) input.
        CMoments(nl, 183.8, 49.0).
        CMoments(pe, 165.2, 36.0).
        PHeight(P, Normal<Mu, S2>) :- PCountry(P, C), CMoments(C, Mu, S2).
    "#,
    );
    for i in 0..per_country {
        let _ = writeln!(src, "PCountry(nl{i}, nl).");
        let _ = writeln!(src, "PCountry(pe{i}, pe).");
    }
    src
}

/// The §6.3 tagged geometric chain (discrete, not weakly acyclic,
/// terminates almost surely).
pub fn geometric_chain() -> &'static str {
    "G(0).\nG(Geometric<0.5 | X>) :- G(X).\n"
}

/// The §6.3 continuous chain (almost surely non-terminating).
pub fn normal_chain() -> &'static str {
    "C(0.0).\nC(Normal<V, 1.0>) :- C(V).\n"
}

/// The serving-layer workload model: a library of `k` independent
/// event detectors (`In_i → Ev_i → Out_i`). Compilation and planning
/// scale with `k` while any single request's evidence activates only one
/// detector — the shape where caching parse+plan pays off most, and a
/// realistic stand-in for a production model serving many tenants.
pub fn serving_library_program(k: usize) -> String {
    let mut src = String::new();
    for i in 0..k {
        let _ = writeln!(src, "rel In{i}(symbol, real) input.");
        let _ = writeln!(src, "Ev{i}(X, Flip<R>) :- In{i}(X, R).");
        let _ = writeln!(src, "Out{i}(X) :- Ev{i}(X, 1).");
    }
    src
}

/// Compiles a program under the Grohe semantics, panicking on errors
/// (bench corpus programs are known-good).
pub fn engine_of(src: &str) -> Engine {
    Engine::from_source(src, SemanticsMode::Grohe).expect("corpus program compiles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_programs_compile() {
        engine_of(&burglary_program(3));
        engine_of(&coins_program(4));
        engine_of(&heights_program(5));
        engine_of(geometric_chain());
        engine_of(normal_chain());
        engine_of(&serving_library_program(4));
    }
}
