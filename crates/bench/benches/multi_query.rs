//! P5 — single-pass multi-query execution: `Evaluation::answer` over a
//! `QuerySet` of K statistics (one backend pass fanned out to K sinks)
//! against the pre-PR5 workflow of K independent terminal calls (K full
//! passes), on the serving_library_program corpus.
//!
//! The win scales with K because the chase/enumeration/sampling pass
//! dominates and the per-sink fold is O(observation): 1 pass × K sinks
//! vs K passes × 1 sink.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdatalog_bench::serving_library_program;
use gdatalog_core::{QuerySet, Session};
use gdatalog_lang::SemanticsMode;
use std::hint::black_box;

const DETECTORS: usize = 16;

fn session_with_inputs(k: usize) -> Session {
    let mut session =
        Session::from_source(&serving_library_program(DETECTORS), SemanticsMode::Grohe)
            .expect("corpus compiles");
    for d in 0..k {
        session
            .insert_facts_text(&format!("In{d}(c{d}, 0.3)."))
            .expect("input facts");
    }
    session
}

/// The K-statistics dashboard: marginals and expectations round-robin
/// over the active detectors.
fn query_sets(session: &Session, k: usize) -> (QuerySet, Vec<QuerySet>) {
    let catalog = &session.program().catalog;
    let mut bundle = QuerySet::new();
    let mut singles = Vec::with_capacity(k);
    for d in 0..k {
        let out = catalog.require(&format!("Out{d}")).expect("declared");
        let ev = catalog.require(&format!("Ev{d}")).expect("declared");
        let query = match d % 4 {
            0 | 1 => gdatalog_core::QueryIr::Marginals { rel: out },
            2 => gdatalog_core::QueryIr::Expectation {
                query: gdatalog_pdb::Query::Rel(out),
                agg: gdatalog_pdb::AggFun::Count,
            },
            _ => gdatalog_core::QueryIr::Histogram {
                rel: ev,
                col: 1,
                lo: 0.0,
                hi: 2.0,
                bins: 2,
            },
        };
        bundle.push(query.clone());
        let mut single = QuerySet::new();
        single.push(query);
        singles.push(single);
    }
    (bundle, singles)
}

fn bench_one_pass_vs_k_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_query");
    group.sample_size(10);
    for k in [4usize, 8] {
        let session = session_with_inputs(k);
        let (bundle, singles) = query_sets(&session, k);

        group.bench_with_input(BenchmarkId::new("exact_one_pass", k), &k, |b, _| {
            b.iter(|| black_box(session.eval().exact().answer(&bundle).expect("answers")))
        });
        group.bench_with_input(BenchmarkId::new("exact_k_passes", k), &k, |b, _| {
            b.iter(|| {
                for single in &singles {
                    black_box(session.eval().exact().answer(single).expect("answers"));
                }
            })
        });

        group.bench_with_input(BenchmarkId::new("mc2000_one_pass", k), &k, |b, _| {
            b.iter(|| {
                black_box(
                    session
                        .eval()
                        .sample(2_000)
                        .seed(7)
                        .answer(&bundle)
                        .expect("answers"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("mc2000_k_passes", k), &k, |b, _| {
            b.iter(|| {
                for single in &singles {
                    black_box(
                        session
                            .eval()
                            .sample(2_000)
                            .seed(7)
                            .answer(single)
                            .expect("answers"),
                    );
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_one_pass_vs_k_passes);
criterion_main!(benches);
