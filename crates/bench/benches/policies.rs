//! P5 — chase-policy overhead: exact enumeration of a fixed program under
//! every policy (they compute the same table by Thm. 6.1; this measures
//! only the selection overhead and the traversal order's effect on
//! intermediate state).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdatalog_bench::burglary_program;
use gdatalog_core::{Engine, PolicyKind};
use gdatalog_lang::SemanticsMode;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let engine = Engine::from_source(&burglary_program(2), SemanticsMode::Grohe).expect("ok");
    let mut group = c.benchmark_group("exact_by_policy");
    group.sample_size(10);
    for kind in [
        PolicyKind::Canonical,
        PolicyKind::Reverse,
        PolicyKind::RoundRobin,
        PolicyKind::Random { seed: 1 },
        PolicyKind::DeterministicFirst,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    black_box(
                        engine
                            .eval()
                            .exact()
                            .policy(kind)
                            .keep_aux(true)
                            .worlds()
                            .expect("ok"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
