//! P9 — batched Monte-Carlo execution: runs per second as a function of
//! the lane-batch size (`Evaluation::batch`), swept over the three
//! workload shapes that stress the lane-group executor differently:
//!
//! * **discrete** — one coin plus a deterministic rule: lane groups split
//!   once into two and the whole deterministic tail is shared;
//! * **continuous** — the heights model (Ex. 3.5): every `Normal` draw is
//!   lane-distinct, so groups degenerate to singletons fast and the win
//!   comes from the shared deterministic prefix and batch sampling;
//! * **conditioned** — the quake/alarm diagnosis posterior: the batch
//!   path also amortizes the per-world likelihood weighting (memoized per
//!   shared terminal world).
//!
//! `batch = 1` is the scalar baseline; results are bit-identical at every
//! size, so this sweep is pure throughput. It chose the default of 64.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdatalog_bench::heights_program;
use gdatalog_core::{QuerySet, Session};
use gdatalog_data::{tuple, Fact};
use gdatalog_lang::SemanticsMode;
use gdatalog_pdb::{AggFun, Query};
use std::hint::black_box;

const BATCHES: [usize; 4] = [1, 8, 64, 256];
const RUNS: usize = 2_048;

fn bench_discrete(c: &mut Criterion) {
    let session = Session::from_source("R(Flip<0.5>) :- true. S(X) :- R(X).", SemanticsMode::Grohe)
        .expect("ok");
    let r = session.program().catalog.require("R").expect("declared");
    let fact = Fact::new(r, tuple![1i64]);
    let mut group = c.benchmark_group("mc_batch/discrete");
    group.sample_size(10);
    for batch in BATCHES {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                black_box(
                    session
                        .eval()
                        .sample(RUNS)
                        .seed(1)
                        .batch(batch)
                        .marginal(&fact)
                        .expect("runs"),
                )
            })
        });
    }
    group.finish();
}

fn bench_continuous(c: &mut Criterion) {
    let session = Session::from_source(&heights_program(8), SemanticsMode::Grohe).expect("ok");
    let rel = session
        .program()
        .catalog
        .require("PHeight")
        .expect("declared");
    let queries = QuerySet::new().expectation(&Query::Rel(rel), AggFun::Count);
    let mut group = c.benchmark_group("mc_batch/continuous");
    group.sample_size(10);
    for batch in BATCHES {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                black_box(
                    session
                        .eval()
                        .sample(RUNS)
                        .seed(1)
                        .batch(batch)
                        .answer(&queries)
                        .expect("runs"),
                )
            })
        });
    }
    group.finish();
}

fn bench_conditioned(c: &mut Criterion) {
    let session = Session::from_source(
        "Quake(Flip<0.2>) :- true.
         Trig(Flip<0.7>) :- Quake(1).
         Trig(Flip<0.1>) :- Quake(0).
         Alarm() :- Trig(1).",
        SemanticsMode::Grohe,
    )
    .expect("ok");
    let quake = session
        .program()
        .catalog
        .require("Quake")
        .expect("declared");
    let fact = Fact::new(quake, tuple![1i64]);
    let mut group = c.benchmark_group("mc_batch/conditioned");
    group.sample_size(10);
    for batch in BATCHES {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                black_box(
                    session
                        .eval()
                        .sample(RUNS)
                        .seed(1)
                        .batch(batch)
                        .given("Alarm().")
                        .marginal(&fact)
                        .expect("runs"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_discrete, bench_continuous, bench_conditioned);
criterion_main!(benches);
