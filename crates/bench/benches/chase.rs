//! P2 — chase throughput: Monte-Carlo runs per second on the burglary
//! network (Ex. 3.4), comparing the sequential chase, the parallel chase,
//! and the saturation-accelerated chase (the DESIGN.md ablation for
//! "saturate deterministic rules with the semi-naive engine").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdatalog_bench::burglary_program;
use gdatalog_core::{ChaseVariant, Engine, PolicyKind};
use gdatalog_lang::SemanticsMode;
use std::hint::black_box;

fn bench_chase_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_mc");
    group.sample_size(10);
    for houses in [2usize, 4, 8] {
        let engine =
            Engine::from_source(&burglary_program(houses), SemanticsMode::Grohe).expect("ok");
        for (label, variant) in [
            (
                "sequential",
                ChaseVariant::Sequential(PolicyKind::Canonical),
            ),
            ("parallel", ChaseVariant::Parallel),
            ("saturating", ChaseVariant::Saturating),
        ] {
            group.bench_with_input(BenchmarkId::new(label, houses), &houses, |b, _| {
                b.iter(|| {
                    black_box(
                        engine
                            .eval()
                            .sample(50)
                            .seed(1)
                            .variant(variant)
                            .max_depth(100_000)
                            .pdb()
                            .expect("runs"),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_single_run_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_single_run");
    for houses in [2usize, 8, 16] {
        let engine =
            Engine::from_source(&burglary_program(houses), SemanticsMode::Grohe).expect("ok");
        group.bench_with_input(BenchmarkId::from_parameter(houses), &houses, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(
                    engine
                        .eval()
                        .policy(PolicyKind::Canonical)
                        .seed(seed)
                        .max_depth(100_000)
                        .trace()
                        .expect("run"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chase_variants, bench_single_run_scaling);
criterion_main!(benches);
