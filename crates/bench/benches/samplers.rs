//! P1 — distribution sampler throughput: nanoseconds per sample for every
//! member of the standard family Ψ.

use criterion::{criterion_group, criterion_main, Criterion};
use gdatalog_data::Value;
use gdatalog_dist::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_samplers(c: &mut Criterion) {
    let registry = Registry::standard();
    let cases: Vec<(&str, Vec<Value>)> = vec![
        ("Flip", vec![Value::real(0.3)]),
        (
            "Categorical",
            vec![
                Value::sym("a"),
                Value::real(1.0),
                Value::sym("b"),
                Value::real(2.0),
            ],
        ),
        ("UniformInt", vec![Value::int(0), Value::int(99)]),
        ("Binomial", vec![Value::int(40), Value::real(0.3)]),
        ("Geometric", vec![Value::real(0.25)]),
        ("Poisson(small λ)", vec![Value::real(3.0)]),
        ("Poisson(large λ)", vec![Value::real(80.0)]),
        ("Uniform", vec![Value::real(0.0), Value::real(1.0)]),
        ("Normal", vec![Value::real(0.0), Value::real(1.0)]),
        ("Exponential", vec![Value::real(1.5)]),
        ("Gamma(k≥1)", vec![Value::real(3.0), Value::real(1.0)]),
        ("Gamma(k<1)", vec![Value::real(0.4), Value::real(1.0)]),
        ("Beta", vec![Value::real(2.0), Value::real(5.0)]),
        ("LogNormal", vec![Value::real(0.0), Value::real(0.25)]),
        ("Laplace", vec![Value::real(0.0), Value::real(1.0)]),
    ];
    let mut group = c.benchmark_group("samplers");
    for (label, params) in cases {
        let dist_name = label.split('(').next().expect("nonempty label").trim();
        let dist = registry.get(dist_name).expect("registered").clone();
        let mut rng = StdRng::seed_from_u64(1);
        group.bench_function(label, |b| {
            b.iter(|| black_box(dist.sample(&params, &mut rng).expect("valid params")))
        });
    }
    group.finish();
}

fn bench_densities(c: &mut Criterion) {
    let registry = Registry::standard();
    let mut group = c.benchmark_group("densities");
    let normal = registry.get("Normal").expect("registered").clone();
    let params = [Value::real(0.0), Value::real(1.0)];
    let x = Value::real(0.7);
    group.bench_function("Normal pdf", |b| {
        b.iter(|| black_box(normal.density(&params, &x).expect("ok")))
    });
    group.bench_function("Normal cdf", |b| {
        b.iter(|| black_box(normal.cdf(&params, 0.7).expect("ok")))
    });
    let poisson = registry.get("Poisson").expect("registered").clone();
    let lp = [Value::real(12.0)];
    group.bench_function("Poisson pmf", |b| {
        b.iter(|| black_box(poisson.density(&lp, &Value::int(9)).expect("ok")))
    });
    group.finish();
}

criterion_group!(benches, bench_samplers, bench_densities);
criterion_main!(benches);
