//! P4 — Datalog substrate: naive vs semi-naive fixpoints on transitive
//! closure, plus the step-by-step chase as the slow baseline the
//! saturation ablation replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdatalog_core::{Engine, PolicyKind};
use gdatalog_data::{tuple, Instance, RelId};
use gdatalog_datalog::{
    fixpoint_naive, fixpoint_seminaive, Atom, DatalogProgram, DatalogRule, Term,
};
use gdatalog_lang::SemanticsMode;
use std::fmt::Write as _;
use std::hint::black_box;

fn tc_program() -> DatalogProgram {
    let edge = RelId(0);
    let tc = RelId(1);
    DatalogProgram::new(vec![
        DatalogRule::new(
            Atom::new(tc, vec![Term::Var(0), Term::Var(1)]),
            vec![Atom::new(edge, vec![Term::Var(0), Term::Var(1)])],
            2,
        )
        .expect("safe"),
        DatalogRule::new(
            Atom::new(tc, vec![Term::Var(0), Term::Var(2)]),
            vec![
                Atom::new(tc, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(edge, vec![Term::Var(1), Term::Var(2)]),
            ],
            3,
        )
        .expect("safe"),
    ])
}

fn chain(n: i64) -> Instance {
    let mut d = Instance::new();
    for i in 0..n {
        d.insert(RelId(0), tuple![i, i + 1]);
    }
    d
}

fn bench_fixpoints(c: &mut Criterion) {
    let program = tc_program();
    let mut group = c.benchmark_group("datalog_tc");
    group.sample_size(10);
    for n in [32i64, 64, 128] {
        let input = chain(n);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(fixpoint_naive(&program, &input)))
        });
        group.bench_with_input(BenchmarkId::new("seminaive", n), &n, |b, _| {
            b.iter(|| black_box(fixpoint_seminaive(&program, &input)))
        });
    }
    group.finish();
}

/// The same transitive closure expressed as a (deterministic) GDatalog
/// program, run by the one-fact-per-step chase: quantifies what the
/// semi-naive saturation ablation buys.
fn bench_chase_as_datalog(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog_via_chase");
    group.sample_size(10);
    for n in [16i64, 32] {
        let mut src = String::from("T(X, Y) :- E(X, Y).\nT(X, Z) :- T(X, Y), E(Y, Z).\n");
        for i in 0..n {
            let _ = writeln!(src, "E({i}, {}).", i + 1);
        }
        let engine = Engine::from_source(&src, SemanticsMode::Grohe).expect("ok");
        group.bench_with_input(BenchmarkId::new("stepwise", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    engine
                        .eval()
                        .policy(PolicyKind::Canonical)
                        .seed(0)
                        .max_depth(1_000_000)
                        .trace()
                        .expect("run"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixpoints, bench_chase_as_datalog);
criterion_main!(benches);
