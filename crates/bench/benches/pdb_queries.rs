//! P6 — query evaluation on (sub-)probabilistic databases: relational
//! algebra and aggregates applied per world (Fact 2.6), plus marginal and
//! counting-event probabilities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdatalog_bench::burglary_program;
use gdatalog_core::Engine;
use gdatalog_data::Value;
use gdatalog_lang::SemanticsMode;
use gdatalog_pdb::{eval_query_worlds, AggFun, ColPred, Event, FactSet, Query};
use std::hint::black_box;

fn bench_pdb_queries(c: &mut Criterion) {
    let engine = Engine::from_source(&burglary_program(3), SemanticsMode::Grohe).expect("ok");
    let worlds = engine.eval().exact().worlds().expect("discrete");
    let alarm = engine.program().catalog.require("Alarm").expect("declared");
    let trig = engine.program().catalog.require("Trig").expect("declared");

    let mut group = c.benchmark_group("pdb_queries");
    group.throughput(criterion::Throughput::Elements(worlds.len() as u64));

    group.bench_function("marginal", |b| {
        let fact =
            gdatalog_data::Fact::new(alarm, gdatalog_data::Tuple::from(vec![Value::sym("h0")]));
        b.iter(|| black_box(worlds.marginal(&fact)))
    });

    group.bench_function("counting_event", |b| {
        let ev = Event::count_exactly(FactSet::whole_relation(alarm), 2);
        b.iter(|| black_box(worlds.probability(|d| ev.eval(d))))
    });

    group.bench_function("select_project", |b| {
        let q = Query::Rel(trig)
            .select(vec![(1, ColPred::Eq(Value::int(1)))])
            .project(vec![0]);
        b.iter(|| black_box(eval_query_worlds(&q, &worlds)))
    });

    group.bench_function("aggregate_count", |b| {
        let q = Query::Rel(trig).aggregate(vec![], AggFun::Count, 0);
        b.iter(|| black_box(eval_query_worlds(&q, &worlds)))
    });

    group.bench_with_input(
        BenchmarkId::new("projection", worlds.len()),
        &(),
        |b, ()| b.iter(|| black_box(worlds.project_relations(|r| r == alarm))),
    );
    group.finish();
}

criterion_group!(benches, bench_pdb_queries);
criterion_main!(benches);
