//! P3 — exact enumeration scaling: world-table construction time for the
//! `k`-coins program (chase tree with 2^k leaves), sequential vs parallel
//! enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdatalog_bench::{burglary_program, coins_program};
use gdatalog_core::Engine;
use gdatalog_lang::SemanticsMode;
use std::hint::black_box;

fn bench_coins(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_coins");
    group.sample_size(10);
    for k in [4usize, 6, 8] {
        let engine = Engine::from_source(&coins_program(k), SemanticsMode::Grohe).expect("ok");
        group.bench_with_input(BenchmarkId::new("sequential", k), &k, |b, _| {
            b.iter(|| black_box(engine.eval().exact().worlds().expect("ok")))
        });
        group.bench_with_input(BenchmarkId::new("parallel", k), &k, |b, _| {
            b.iter(|| black_box(engine.eval().exact_parallel().worlds().expect("ok")))
        });
    }
    group.finish();
}

fn bench_burglary_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_burglary");
    group.sample_size(10);
    for houses in [1usize, 2, 3] {
        let engine =
            Engine::from_source(&burglary_program(houses), SemanticsMode::Grohe).expect("ok");
        group.bench_with_input(BenchmarkId::from_parameter(houses), &houses, |b, _| {
            b.iter(|| black_box(engine.eval().exact().worlds().expect("ok")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coins, bench_burglary_exact);
criterion_main!(benches);
