//! P3 — the serving layer: cached + pooled + batched request execution
//! against the naive per-request baseline that compiles the program anew
//! for every query (the pre-PR3 workflow of every caller).
//!
//! The batch is the workload of ISSUE 3: many independent marginal
//! queries against **one** model, each with its own evidence. The served
//! path compiles and plans once (ProgramCache), reuses warm sessions
//! (SessionPool), and schedules requests across workers (BatchExecutor);
//! the naive path pays parse+validate+translate+plan per request.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gdatalog_bench::serving_library_program;
use gdatalog_core::Session;
use gdatalog_lang::SemanticsMode;
use gdatalog_serve::{execute_on, Request, Server};
use std::hint::black_box;

fn requests(n: usize, detectors: usize) -> Vec<Request> {
    (0..n)
        .map(|i| {
            Request::marginal(format!("Out{}(c{i})", i % detectors))
                .evidence(format!("In{}(c{i}, 0.{}).", i % detectors, 1 + i % 8))
                .exact()
        })
        .collect()
}

fn bench_batch_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    let model = serving_library_program(16);
    for n in [16usize, 64] {
        let reqs = requests(n, 16);
        group.bench_with_input(
            BenchmarkId::new("naive_compile_per_request", n),
            &n,
            |b, _| {
                b.iter(|| {
                    for req in &reqs {
                        // The pre-serving workflow: compile + plan +
                        // evaluate, nothing amortized.
                        let mut session =
                            Session::from_source(&model, SemanticsMode::Grohe).expect("compiles");
                        black_box(execute_on(&mut session, req).expect("evaluates"));
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("server_batch_1thread", n), &n, |b, _| {
            let server = Server::from_source(&model, SemanticsMode::Grohe).expect("compiles");
            b.iter(|| black_box(server.batch(&reqs)))
        });
        group.bench_with_input(BenchmarkId::new("server_batch_4threads", n), &n, |b, _| {
            let server = Server::from_source(&model, SemanticsMode::Grohe)
                .expect("compiles")
                .threads(4);
            b.iter(|| black_box(server.batch(&reqs)))
        });
    }
    group.finish();
}

fn bench_cache_and_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_components");
    let model = serving_library_program(16);
    group.bench_function("program_cache_miss", |b| {
        b.iter(|| {
            let cache = gdatalog_serve::ProgramCache::new();
            black_box(
                cache
                    .get_or_compile(&model, SemanticsMode::Grohe)
                    .expect("compiles"),
            )
        })
    });
    group.bench_function("program_cache_hit", |b| {
        let cache = gdatalog_serve::ProgramCache::new();
        cache
            .get_or_compile(&model, SemanticsMode::Grohe)
            .expect("compiles");
        b.iter(|| {
            black_box(
                cache
                    .get_or_compile(&model, SemanticsMode::Grohe)
                    .expect("hit"),
            )
        })
    });
    group.bench_function("pool_checkout_return", |b| {
        let cache = gdatalog_serve::ProgramCache::new();
        let entry = cache
            .get_or_compile(&model, SemanticsMode::Grohe)
            .expect("compiles");
        let pool = gdatalog_serve::SessionPool::new(entry);
        b.iter(|| {
            let mut session = pool.checkout();
            session.insert_facts_text("In0(x, 0.5).").expect("parses");
            black_box(session.facts().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batch_vs_naive, bench_cache_and_pool);
criterion_main!(benches);
