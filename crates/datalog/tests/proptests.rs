//! Property test: naive and semi-naive evaluation compute the same least
//! fixpoint on randomly generated positive Datalog programs and inputs.

use proptest::prelude::*;

use gdatalog_data::{Instance, RelId, Tuple, Value};
use gdatalog_datalog::{
    fixpoint_naive, fixpoint_seminaive, Atom, DatalogProgram, DatalogRule, Term,
};

const N_RELS: u32 = 4;
const ARITY: usize = 2;
const N_VARS: usize = 3;

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..N_VARS).prop_map(Term::Var),
        (0..4i64).prop_map(|c| Term::Const(Value::int(c))),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (0..N_RELS, proptest::collection::vec(arb_term(), ARITY))
        .prop_map(|(r, args)| Atom::new(RelId(r), args))
}

/// Generates a *safe* rule by post-processing: head variables that do not
/// occur in the body are replaced by the constant 0.
fn arb_rule() -> impl Strategy<Value = DatalogRule> {
    (arb_atom(), proptest::collection::vec(arb_atom(), 1..3)).prop_map(|(mut head, body)| {
        let mut in_body = [false; N_VARS];
        for atom in &body {
            for v in atom.vars() {
                in_body[v] = true;
            }
        }
        for t in &mut head.args {
            if let Term::Var(v) = t {
                if !in_body[*v] {
                    *t = Term::Const(Value::int(0));
                }
            }
        }
        DatalogRule::new(head, body, N_VARS).expect("post-processed rule is safe")
    })
}

fn arb_program() -> impl Strategy<Value = DatalogProgram> {
    proptest::collection::vec(arb_rule(), 1..5).prop_map(DatalogProgram::new)
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    proptest::collection::vec(
        (0..N_RELS, proptest::collection::vec(0..4i64, ARITY)),
        0..12,
    )
    .prop_map(|facts| {
        let mut d = Instance::new();
        for (r, vals) in facts {
            d.insert(
                RelId(r),
                Tuple::from(vals.into_iter().map(Value::int).collect::<Vec<_>>()),
            );
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn naive_equals_seminaive(program in arb_program(), input in arb_instance()) {
        let (a, _) = fixpoint_naive(&program, &input);
        let (b, _) = fixpoint_seminaive(&program, &input);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fixpoint_is_a_fixpoint(program in arb_program(), input in arb_instance()) {
        let (fixed, _) = fixpoint_seminaive(&program, &input);
        // Re-running from the fixpoint derives nothing new.
        let (again, stats) = fixpoint_seminaive(&program, &fixed);
        prop_assert_eq!(&fixed, &again);
        prop_assert_eq!(stats.derived_facts, 0);
        // And the input is contained in the fixpoint.
        prop_assert!(input.is_subset_of(&fixed));
    }

    #[test]
    fn fixpoint_is_monotone(program in arb_program(), input in arb_instance(), extra in arb_instance()) {
        let bigger = input.union(&extra);
        let (small, _) = fixpoint_seminaive(&program, &input);
        let (large, _) = fixpoint_seminaive(&program, &bigger);
        prop_assert!(small.is_subset_of(&large));
    }
}
