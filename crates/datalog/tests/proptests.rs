//! Property tests for the Datalog substrate:
//!
//! * naive, semi-naive (incremental indexes) and semi-naive (rebuilt
//!   indexes) evaluation compute the same least fixpoint on randomly
//!   generated positive programs and inputs;
//! * incrementally absorbed indexes answer every probe exactly like
//!   indexes rebuilt from scratch over the final instance;
//! * incremental fixpoint *continuation* from a delta agrees with a
//!   from-scratch fixpoint over the grown input.

use proptest::prelude::*;

use gdatalog_data::{Instance, RelId, Tuple, Value};
use gdatalog_datalog::{
    fixpoint_naive, fixpoint_seminaive, fixpoint_seminaive_rebuild, hash_key, Atom, DatalogProgram,
    DatalogRule, IndexSpecs, InstanceIndex, PlannedProgram, Term,
};

const N_RELS: u32 = 4;
const ARITY: usize = 2;
const N_VARS: usize = 3;

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..N_VARS).prop_map(Term::Var),
        (0..4i64).prop_map(|c| Term::Const(Value::int(c))),
    ]
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (0..N_RELS, proptest::collection::vec(arb_term(), ARITY))
        .prop_map(|(r, args)| Atom::new(RelId(r), args))
}

/// Generates a *safe* rule by post-processing: head variables that do not
/// occur in the body are replaced by the constant 0.
fn arb_rule() -> impl Strategy<Value = DatalogRule> {
    (arb_atom(), proptest::collection::vec(arb_atom(), 1..3)).prop_map(|(mut head, body)| {
        let mut in_body = [false; N_VARS];
        for atom in &body {
            for v in atom.vars() {
                in_body[v] = true;
            }
        }
        for t in &mut head.args {
            if let Term::Var(v) = t {
                if !in_body[*v] {
                    *t = Term::Const(Value::int(0));
                }
            }
        }
        DatalogRule::new(head, body, N_VARS).expect("post-processed rule is safe")
    })
}

fn arb_program() -> impl Strategy<Value = DatalogProgram> {
    proptest::collection::vec(arb_rule(), 1..5).prop_map(DatalogProgram::new)
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    proptest::collection::vec(
        (0..N_RELS, proptest::collection::vec(0..4i64, ARITY)),
        0..12,
    )
    .prop_map(|facts| {
        let mut d = Instance::new();
        for (r, vals) in facts {
            d.insert(
                RelId(r),
                Tuple::from(vals.into_iter().map(Value::int).collect::<Vec<_>>()),
            );
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn naive_equals_seminaive(program in arb_program(), input in arb_instance()) {
        let (a, _) = fixpoint_naive(&program, &input);
        let (b, _) = fixpoint_seminaive(&program, &input);
        prop_assert_eq!(a, b);
    }

    /// The incrementally indexed semi-naive path and the old
    /// rebuild-per-round path compute identical fixpoints (and agree with
    /// the naive oracle).
    #[test]
    fn incremental_equals_rebuilt_fixpoint(program in arb_program(), input in arb_instance()) {
        let (incremental, si) = fixpoint_seminaive(&program, &input);
        let (rebuilt, sr) = fixpoint_seminaive_rebuild(&program, &input);
        prop_assert_eq!(&incremental, &rebuilt);
        prop_assert_eq!(si.derived_facts, sr.derived_facts);
        let (oracle, _) = fixpoint_naive(&program, &input);
        prop_assert_eq!(incremental, oracle);
    }

    /// An index maintained by absorbing inserts answers every probe
    /// exactly like an index rebuilt from the final instance.
    #[test]
    fn incremental_index_equals_rebuilt_index(
        facts in proptest::collection::vec(
            (0..N_RELS, proptest::collection::vec(0..4i64, ARITY)),
            0..24,
        ),
    ) {
        let mut specs = IndexSpecs::new();
        let single_col = [
            specs.intern(RelId(0), &[0]),
            specs.intern(RelId(1), &[1]),
        ];
        let both_cols = specs.intern(RelId(2), &[0, 1]);
        let mut instance = Instance::new();
        let mut incremental = InstanceIndex::built(&specs, &instance);
        for (r, vals) in facts {
            let t = Tuple::from(vals.into_iter().map(Value::int).collect::<Vec<_>>());
            if instance.insert(RelId(r), t.clone()) {
                incremental.absorb(RelId(r), &t);
            }
        }
        let rebuilt = InstanceIndex::built(&specs, &instance);
        for a in 0..4i64 {
            let key1 = [Value::int(a)];
            let h = hash_key(key1.iter());
            for id in single_col {
                prop_assert_eq!(
                    incremental.contains_key(id, &key1),
                    rebuilt.contains_key(id, &key1),
                );
                prop_assert_eq!(
                    incremental.bucket(id, h).len(),
                    rebuilt.bucket(id, h).len(),
                );
            }
            for b in 0..4i64 {
                let key2 = [Value::int(a), Value::int(b)];
                prop_assert_eq!(
                    incremental.contains_key(both_cols, &key2),
                    rebuilt.contains_key(both_cols, &key2),
                );
            }
        }
    }

    /// Saturating, inserting extra facts as a delta, and continuing the
    /// fixpoint incrementally equals a from-scratch fixpoint on the union.
    #[test]
    fn delta_continuation_equals_scratch_fixpoint(
        program in arb_program(),
        input in arb_instance(),
        extra in arb_instance(),
    ) {
        let mut specs = IndexSpecs::new();
        let planned = PlannedProgram::new(&program, &mut specs);
        let mut current = input.clone();
        let mut index = InstanceIndex::built(&specs, &current);
        planned.saturate_in_place(&specs, &mut current, &mut index, None);

        let mut delta = gdatalog_datalog::Delta::new();
        for f in extra.facts() {
            if current.insert(f.rel, f.tuple.clone()) {
                index.absorb(f.rel, &f.tuple);
                delta.push(f.rel, f.tuple);
            }
        }
        planned.saturate_in_place(&specs, &mut current, &mut index, Some(delta));

        let (expect, _) = fixpoint_naive(&program, &input.union(&extra));
        prop_assert_eq!(current, expect);
    }

    #[test]
    fn fixpoint_is_a_fixpoint(program in arb_program(), input in arb_instance()) {
        let (fixed, _) = fixpoint_seminaive(&program, &input);
        // Re-running from the fixpoint derives nothing new.
        let (again, stats) = fixpoint_seminaive(&program, &fixed);
        prop_assert_eq!(&fixed, &again);
        prop_assert_eq!(stats.derived_facts, 0);
        // And the input is contained in the fixpoint.
        prop_assert!(input.is_subset_of(&fixed));
    }

    #[test]
    fn fixpoint_is_monotone(program in arb_program(), input in arb_instance(), extra in arb_instance()) {
        let bigger = input.union(&extra);
        let (small, _) = fixpoint_seminaive(&program, &input);
        let (large, _) = fixpoint_seminaive(&program, &bigger);
        prop_assert!(small.is_subset_of(&large));
    }
}
