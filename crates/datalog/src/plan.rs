//! Compile-once join plans for rule bodies.
//!
//! Body atoms are matched left to right; when atom `i` is reached, some of
//! its columns hold already-known values (constants or variables bound by
//! earlier atoms). The planner computes, **once per rule**, which columns
//! those are and how to obtain their values, and interns the resulting
//! `(relation, bound columns)` index specs into a shared [`IndexSpecs`]
//! table. At evaluation time a probe hashes the bound values straight into
//! the index — no per-probe key `Vec<Value>` is allocated and no `Value`
//! is cloned for key building.

use gdatalog_data::{Instance, RelId, Tuple, Value};

use crate::index::{Delta, IndexSpecs, InstanceIndex, KeyHasher};
use crate::rule::{Atom, Term};

/// How to obtain the value of one bound (key) column at probe time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeySource {
    /// The atom carries a constant in this column.
    Const(Value),
    /// The column's variable was bound by an earlier atom.
    Var(usize),
}

/// The plan for matching one body atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomPlan {
    /// The atom's relation.
    pub rel: RelId,
    /// Columns whose value is known before matching this atom (the probe
    /// key), in column order.
    pub key_cols: Box<[usize]>,
    /// For each key column, how to obtain the value.
    pub key_sources: Box<[KeySource]>,
    /// Interned index spec for `(rel, key_cols)`; `None` when the key is
    /// empty and the atom is matched by scanning the relation.
    pub index: Option<usize>,
    /// `(column, var)` pairs that bind fresh variables (first occurrence).
    pub binds: Box<[(usize, usize)]>,
    /// `(column, var)` pairs that re-check within-atom variable repeats.
    pub checks: Box<[(usize, usize)]>,
}

/// The compiled plan for one conjunctive body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BodyPlan {
    /// Per-atom plans, in body order.
    pub atoms: Box<[AtomPlan]>,
    /// Number of rule-local variables.
    pub n_vars: usize,
}

impl BodyPlan {
    /// Plans `body` left to right, interning its index specs into `specs`.
    pub fn new(body: &[Atom], n_vars: usize, specs: &mut IndexSpecs) -> BodyPlan {
        let mut bound = vec![false; n_vars];
        let atoms = body
            .iter()
            .map(|atom| {
                let mut key_cols = Vec::new();
                let mut key_sources = Vec::new();
                let mut binds = Vec::new();
                let mut checks = Vec::new();
                let mut bound_here: Vec<usize> = Vec::new();
                for (c, t) in atom.args.iter().enumerate() {
                    match t {
                        Term::Const(v) => {
                            key_cols.push(c);
                            key_sources.push(KeySource::Const(v.clone()));
                        }
                        Term::Var(v) => {
                            if bound[*v] {
                                key_cols.push(c);
                                key_sources.push(KeySource::Var(*v));
                            } else if bound_here.contains(v) {
                                checks.push((c, *v));
                            } else {
                                binds.push((c, *v));
                                bound_here.push(*v);
                            }
                        }
                    }
                }
                for v in bound_here {
                    bound[v] = true;
                }
                let index = if key_cols.is_empty() {
                    None
                } else {
                    Some(specs.intern(atom.rel, &key_cols))
                };
                AtomPlan {
                    rel: atom.rel,
                    key_cols: key_cols.into_boxed_slice(),
                    key_sources: key_sources.into_boxed_slice(),
                    index,
                    binds: binds.into_boxed_slice(),
                    checks: checks.into_boxed_slice(),
                }
            })
            .collect();
        BodyPlan { atoms, n_vars }
    }

    /// Enumerates all matches of this body against `instance` (probed
    /// through `index`, which must be laid out for the same [`IndexSpecs`]
    /// the plan was built with and kept in lockstep with `instance`),
    /// invoking `emit` with the complete variable binding for each match.
    pub fn for_each_match(
        &self,
        instance: &Instance,
        index: &InstanceIndex,
        emit: &mut dyn FnMut(&[Option<Value>]),
    ) {
        self.for_each_match_delta(instance, index, None, emit);
    }

    /// Like [`BodyPlan::for_each_match`], optionally forcing atom
    /// `delta.0` to match inside the round's [`Delta`] instead (the
    /// semi-naive restriction). `delta.2` must be an index laid out for
    /// the same specs and built from the same delta
    /// ([`InstanceIndex::build_from_delta`]).
    pub fn for_each_match_delta(
        &self,
        instance: &Instance,
        index: &InstanceIndex,
        delta: Option<(usize, &Delta, &InstanceIndex)>,
        emit: &mut dyn FnMut(&[Option<Value>]),
    ) {
        let mut binding: Vec<Option<Value>> = vec![None; self.n_vars];
        match_plans(&self.atoms, instance, index, delta, &mut binding, emit);
    }
}

/// A cursor over the candidate tuples of one join depth: either a borrowed
/// index bucket (verified against the key during iteration) or a borrowed
/// full-relation scan. Neither clones tuples.
enum Cursor<'a> {
    Bucket {
        tuples: &'a [Tuple],
        next: usize,
    },
    Scan(std::collections::btree_set::Iter<'a, Tuple>),
    /// Unverified slice scan (a delta-position atom with no bound columns).
    Slice {
        tuples: &'a [Tuple],
        next: usize,
    },
}

/// The source a join depth draws candidates from.
#[derive(Clone, Copy)]
enum Source<'a> {
    Full(&'a Instance, &'a InstanceIndex),
    Delta(&'a Delta, &'a InstanceIndex),
}

/// Obtains the candidate cursor for `plan` under the current binding.
fn open_cursor<'a>(plan: &AtomPlan, binding: &[Option<Value>], source: Source<'a>) -> Cursor<'a> {
    let index = match source {
        Source::Full(instance, index) => match plan.index {
            None => return Cursor::Scan(instance.relation(plan.rel).iter()),
            Some(_) => index,
        },
        Source::Delta(delta, index) => match plan.index {
            None => {
                return Cursor::Slice {
                    tuples: delta.tuples(plan.rel),
                    next: 0,
                }
            }
            Some(_) => index,
        },
    };
    match plan.index {
        None => unreachable!("scan handled above"),
        Some(spec) => {
            let mut h = KeyHasher::new();
            for src in plan.key_sources.iter() {
                match src {
                    KeySource::Const(v) => h.push(v),
                    KeySource::Var(v) => {
                        h.push(binding[*v].as_ref().expect("planned var must be bound"));
                    }
                }
            }
            Cursor::Bucket {
                tuples: index.bucket(spec, h.finish()),
                next: 0,
            }
        }
    }
}

/// Verifies that `tuple`'s key columns equal the planned key values (hash
/// buckets may mix 64-bit-colliding keys; constants and bound variables
/// must match exactly).
#[inline]
fn key_matches(plan: &AtomPlan, binding: &[Option<Value>], tuple: &Tuple) -> bool {
    plan.key_cols
        .iter()
        .zip(plan.key_sources.iter())
        .all(|(&c, src)| match src {
            KeySource::Const(v) => &tuple[c] == v,
            KeySource::Var(v) => Some(&tuple[c]) == binding[*v].as_ref(),
        })
}

/// Depth-first join over the planned atoms. An explicit stack of cursors
/// avoids recursion; tuples are borrowed from the index or the instance,
/// never cloned into per-depth buffers.
fn match_plans(
    plans: &[AtomPlan],
    instance: &Instance,
    index: &InstanceIndex,
    delta: Option<(usize, &Delta, &InstanceIndex)>,
    binding: &mut [Option<Value>],
    emit: &mut dyn FnMut(&[Option<Value>]),
) {
    if plans.is_empty() {
        emit(binding);
        return;
    }
    let source = |depth: usize| -> Source<'_> {
        match delta {
            Some((pos, d, d_index)) if pos == depth => Source::Delta(d, d_index),
            _ => Source::Full(instance, index),
        }
    };
    let mut stack: Vec<Cursor<'_>> = Vec::with_capacity(plans.len());
    stack.push(open_cursor(&plans[0], binding, source(0)));

    while let Some(depth) = stack.len().checked_sub(1) {
        let plan = &plans[depth];
        // Next candidate at this depth, verified against the probe key.
        let tuple: Option<&Tuple> = match stack.last_mut().expect("nonempty stack") {
            Cursor::Bucket { tuples, next } => loop {
                match tuples.get(*next) {
                    None => break None,
                    Some(t) => {
                        *next += 1;
                        if key_matches(plan, binding, t) {
                            break Some(t);
                        }
                    }
                }
            },
            Cursor::Scan(iter) => iter.next(),
            Cursor::Slice { tuples, next } => {
                let t = tuples.get(*next);
                *next += 1;
                t
            }
        };
        let Some(tuple) = tuple else {
            // Exhausted: unbind this depth's variables and pop.
            for (_, v) in plan.binds.iter() {
                binding[*v] = None;
            }
            stack.pop();
            continue;
        };
        // Bind fresh variables (overwriting bindings of the previous
        // candidate at this depth).
        for (c, v) in plan.binds.iter() {
            binding[*v] = Some(tuple[*c].clone());
        }
        // Within-atom repeat checks.
        let ok = plan
            .checks
            .iter()
            .all(|(c, v)| binding[*v].as_ref() == Some(&tuple[*c]));
        if !ok {
            continue;
        }
        if depth + 1 == plans.len() {
            emit(binding);
            continue;
        }
        stack.push(open_cursor(&plans[depth + 1], binding, source(depth + 1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Atom, Term};
    use gdatalog_data::tuple;

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    fn matches(body: &[Atom], n_vars: usize, instance: &Instance) -> Vec<Vec<Option<Value>>> {
        let mut specs = IndexSpecs::new();
        let plan = BodyPlan::new(body, n_vars, &mut specs);
        let index = InstanceIndex::built(&specs, instance);
        let mut out = Vec::new();
        plan.for_each_match(instance, &index, &mut |b| out.push(b.to_vec()));
        out
    }

    #[test]
    fn planned_join_binds_across_atoms() {
        // T(x, y), E(y, z): the second atom probes E on column 0.
        let body = vec![
            Atom::new(r(1), vec![Term::Var(0), Term::Var(1)]),
            Atom::new(r(0), vec![Term::Var(1), Term::Var(2)]),
        ];
        let mut d = Instance::new();
        d.insert(r(1), tuple![10i64, 20i64]);
        d.insert(r(0), tuple![20i64, 30i64]);
        d.insert(r(0), tuple![21i64, 31i64]);
        let ms = matches(&body, 3, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0][2], Some(Value::int(30)));
    }

    #[test]
    fn constants_and_repeats_verify() {
        // E(1, x), E(x, x).
        let body = vec![
            Atom::new(r(0), vec![Term::Const(Value::int(1)), Term::Var(0)]),
            Atom::new(r(0), vec![Term::Var(0), Term::Var(0)]),
        ];
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64, 2i64]);
        d.insert(r(0), tuple![2i64, 2i64]);
        d.insert(r(0), tuple![1i64, 3i64]);
        d.insert(r(0), tuple![3i64, 4i64]);
        let ms = matches(&body, 1, &d);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0][0], Some(Value::int(2)));
    }

    #[test]
    fn within_atom_repeat_on_fresh_var() {
        // Diag via E(x, x) alone (scan + check path).
        let body = vec![Atom::new(r(0), vec![Term::Var(0), Term::Var(0)])];
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64, 1i64]);
        d.insert(r(0), tuple![1i64, 2i64]);
        let ms = matches(&body, 1, &d);
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn empty_body_emits_once() {
        let ms = matches(&[], 0, &Instance::new());
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn cross_product_scans_both() {
        let body = vec![
            Atom::new(r(0), vec![Term::Var(0)]),
            Atom::new(r(1), vec![Term::Var(1)]),
        ];
        let mut d = Instance::new();
        for i in 0..3i64 {
            d.insert(r(0), tuple![i]);
        }
        for j in 0..4i64 {
            d.insert(r(1), tuple![j]);
        }
        assert_eq!(matches(&body, 2, &d).len(), 12);
    }
}
