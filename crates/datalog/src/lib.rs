#![warn(missing_docs)]

//! # gdatalog-datalog
//!
//! A classical **positive Datalog** engine over the `gdatalog-data` model:
//! bottom-up naive and semi-naive fixpoint evaluation with hash-indexed
//! joins.
//!
//! This is the substrate that GDatalog (the paper's language) extends: a
//! GDatalog program with no random atoms *is* a Datalog program, and the
//! probabilistic chase restricted to deterministic rules computes exactly
//! the least fixpoint computed here. `gdatalog-core` uses this engine to
//! saturate deterministic rules between sampling steps, and the test suites
//! use it as an oracle for that equivalence.

pub mod eval;
pub mod index;
pub mod rule;

pub use eval::{fixpoint_naive, fixpoint_seminaive, for_each_body_match, EvalStats};
pub use index::InstanceIndex;
pub use rule::{Atom, DatalogProgram, DatalogRule, RuleError, Term};
