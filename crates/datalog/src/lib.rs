#![warn(missing_docs)]

//! # gdatalog-datalog
//!
//! A classical **positive Datalog** engine over the `gdatalog-data` model:
//! bottom-up naive and semi-naive fixpoint evaluation with **compile-once
//! join plans** ([`BodyPlan`]) probing **incrementally maintained** hash
//! indexes ([`InstanceIndex`]).
//!
//! This is the substrate that GDatalog (the paper's language) extends: a
//! GDatalog program with no random atoms *is* a Datalog program, and the
//! probabilistic chase restricted to deterministic rules computes exactly
//! the least fixpoint computed here. `gdatalog-core` uses
//! [`PlannedProgram::saturate_in_place`] to saturate deterministic rules
//! between sampling steps in O(|Δ|), and the test suites use the naive
//! evaluator as an oracle for that equivalence.

pub mod eval;
pub mod index;
pub mod plan;
pub mod rule;

pub use eval::{
    fixpoint_naive, fixpoint_seminaive, fixpoint_seminaive_rebuild, for_each_body_match, EvalStats,
    PlannedProgram,
};
pub use index::{hash_key, Delta, IndexSpecs, InstanceIndex, KeyHasher};
pub use plan::{AtomPlan, BodyPlan, KeySource};
pub use rule::{Atom, DatalogProgram, DatalogRule, RuleError, Term};
