//! Datalog rules over the relational data model.
//!
//! Variables are rule-local indices `0..n_vars`; a rule is *safe* (range
//! restricted, Def. 3.3 of the paper) when every head variable occurs in
//! the body.

use gdatalog_data::{RelId, Tuple, Value};

/// A term in a Datalog atom: a rule-local variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Variable with rule-local index.
    Var(usize),
    /// Constant value.
    Const(Value),
}

impl Term {
    /// The variable index, if this is a variable.
    pub fn as_var(&self) -> Option<usize> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

/// A relational atom `R(t1, …, tn)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation.
    pub rel: RelId,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(rel: RelId, args: Vec<Term>) -> Atom {
        Atom { rel, args }
    }

    /// All variable indices occurring in the atom (with duplicates).
    pub fn vars(&self) -> impl Iterator<Item = usize> + '_ {
        self.args.iter().filter_map(Term::as_var)
    }

    /// Instantiates the atom under a complete binding.
    ///
    /// # Panics
    /// Panics if a variable is unbound.
    pub fn instantiate(&self, binding: &[Option<Value>]) -> Tuple {
        self.args
            .iter()
            .map(|t| match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => binding[*v].clone().expect("instantiate: unbound variable"),
            })
            .collect()
    }
}

/// Errors in rule construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// A head variable does not occur in the body (unsafe rule).
    UnsafeHeadVar {
        /// The offending variable index.
        var: usize,
    },
    /// A variable index is out of the declared range.
    VarOutOfRange {
        /// The offending variable index.
        var: usize,
        /// Declared variable count.
        n_vars: usize,
    },
}

impl std::fmt::Display for RuleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleError::UnsafeHeadVar { var } => {
                write!(f, "head variable v{var} does not occur in the body")
            }
            RuleError::VarOutOfRange { var, n_vars } => {
                write!(f, "variable v{var} out of range (n_vars = {n_vars})")
            }
        }
    }
}

impl std::error::Error for RuleError {}

/// A positive Datalog rule `head ← body₁, …, bodyₖ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogRule {
    /// The head atom.
    pub head: Atom,
    /// Body atoms (conjunction; may be empty for facts-as-rules).
    pub body: Vec<Atom>,
    /// Number of rule-local variables.
    pub n_vars: usize,
}

impl DatalogRule {
    /// Creates a rule, validating safety (every head variable occurs in the
    /// body) and variable ranges.
    pub fn new(head: Atom, body: Vec<Atom>, n_vars: usize) -> Result<DatalogRule, RuleError> {
        for v in head.vars().chain(body.iter().flat_map(Atom::vars)) {
            if v >= n_vars {
                return Err(RuleError::VarOutOfRange { var: v, n_vars });
            }
        }
        let mut in_body = vec![false; n_vars];
        for atom in &body {
            for v in atom.vars() {
                in_body[v] = true;
            }
        }
        for v in head.vars() {
            if !in_body[v] {
                return Err(RuleError::UnsafeHeadVar { var: v });
            }
        }
        Ok(DatalogRule { head, body, n_vars })
    }
}

/// A positive Datalog program: a set of rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatalogProgram {
    /// The rules, in declaration order.
    pub rules: Vec<DatalogRule>,
}

impl DatalogProgram {
    /// Creates a program from rules.
    pub fn new(rules: Vec<DatalogRule>) -> DatalogProgram {
        DatalogProgram { rules }
    }

    /// Relations that appear in some rule head (the intensional relations
    /// relative to this program).
    pub fn head_relations(&self) -> Vec<RelId> {
        let mut v: Vec<RelId> = self.rules.iter().map(|r| r.head.rel).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    #[test]
    fn safe_rule_accepted() {
        // P(x) :- Q(x, y).
        let rule = DatalogRule::new(
            Atom::new(r(0), vec![Term::Var(0)]),
            vec![Atom::new(r(1), vec![Term::Var(0), Term::Var(1)])],
            2,
        );
        assert!(rule.is_ok());
    }

    #[test]
    fn unsafe_rule_rejected() {
        // P(x) :- Q(y).
        let rule = DatalogRule::new(
            Atom::new(r(0), vec![Term::Var(0)]),
            vec![Atom::new(r(1), vec![Term::Var(1)])],
            2,
        );
        assert_eq!(rule.unwrap_err(), RuleError::UnsafeHeadVar { var: 0 });
    }

    #[test]
    fn out_of_range_var_rejected() {
        let rule = DatalogRule::new(
            Atom::new(r(0), vec![Term::Var(5)]),
            vec![Atom::new(r(1), vec![Term::Var(5)])],
            2,
        );
        assert!(matches!(rule, Err(RuleError::VarOutOfRange { var: 5, .. })));
    }

    #[test]
    fn ground_rule_is_safe() {
        // P(1) :- ⊤ (empty body, no variables).
        let rule = DatalogRule::new(Atom::new(r(0), vec![Term::Const(Value::int(1))]), vec![], 0);
        assert!(rule.is_ok());
    }

    #[test]
    fn instantiate_atom() {
        let atom = Atom::new(r(0), vec![Term::Var(1), Term::Const(Value::int(7))]);
        let binding = vec![None, Some(Value::sym("a"))];
        let t = atom.instantiate(&binding);
        assert_eq!(t.values()[0], Value::sym("a"));
        assert_eq!(t.values()[1], Value::int(7));
    }

    #[test]
    fn head_relations_deduped() {
        let p = DatalogProgram::new(vec![
            DatalogRule::new(Atom::new(r(2), vec![]), vec![], 0).unwrap(),
            DatalogRule::new(Atom::new(r(2), vec![]), vec![], 0).unwrap(),
            DatalogRule::new(Atom::new(r(1), vec![]), vec![], 0).unwrap(),
        ]);
        assert_eq!(p.head_relations(), vec![r(1), r(2)]);
    }
}
