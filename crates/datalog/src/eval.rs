//! Bottom-up fixpoint evaluation: naive and semi-naive, over compile-once
//! rule plans and incrementally maintained indexes.
//!
//! [`PlannedProgram`] is the reusable evaluation object: rule bodies are
//! planned once (per-atom bound-column sets, interned index specs) and the
//! semi-naive loop keeps one [`InstanceIndex`] in lockstep with the
//! growing instance by absorbing each inserted fact — no index is rebuilt
//! between rounds. [`PlannedProgram::saturate_in_place`] additionally
//! supports *continuing* saturation from an externally supplied delta,
//! which is what lets the probabilistic chase re-saturate after each
//! sampled fact in O(|Δ|) instead of O(|D|).
//!
//! [`fixpoint_seminaive_rebuild`] preserves the old rebuild-per-round
//! behavior; it exists as the measured baseline for the incremental path
//! (see `benches/datalog_substrate.rs`) and as the oracle in the
//! incremental-vs-rebuilt property tests.

use gdatalog_data::{Instance, RelId, Tuple, Value};

use crate::index::{Delta, IndexSpecs, InstanceIndex};
use crate::plan::BodyPlan;
use crate::rule::{Atom, DatalogProgram};

/// Statistics from a fixpoint run (for benches and ablation reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint iterations.
    pub iterations: usize,
    /// Facts derived (inserted) beyond the input.
    pub derived_facts: usize,
    /// Rule instantiations considered (successful matches).
    pub matches: usize,
}

struct PlannedRule {
    head: Atom,
    plan: BodyPlan,
    body_rels: Vec<RelId>,
}

/// A Datalog program with all rule bodies planned and index specs
/// interned — build once, evaluate many times.
pub struct PlannedProgram {
    rules: Vec<PlannedRule>,
}

impl PlannedProgram {
    /// Plans every rule of `program`, interning index specs into `specs`.
    ///
    /// The same `specs` table can be shared with other plans (the chase
    /// shares one table across the deterministic fragment and the
    /// existential rules so a single index serves both).
    pub fn new(program: &DatalogProgram, specs: &mut IndexSpecs) -> PlannedProgram {
        let rules = program
            .rules
            .iter()
            .map(|r| PlannedRule {
                head: r.head.clone(),
                plan: BodyPlan::new(&r.body, r.n_vars, specs),
                body_rels: r.body.iter().map(|a| a.rel).collect(),
            })
            .collect();
        PlannedProgram { rules }
    }

    /// Runs semi-naive evaluation to fixpoint, mutating `current` (and its
    /// lockstep `index`) in place.
    ///
    /// With `initial_delta = None` this performs a full round 0 (all rules
    /// against the whole instance — the only round that fires body-less
    /// rules) and then delta rounds to fixpoint. With `initial_delta =
    /// Some(Δ)` the caller asserts that `current` is already saturated
    /// except for the facts in `Δ` (which must already be inserted in
    /// `current` and absorbed by `index`); evaluation starts directly from
    /// the delta rounds, costing O(|Δ| + new matches) instead of O(|D|).
    pub fn saturate_in_place(
        &self,
        specs: &IndexSpecs,
        current: &mut Instance,
        index: &mut InstanceIndex,
        initial_delta: Option<Delta>,
    ) -> EvalStats {
        let mut stats = EvalStats::default();
        let mut new_facts: Vec<(RelId, Tuple)> = Vec::new();

        let mut delta = match initial_delta {
            Some(d) => d,
            None => {
                stats.iterations += 1;
                for rule in &self.rules {
                    rule.plan.for_each_match(current, index, &mut |binding| {
                        stats.matches += 1;
                        new_facts.push((rule.head.rel, rule.head.instantiate(binding)));
                    });
                }
                insert_round(current, index, &mut new_facts, &mut stats)
            }
        };

        // One delta index turned over across rounds (allocation reuse).
        let mut delta_index = InstanceIndex::new(specs);
        while !delta.is_empty() {
            stats.iterations += 1;
            delta_index.build_from_delta(&delta);
            for rule in &self.rules {
                if rule.body_rels.is_empty() {
                    continue; // body-less rules fire in round 0 only
                }
                for pos in 0..rule.body_rels.len() {
                    if delta.tuples(rule.body_rels[pos]).is_empty() {
                        continue;
                    }
                    rule.plan.for_each_match_delta(
                        current,
                        index,
                        Some((pos, &delta, &delta_index)),
                        &mut |binding| {
                            stats.matches += 1;
                            new_facts.push((rule.head.rel, rule.head.instantiate(binding)));
                        },
                    );
                }
            }
            delta = insert_round(current, index, &mut new_facts, &mut stats);
        }
        stats
    }
}

/// Inserts a round's derived facts, absorbing the new ones into the index;
/// returns them as the next delta. Drains `new_facts` for reuse.
fn insert_round(
    current: &mut Instance,
    index: &mut InstanceIndex,
    new_facts: &mut Vec<(RelId, Tuple)>,
    stats: &mut EvalStats,
) -> Delta {
    let mut delta = Delta::new();
    for (rel, t) in new_facts.drain(..) {
        if current.insert(rel, t.clone()) {
            stats.derived_facts += 1;
            index.absorb(rel, &t);
            delta.push(rel, t);
        }
    }
    delta
}

/// Enumerates all matches of a conjunctive body against `instance`,
/// invoking `emit` with the complete variable binding for each match.
///
/// This is the single-rule matching primitive the probabilistic chase uses
/// to compute the applicable pairs `App(D)` (§3.3 of the paper). It plans
/// and indexes on the fly; hot paths should plan once via [`BodyPlan`] and
/// probe a maintained index instead.
///
/// Variables not occurring in the body are left `None` in the binding.
pub fn for_each_body_match(
    body: &[Atom],
    n_vars: usize,
    instance: &Instance,
    emit: &mut dyn FnMut(&[Option<Value>]),
) {
    let mut specs = IndexSpecs::new();
    let plan = BodyPlan::new(body, n_vars, &mut specs);
    let index = InstanceIndex::built(&specs, instance);
    plan.for_each_match(instance, &index, emit);
}

/// Naive bottom-up evaluation: applies all rules to the whole instance
/// until nothing new is derived, rebuilding indexes every round. Returns
/// the least fixpoint extension of `input` and evaluation statistics.
///
/// This is the semantic oracle (and the slowest baseline) the semi-naive
/// variants are tested and benchmarked against.
pub fn fixpoint_naive(program: &DatalogProgram, input: &Instance) -> (Instance, EvalStats) {
    let mut specs = IndexSpecs::new();
    let planned = PlannedProgram::new(program, &mut specs);
    let mut stats = EvalStats::default();
    let mut current = input.clone();
    loop {
        stats.iterations += 1;
        let index = InstanceIndex::built(&specs, &current);
        let mut new_facts: Vec<(RelId, Tuple)> = Vec::new();
        for rule in &planned.rules {
            rule.plan.for_each_match(&current, &index, &mut |binding| {
                stats.matches += 1;
                new_facts.push((rule.head.rel, rule.head.instantiate(binding)));
            });
        }
        let mut changed = false;
        for (rel, t) in new_facts {
            if current.insert(rel, t) {
                stats.derived_facts += 1;
                changed = true;
            }
        }
        if !changed {
            return (current, stats);
        }
    }
}

/// Semi-naive bottom-up evaluation over **incrementally maintained**
/// indexes: after the first round, rules only fire on instantiations that
/// touch at least one newly derived fact, and inserted facts are absorbed
/// into the live index instead of rebuilding it.
pub fn fixpoint_seminaive(program: &DatalogProgram, input: &Instance) -> (Instance, EvalStats) {
    let mut specs = IndexSpecs::new();
    let planned = PlannedProgram::new(program, &mut specs);
    let mut current = input.clone();
    let mut index = InstanceIndex::built(&specs, &current);
    let stats = planned.saturate_in_place(&specs, &mut current, &mut index, None);
    (current, stats)
}

/// Semi-naive evaluation with the **old rebuild-after-mutation** index
/// discipline: every round builds fresh indexes over the full instance.
///
/// Kept as the measured baseline for the incremental path and as a second
/// oracle in property tests; do not use on hot paths.
pub fn fixpoint_seminaive_rebuild(
    program: &DatalogProgram,
    input: &Instance,
) -> (Instance, EvalStats) {
    let mut specs = IndexSpecs::new();
    let planned = PlannedProgram::new(program, &mut specs);
    let mut stats = EvalStats::default();
    let mut current = input.clone();
    let mut new_facts: Vec<(RelId, Tuple)> = Vec::new();

    // Round 0: all rules against the input.
    stats.iterations += 1;
    {
        let index = InstanceIndex::built(&specs, &current);
        for rule in &planned.rules {
            rule.plan.for_each_match(&current, &index, &mut |binding| {
                stats.matches += 1;
                new_facts.push((rule.head.rel, rule.head.instantiate(binding)));
            });
        }
    }
    let mut delta = Delta::new();
    for (rel, t) in new_facts.drain(..) {
        if current.insert(rel, t.clone()) {
            stats.derived_facts += 1;
            delta.push(rel, t);
        }
    }

    while !delta.is_empty() {
        stats.iterations += 1;
        // The rebuild being benchmarked away: O(|D|) every round.
        let index = InstanceIndex::built(&specs, &current);
        let mut delta_index = InstanceIndex::new(&specs);
        delta_index.build_from_delta(&delta);
        for rule in &planned.rules {
            if rule.body_rels.is_empty() {
                continue;
            }
            for pos in 0..rule.body_rels.len() {
                if delta.tuples(rule.body_rels[pos]).is_empty() {
                    continue;
                }
                rule.plan.for_each_match_delta(
                    &current,
                    &index,
                    Some((pos, &delta, &delta_index)),
                    &mut |binding| {
                        stats.matches += 1;
                        new_facts.push((rule.head.rel, rule.head.instantiate(binding)));
                    },
                );
            }
        }
        let mut next_delta = Delta::new();
        for (rel, t) in new_facts.drain(..) {
            if current.insert(rel, t.clone()) {
                stats.derived_facts += 1;
                next_delta.push(rel, t);
            }
        }
        delta = next_delta;
    }
    (current, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Atom, DatalogRule, Term};
    use gdatalog_data::{tuple, RelId};

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    /// Transitive closure program: T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).
    fn tc_program() -> DatalogProgram {
        let edge = r(0);
        let tc = r(1);
        DatalogProgram::new(vec![
            DatalogRule::new(
                Atom::new(tc, vec![Term::Var(0), Term::Var(1)]),
                vec![Atom::new(edge, vec![Term::Var(0), Term::Var(1)])],
                2,
            )
            .unwrap(),
            DatalogRule::new(
                Atom::new(tc, vec![Term::Var(0), Term::Var(2)]),
                vec![
                    Atom::new(tc, vec![Term::Var(0), Term::Var(1)]),
                    Atom::new(edge, vec![Term::Var(1), Term::Var(2)]),
                ],
                3,
            )
            .unwrap(),
        ])
    }

    fn chain(n: i64) -> Instance {
        let mut d = Instance::new();
        for i in 0..n {
            d.insert(r(0), tuple![i, i + 1]);
        }
        d
    }

    #[test]
    fn transitive_closure_of_chain() {
        let input = chain(5);
        let (out, _) = fixpoint_seminaive(&tc_program(), &input);
        // T should contain all pairs (i, j) with i < j <= 5: 15 pairs.
        assert_eq!(out.relation_len(r(1)), 15);
        assert!(out.contains(r(1), &tuple![0i64, 5i64]));
        assert!(!out.contains(r(1), &tuple![3i64, 2i64]));
    }

    #[test]
    fn naive_and_seminaive_agree_on_chain() {
        let input = chain(8);
        let (a, _) = fixpoint_naive(&tc_program(), &input);
        let (b, _) = fixpoint_seminaive(&tc_program(), &input);
        let (c, _) = fixpoint_seminaive_rebuild(&tc_program(), &input);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn naive_and_seminaive_agree_on_cycle() {
        let mut input = chain(6);
        input.insert(r(0), tuple![6i64, 0i64]);
        let (a, _) = fixpoint_naive(&tc_program(), &input);
        let (b, sb) = fixpoint_seminaive(&tc_program(), &input);
        assert_eq!(a, b);
        // Full 7-node cycle: 49 pairs.
        assert_eq!(a.relation_len(r(1)), 49);
        assert!(sb.derived_facts >= 49);
    }

    #[test]
    fn seminaive_does_less_matching_work() {
        let input = chain(30);
        let (_, naive) = fixpoint_naive(&tc_program(), &input);
        let (_, semi) = fixpoint_seminaive(&tc_program(), &input);
        assert!(
            semi.matches < naive.matches,
            "semi-naive {} vs naive {}",
            semi.matches,
            naive.matches
        );
    }

    #[test]
    fn incremental_continuation_matches_full_fixpoint() {
        // Saturate a chain, then add one edge and continue from the delta;
        // the result must equal a from-scratch fixpoint on the bigger input.
        let program = tc_program();
        let mut specs = IndexSpecs::new();
        let planned = PlannedProgram::new(&program, &mut specs);
        let mut current = chain(10);
        let mut index = InstanceIndex::built(&specs, &current);
        planned.saturate_in_place(&specs, &mut current, &mut index, None);

        let new_edge = tuple![10i64, 11i64];
        assert!(current.insert(r(0), new_edge.clone()));
        index.absorb(r(0), &new_edge);
        planned.saturate_in_place(
            &specs,
            &mut current,
            &mut index,
            Some(Delta::single(r(0), new_edge)),
        );

        let (expect, _) = fixpoint_naive(&program, &chain(11));
        assert_eq!(current, expect);
    }

    #[test]
    fn bodyless_rules_fire_once() {
        // P(1) :- ⊤.
        let p = DatalogProgram::new(vec![DatalogRule::new(
            Atom::new(r(0), vec![Term::Const(Value::int(1))]),
            vec![],
            0,
        )
        .unwrap()]);
        let (out, stats) = fixpoint_seminaive(&p, &Instance::new());
        assert_eq!(out.len(), 1);
        assert!(out.contains(r(0), &tuple![1i64]));
        assert_eq!(stats.derived_facts, 1);
    }

    #[test]
    fn constants_in_body_filter() {
        // P(x) :- E(1, x).
        let p = DatalogProgram::new(vec![DatalogRule::new(
            Atom::new(r(1), vec![Term::Var(0)]),
            vec![Atom::new(
                r(0),
                vec![Term::Const(Value::int(1)), Term::Var(0)],
            )],
            1,
        )
        .unwrap()]);
        let mut input = Instance::new();
        input.insert(r(0), tuple![1i64, 10i64]);
        input.insert(r(0), tuple![2i64, 20i64]);
        let (out, _) = fixpoint_seminaive(&p, &input);
        assert!(out.contains(r(1), &tuple![10i64]));
        assert!(!out.contains(r(1), &tuple![20i64]));
    }

    #[test]
    fn repeated_var_in_atom_checks_equality() {
        // Diag(x) :- E(x, x).
        let p = DatalogProgram::new(vec![DatalogRule::new(
            Atom::new(r(1), vec![Term::Var(0)]),
            vec![Atom::new(r(0), vec![Term::Var(0), Term::Var(0)])],
            1,
        )
        .unwrap()]);
        let mut input = Instance::new();
        input.insert(r(0), tuple![1i64, 1i64]);
        input.insert(r(0), tuple![1i64, 2i64]);
        let (out, _) = fixpoint_seminaive(&p, &input);
        assert_eq!(out.relation_len(r(1)), 1);
        assert!(out.contains(r(1), &tuple![1i64]));
    }

    #[test]
    fn cross_product_join() {
        // Pair(x, y) :- A(x), B(y).
        let p = DatalogProgram::new(vec![DatalogRule::new(
            Atom::new(r(2), vec![Term::Var(0), Term::Var(1)]),
            vec![
                Atom::new(r(0), vec![Term::Var(0)]),
                Atom::new(r(1), vec![Term::Var(1)]),
            ],
            2,
        )
        .unwrap()]);
        let mut input = Instance::new();
        for i in 0..3i64 {
            input.insert(r(0), tuple![i]);
        }
        for j in 0..4i64 {
            input.insert(r(1), tuple![j]);
        }
        let (out, _) = fixpoint_seminaive(&p, &input);
        assert_eq!(out.relation_len(r(2)), 12);
    }

    #[test]
    fn same_generation_program() {
        // Classic same-generation: sg(x,y) :- sibling(x,y).
        //                          sg(x,y) :- parent(x,px), sg(px,py), parent(y,py).
        let parent = r(0);
        let sibling = r(1);
        let sg = r(2);
        let p = DatalogProgram::new(vec![
            DatalogRule::new(
                Atom::new(sg, vec![Term::Var(0), Term::Var(1)]),
                vec![Atom::new(sibling, vec![Term::Var(0), Term::Var(1)])],
                2,
            )
            .unwrap(),
            DatalogRule::new(
                Atom::new(sg, vec![Term::Var(0), Term::Var(1)]),
                vec![
                    Atom::new(parent, vec![Term::Var(0), Term::Var(2)]),
                    Atom::new(sg, vec![Term::Var(2), Term::Var(3)]),
                    Atom::new(parent, vec![Term::Var(1), Term::Var(3)]),
                ],
                4,
            )
            .unwrap(),
        ]);
        let mut input = Instance::new();
        // Two family trees: a-b siblings; children c(of a), d(of b).
        input.insert(sibling, tuple!["a", "b"]);
        input.insert(parent, tuple!["c", "a"]);
        input.insert(parent, tuple!["d", "b"]);
        let (out, _) = fixpoint_seminaive(&p, &input);
        assert!(out.contains(sg, &tuple!["c", "d"]));
        assert!(!out.contains(sg, &tuple!["c", "b"]));
        let (out_naive, _) = fixpoint_naive(&p, &input);
        assert_eq!(out, out_naive);
    }
}
