//! Bottom-up fixpoint evaluation: naive and semi-naive.

use gdatalog_data::{Instance, Tuple, Value};

use crate::index::InstanceIndex;
use crate::rule::{Atom, DatalogProgram, DatalogRule, Term};

/// Statistics from a fixpoint run (for benches and ablation reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint iterations.
    pub iterations: usize,
    /// Facts derived (inserted) beyond the input.
    pub derived_facts: usize,
    /// Rule instantiations considered (successful matches).
    pub matches: usize,
}

/// A pre-analyzed body atom: which columns are probe keys given the atoms
/// to its left, and which columns bind fresh variables.
struct AtomPlan<'r> {
    atom: &'r Atom,
    /// Columns whose value is known before matching this atom.
    key_cols: Vec<usize>,
    /// For each key column, how to obtain the value.
    key_terms: Vec<&'r Term>,
    /// `(column, var)` pairs that bind fresh variables (first occurrence).
    binds: Vec<(usize, usize)>,
    /// `(column, var)` pairs that must re-check within-atom repeats.
    checks: Vec<(usize, usize)>,
}

fn plan_rule(rule: &DatalogRule) -> Vec<AtomPlan<'_>> {
    plan_body(&rule.body, rule.n_vars)
}

fn plan_body(body: &[Atom], n_vars: usize) -> Vec<AtomPlan<'_>> {
    let mut bound = vec![false; n_vars];
    body.iter()
        .map(|atom| {
            let mut key_cols = Vec::new();
            let mut key_terms = Vec::new();
            let mut binds = Vec::new();
            let mut checks = Vec::new();
            let mut bound_here: Vec<usize> = Vec::new();
            for (c, t) in atom.args.iter().enumerate() {
                match t {
                    Term::Const(_) => {
                        key_cols.push(c);
                        key_terms.push(t);
                    }
                    Term::Var(v) => {
                        if bound[*v] {
                            key_cols.push(c);
                            key_terms.push(t);
                        } else if bound_here.contains(v) {
                            checks.push((c, *v));
                        } else {
                            binds.push((c, *v));
                            bound_here.push(*v);
                        }
                    }
                }
            }
            for v in bound_here {
                bound[v] = true;
            }
            AtomPlan {
                atom,
                key_cols,
                key_terms,
                binds,
                checks,
            }
        })
        .collect()
}

/// Matches the body of `rule` against `index`, optionally forcing atom
/// `delta_pos` to match inside `delta` instead (semi-naive restriction).
/// Calls `emit` with the complete binding for every match.
fn match_body<'a>(
    plans: &[AtomPlan<'_>],
    index: &mut InstanceIndex<'a>,
    delta: Option<(usize, &mut InstanceIndex<'a>)>,
    n_vars: usize,
    emit: &mut dyn FnMut(&[Option<Value>]),
) {
    let mut binding: Vec<Option<Value>> = vec![None; n_vars];
    let (delta_pos, mut delta_index) = match delta {
        Some((p, ix)) => (Some(p), Some(ix)),
        None => (None, None),
    };
    // Depth-first join over body atoms. An explicit stack of tuple cursors
    // avoids recursion so the hot loop has no call overhead.
    struct Frame {
        tuples: Vec<Tuple>,
        next: usize,
    }
    let mut stack: Vec<Frame> = Vec::with_capacity(plans.len());

    // Obtain the candidate tuples for plan `depth` under current binding.
    fn candidates<'a>(
        plan: &AtomPlan<'_>,
        binding: &[Option<Value>],
        index: &mut InstanceIndex<'a>,
    ) -> Vec<Tuple> {
        let key: Vec<Value> = plan
            .key_terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => c.clone(),
                Term::Var(v) => binding[*v].clone().expect("planned var must be bound"),
            })
            .collect();
        index.probe(plan.atom.rel, &plan.key_cols, &key).to_vec()
    }

    if plans.is_empty() {
        emit(&binding);
        return;
    }

    let first = if delta_pos == Some(0) {
        let ix = delta_index.as_deref_mut().expect("delta index present");
        candidates(&plans[0], &binding, ix)
    } else {
        candidates(&plans[0], &binding, index)
    };
    stack.push(Frame {
        tuples: first,
        next: 0,
    });

    while let Some(depth) = stack.len().checked_sub(1) {
        let frame = stack.last_mut().expect("nonempty stack");
        if frame.next >= frame.tuples.len() {
            // Exhausted: undo bindings of this depth and pop.
            stack.pop();
            if let Some(prev_depth) = stack.len().checked_sub(1) {
                let _ = prev_depth;
            }
            // Unbind variables bound at this depth.
            for (_, v) in &plans[depth].binds {
                binding[*v] = None;
            }
            continue;
        }
        let tuple = frame.tuples[frame.next].clone();
        frame.next += 1;

        // Unbind (in case a previous tuple at this depth bound them).
        for (_, v) in &plans[depth].binds {
            binding[*v] = None;
        }
        // Bind fresh variables.
        for (c, v) in &plans[depth].binds {
            binding[*v] = Some(tuple[*c].clone());
        }
        // Within-atom repeat checks.
        let ok = plans[depth]
            .checks
            .iter()
            .all(|(c, v)| binding[*v].as_ref() == Some(&tuple[*c]));
        if !ok {
            continue;
        }

        if depth + 1 == plans.len() {
            emit(&binding);
            // Keep current frame; unbinding happens on next tuple/pop.
            continue;
        }

        let next_tuples = if delta_pos == Some(depth + 1) {
            let ix = delta_index.as_deref_mut().expect("delta index present");
            candidates(&plans[depth + 1], &binding, ix)
        } else {
            candidates(&plans[depth + 1], &binding, index)
        };
        stack.push(Frame {
            tuples: next_tuples,
            next: 0,
        });
    }
}

/// Enumerates all matches of a conjunctive body against `instance`,
/// invoking `emit` with the complete variable binding for each match.
///
/// This is the single-rule matching primitive the probabilistic chase uses
/// to compute the applicable pairs `App(D)` (§3.3 of the paper): the body
/// matches produced here are the candidate valuations `ā`, which the chase
/// then filters by the head-unsatisfied condition.
///
/// Variables not occurring in the body are left `None` in the binding.
pub fn for_each_body_match(
    body: &[Atom],
    n_vars: usize,
    instance: &Instance,
    emit: &mut dyn FnMut(&[Option<Value>]),
) {
    let plans = plan_body(body, n_vars);
    let mut index = InstanceIndex::new(instance);
    match_body(&plans, &mut index, None, n_vars, emit);
}

/// Naive bottom-up evaluation: applies all rules to the whole instance
/// until nothing new is derived. Returns the least fixpoint extension of
/// `input` and evaluation statistics.
pub fn fixpoint_naive(program: &DatalogProgram, input: &Instance) -> (Instance, EvalStats) {
    let mut stats = EvalStats::default();
    let mut current = input.clone();
    loop {
        stats.iterations += 1;
        let mut new_facts: Vec<(gdatalog_data::RelId, Tuple)> = Vec::new();
        {
            let mut index = InstanceIndex::new(&current);
            for rule in &program.rules {
                let plans = plan_rule(rule);
                let mut emit = |binding: &[Option<Value>]| {
                    stats.matches += 1;
                    let head = rule.head.instantiate(binding);
                    new_facts.push((rule.head.rel, head));
                };
                match_body(&plans, &mut index, None, rule.n_vars, &mut emit);
            }
        }
        let mut changed = false;
        for (rel, t) in new_facts {
            if current.insert(rel, t) {
                stats.derived_facts += 1;
                changed = true;
            }
        }
        if !changed {
            return (current, stats);
        }
    }
}

/// Semi-naive bottom-up evaluation: after the first round, rules only fire
/// on instantiations that touch at least one *newly derived* fact.
pub fn fixpoint_seminaive(program: &DatalogProgram, input: &Instance) -> (Instance, EvalStats) {
    let mut stats = EvalStats::default();
    let mut current = input.clone();

    // Round 0: all rules against the input (this also fires body-less rules).
    let mut delta = Instance::new();
    {
        stats.iterations += 1;
        let mut new_facts: Vec<(gdatalog_data::RelId, Tuple)> = Vec::new();
        {
            let mut index = InstanceIndex::new(&current);
            for rule in &program.rules {
                let plans = plan_rule(rule);
                let mut emit = |binding: &[Option<Value>]| {
                    stats.matches += 1;
                    new_facts.push((rule.head.rel, rule.head.instantiate(binding)));
                };
                match_body(&plans, &mut index, None, rule.n_vars, &mut emit);
            }
        }
        for (rel, t) in new_facts {
            if current.insert(rel, t.clone()) {
                stats.derived_facts += 1;
                delta.insert(rel, t);
            }
        }
    }

    while !delta.is_empty() {
        stats.iterations += 1;
        let mut new_facts: Vec<(gdatalog_data::RelId, Tuple)> = Vec::new();
        {
            let mut index = InstanceIndex::new(&current);
            let mut delta_index = InstanceIndex::new(&delta);
            for rule in &program.rules {
                if rule.body.is_empty() {
                    continue; // already fired in round 0
                }
                let plans = plan_rule(rule);
                for pos in 0..rule.body.len() {
                    // Skip positions whose relation has no delta facts.
                    if delta.relation_len(rule.body[pos].rel) == 0 {
                        continue;
                    }
                    let mut emit = |binding: &[Option<Value>]| {
                        stats.matches += 1;
                        new_facts.push((rule.head.rel, rule.head.instantiate(binding)));
                    };
                    match_body(
                        &plans,
                        &mut index,
                        Some((pos, &mut delta_index)),
                        rule.n_vars,
                        &mut emit,
                    );
                }
            }
        }
        let mut next_delta = Instance::new();
        for (rel, t) in new_facts {
            if current.insert(rel, t.clone()) {
                stats.derived_facts += 1;
                next_delta.insert(rel, t);
            }
        }
        delta = next_delta;
    }
    (current, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Atom, DatalogRule, Term};
    use gdatalog_data::{tuple, RelId};

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    /// Transitive closure program: T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).
    fn tc_program() -> DatalogProgram {
        let edge = r(0);
        let tc = r(1);
        DatalogProgram::new(vec![
            DatalogRule::new(
                Atom::new(tc, vec![Term::Var(0), Term::Var(1)]),
                vec![Atom::new(edge, vec![Term::Var(0), Term::Var(1)])],
                2,
            )
            .unwrap(),
            DatalogRule::new(
                Atom::new(tc, vec![Term::Var(0), Term::Var(2)]),
                vec![
                    Atom::new(tc, vec![Term::Var(0), Term::Var(1)]),
                    Atom::new(edge, vec![Term::Var(1), Term::Var(2)]),
                ],
                3,
            )
            .unwrap(),
        ])
    }

    fn chain(n: i64) -> Instance {
        let mut d = Instance::new();
        for i in 0..n {
            d.insert(r(0), tuple![i, i + 1]);
        }
        d
    }

    #[test]
    fn transitive_closure_of_chain() {
        let input = chain(5);
        let (out, _) = fixpoint_seminaive(&tc_program(), &input);
        // T should contain all pairs (i, j) with i < j <= 5: 15 pairs.
        assert_eq!(out.relation_len(r(1)), 15);
        assert!(out.contains(r(1), &tuple![0i64, 5i64]));
        assert!(!out.contains(r(1), &tuple![3i64, 2i64]));
    }

    #[test]
    fn naive_and_seminaive_agree_on_chain() {
        let input = chain(8);
        let (a, _) = fixpoint_naive(&tc_program(), &input);
        let (b, _) = fixpoint_seminaive(&tc_program(), &input);
        assert_eq!(a, b);
    }

    #[test]
    fn naive_and_seminaive_agree_on_cycle() {
        let mut input = chain(6);
        input.insert(r(0), tuple![6i64, 0i64]);
        let (a, _) = fixpoint_naive(&tc_program(), &input);
        let (b, sb) = fixpoint_seminaive(&tc_program(), &input);
        assert_eq!(a, b);
        // Full 7-node cycle: 49 pairs.
        assert_eq!(a.relation_len(r(1)), 49);
        assert!(sb.derived_facts >= 49);
    }

    #[test]
    fn seminaive_does_less_matching_work() {
        let input = chain(30);
        let (_, naive) = fixpoint_naive(&tc_program(), &input);
        let (_, semi) = fixpoint_seminaive(&tc_program(), &input);
        assert!(
            semi.matches < naive.matches,
            "semi-naive {} vs naive {}",
            semi.matches,
            naive.matches
        );
    }

    #[test]
    fn bodyless_rules_fire_once() {
        // P(1) :- ⊤.
        let p = DatalogProgram::new(vec![DatalogRule::new(
            Atom::new(r(0), vec![Term::Const(Value::int(1))]),
            vec![],
            0,
        )
        .unwrap()]);
        let (out, stats) = fixpoint_seminaive(&p, &Instance::new());
        assert_eq!(out.len(), 1);
        assert!(out.contains(r(0), &tuple![1i64]));
        assert_eq!(stats.derived_facts, 1);
    }

    #[test]
    fn constants_in_body_filter() {
        // P(x) :- E(1, x).
        let p = DatalogProgram::new(vec![DatalogRule::new(
            Atom::new(r(1), vec![Term::Var(0)]),
            vec![Atom::new(
                r(0),
                vec![Term::Const(Value::int(1)), Term::Var(0)],
            )],
            1,
        )
        .unwrap()]);
        let mut input = Instance::new();
        input.insert(r(0), tuple![1i64, 10i64]);
        input.insert(r(0), tuple![2i64, 20i64]);
        let (out, _) = fixpoint_seminaive(&p, &input);
        assert!(out.contains(r(1), &tuple![10i64]));
        assert!(!out.contains(r(1), &tuple![20i64]));
    }

    #[test]
    fn repeated_var_in_atom_checks_equality() {
        // Diag(x) :- E(x, x).
        let p = DatalogProgram::new(vec![DatalogRule::new(
            Atom::new(r(1), vec![Term::Var(0)]),
            vec![Atom::new(r(0), vec![Term::Var(0), Term::Var(0)])],
            1,
        )
        .unwrap()]);
        let mut input = Instance::new();
        input.insert(r(0), tuple![1i64, 1i64]);
        input.insert(r(0), tuple![1i64, 2i64]);
        let (out, _) = fixpoint_seminaive(&p, &input);
        assert_eq!(out.relation_len(r(1)), 1);
        assert!(out.contains(r(1), &tuple![1i64]));
    }

    #[test]
    fn cross_product_join() {
        // Pair(x, y) :- A(x), B(y).
        let p = DatalogProgram::new(vec![DatalogRule::new(
            Atom::new(r(2), vec![Term::Var(0), Term::Var(1)]),
            vec![
                Atom::new(r(0), vec![Term::Var(0)]),
                Atom::new(r(1), vec![Term::Var(1)]),
            ],
            2,
        )
        .unwrap()]);
        let mut input = Instance::new();
        for i in 0..3i64 {
            input.insert(r(0), tuple![i]);
        }
        for j in 0..4i64 {
            input.insert(r(1), tuple![j]);
        }
        let (out, _) = fixpoint_seminaive(&p, &input);
        assert_eq!(out.relation_len(r(2)), 12);
    }

    #[test]
    fn same_generation_program() {
        // Classic same-generation: sg(x,y) :- sibling(x,y).
        //                          sg(x,y) :- parent(x,px), sg(px,py), parent(y,py).
        let parent = r(0);
        let sibling = r(1);
        let sg = r(2);
        let p = DatalogProgram::new(vec![
            DatalogRule::new(
                Atom::new(sg, vec![Term::Var(0), Term::Var(1)]),
                vec![Atom::new(sibling, vec![Term::Var(0), Term::Var(1)])],
                2,
            )
            .unwrap(),
            DatalogRule::new(
                Atom::new(sg, vec![Term::Var(0), Term::Var(1)]),
                vec![
                    Atom::new(parent, vec![Term::Var(0), Term::Var(2)]),
                    Atom::new(sg, vec![Term::Var(2), Term::Var(3)]),
                    Atom::new(parent, vec![Term::Var(1), Term::Var(3)]),
                ],
                4,
            )
            .unwrap(),
        ]);
        let mut input = Instance::new();
        // Two family trees: a-b siblings; children c(of a), d(of b).
        input.insert(sibling, tuple!["a", "b"]);
        input.insert(parent, tuple!["c", "a"]);
        input.insert(parent, tuple!["d", "b"]);
        let (out, _) = fixpoint_seminaive(&p, &input);
        assert!(out.contains(sg, &tuple!["c", "d"]));
        assert!(!out.contains(sg, &tuple!["c", "b"]));
        let (out_naive, _) = fixpoint_naive(&p, &input);
        assert_eq!(out, out_naive);
    }
}
