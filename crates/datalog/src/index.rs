//! Lazily built hash indexes over instances, keyed by column subsets.
//!
//! Body atoms are matched left to right; when atom `i` is reached, some of
//! its columns hold already-known values (constants or variables bound by
//! earlier atoms). An index on exactly those columns turns the lookup into a
//! hash probe instead of a relation scan — the standard hash-join pipeline.

use std::collections::HashMap;

use gdatalog_data::{Instance, RelId, Tuple, Value};

/// A cache of hash indexes `(relation, key columns) → (key values → tuples)`
/// built on demand against a fixed snapshot of an [`Instance`].
///
/// The index borrows the instance; rebuild after mutation.
pub struct InstanceIndex<'a> {
    instance: &'a Instance,
    cache: HashMap<(RelId, Vec<usize>), HashMap<Vec<Value>, Vec<Tuple>>>,
}

static EMPTY: Vec<Tuple> = Vec::new();

impl<'a> InstanceIndex<'a> {
    /// Creates an (empty) index cache over `instance`.
    pub fn new(instance: &'a Instance) -> Self {
        InstanceIndex {
            instance,
            cache: HashMap::new(),
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &'a Instance {
        self.instance
    }

    /// Tuples of `rel` whose projection onto `key_cols` equals `key`.
    ///
    /// With `key_cols` empty this is a full (cached) scan of the relation.
    pub fn probe(&mut self, rel: RelId, key_cols: &[usize], key: &[Value]) -> &[Tuple] {
        debug_assert_eq!(key_cols.len(), key.len());
        let entry = self
            .cache
            .entry((rel, key_cols.to_vec()))
            .or_insert_with(|| {
                let mut map: HashMap<Vec<Value>, Vec<Tuple>> = HashMap::new();
                for t in self.instance.relation(rel) {
                    let k: Vec<Value> = key_cols.iter().map(|&c| t[c].clone()).collect();
                    map.entry(k).or_default().push(t.clone());
                }
                map
            });
        entry.get(key).map_or(EMPTY.as_slice(), Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    #[test]
    fn probe_by_first_column() {
        let mut d = Instance::new();
        d.insert(r(0), tuple!["a", 1i64]);
        d.insert(r(0), tuple!["a", 2i64]);
        d.insert(r(0), tuple!["b", 3i64]);
        let mut idx = InstanceIndex::new(&d);
        let hits = idx.probe(r(0), &[0], &[Value::sym("a")]);
        assert_eq!(hits.len(), 2);
        let misses = idx.probe(r(0), &[0], &[Value::sym("z")]);
        assert!(misses.is_empty());
    }

    #[test]
    fn empty_key_scans_whole_relation() {
        let mut d = Instance::new();
        d.insert(r(0), tuple![1i64]);
        d.insert(r(0), tuple![2i64]);
        let mut idx = InstanceIndex::new(&d);
        assert_eq!(idx.probe(r(0), &[], &[]).len(), 2);
        assert_eq!(idx.probe(r(1), &[], &[]).len(), 0);
    }

    #[test]
    fn compound_keys() {
        let mut d = Instance::new();
        d.insert(r(0), tuple!["a", 1i64, "x"]);
        d.insert(r(0), tuple!["a", 1i64, "y"]);
        d.insert(r(0), tuple!["a", 2i64, "x"]);
        let mut idx = InstanceIndex::new(&d);
        let hits = idx.probe(r(0), &[0, 1], &[Value::sym("a"), Value::int(1)]);
        assert_eq!(hits.len(), 2);
    }
}
