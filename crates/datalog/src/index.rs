//! Incrementally maintained hash indexes over instances.
//!
//! The previous design rebuilt a borrowed index cache from scratch after
//! every instance mutation, making each semi-naive round and each chase
//! step pay O(|D|) even when only one fact changed. This index is **owned
//! and incremental**: the set of `(relation, key columns)` specs a program
//! needs is interned once into an [`IndexSpecs`] table (by the join
//! planner), an [`InstanceIndex`] is built once against the instance, and
//! every subsequently inserted fact is *absorbed in place* —
//! O(#indexes-on-relation) per fact, independent of |D|.
//!
//! Probing is by **hash of the key projection**: buckets are keyed by a
//! stable 64-bit hash of the probed column values, so a probe hashes a few
//! machine words instead of allocating a `Vec<Value>` key. Buckets may
//! (astronomically rarely) mix keys that collide at 64 bits, so callers
//! verify candidate tuples against the bound values while scanning — the
//! join loop does this anyway to keep a single code path.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use gdatalog_data::{Instance, RelId, Tuple, Value};

/// A fast multiplicative hasher (fxhash-style) for key projections.
/// Deterministic, unseeded — bucket addressing needs nothing stronger,
/// and it is several times cheaper than SipHash on short keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hasher for the already-hashed `u64` bucket keys: one strong-mixing
/// round (SplitMix64 finalizer) instead of re-hashing with SipHash.
#[derive(Debug, Default, Clone)]
pub struct U64Hasher {
    hash: u64,
}

impl Hasher for U64Hasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("U64Hasher only hashes u64 keys");
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.hash = z ^ (z >> 31);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type BucketMap = HashMap<u64, Vec<Tuple>, BuildHasherDefault<U64Hasher>>;

/// Stable 64-bit hash of a key projection, fed value by value.
#[derive(Debug, Default)]
pub struct KeyHasher(FxHasher);

impl KeyHasher {
    /// Starts a key hash.
    pub fn new() -> KeyHasher {
        KeyHasher::default()
    }

    /// Feeds the next key component.
    #[inline]
    pub fn push(&mut self, v: &Value) {
        v.hash(&mut self.0);
    }

    /// The finished bucket hash.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0.finish()
    }
}

/// Hashes a full key, in order.
pub fn hash_key<'v>(key: impl IntoIterator<Item = &'v Value>) -> u64 {
    let mut h = KeyHasher::new();
    for v in key {
        h.push(v);
    }
    h.finish()
}

/// An interned table of `(relation, key columns)` index specs.
///
/// Join plans intern every probe they will make; the resulting spec ids
/// are positions into any [`InstanceIndex`] created from this table, so a
/// probe at evaluation time is a plain array access plus one hash lookup.
#[derive(Debug, Clone, Default)]
pub struct IndexSpecs {
    specs: Vec<(RelId, Box<[usize]>)>,
    by_key: HashMap<(RelId, Box<[usize]>), usize>,
}

impl IndexSpecs {
    /// An empty spec table.
    pub fn new() -> IndexSpecs {
        IndexSpecs::default()
    }

    /// Interns a spec, returning its id. Key columns must be non-empty
    /// (empty-key "probes" are full scans and read the instance directly).
    pub fn intern(&mut self, rel: RelId, key_cols: &[usize]) -> usize {
        debug_assert!(!key_cols.is_empty(), "empty keys are scans, not probes");
        if let Some(&id) = self.by_key.get(&(rel, Box::from(key_cols))) {
            return id;
        }
        let id = self.specs.len();
        let cols: Box<[usize]> = Box::from(key_cols);
        self.specs.push((rel, cols.clone()));
        self.by_key.insert((rel, cols), id);
        id
    }

    /// Number of interned specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether no specs are interned.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The `(relation, key columns)` of spec `id`.
    pub fn spec(&self, id: usize) -> (RelId, &[usize]) {
        let (rel, cols) = &self.specs[id];
        (*rel, cols)
    }
}

/// A round's worth of **freshly derived** facts, grouped per relation in
/// first-derivation order.
///
/// Unlike an [`Instance`], a `Delta` does no set-semantics bookkeeping —
/// callers only push facts that were new to the underlying instance — so
/// pushing is an amortized-O(1) vector append instead of a B-tree insert.
/// The semi-naive loop turns over one `Delta` per round; on transitive
/// closure this halves the per-derived-fact ordered-set work.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    rels: Vec<(RelId, Vec<Tuple>)>,
    len: usize,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// A delta holding one fact.
    pub fn single(rel: RelId, tuple: Tuple) -> Delta {
        Delta {
            rels: vec![(rel, vec![tuple])],
            len: 1,
        }
    }

    /// Appends a fact the caller knows to be fresh.
    pub fn push(&mut self, rel: RelId, tuple: Tuple) {
        self.len += 1;
        // Programs touch a handful of relations; linear scan beats hashing.
        match self.rels.iter_mut().find(|(r, _)| *r == rel) {
            Some((_, tuples)) => tuples.push(tuple),
            None => self.rels.push((rel, vec![tuple])),
        }
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the delta holds no facts.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The delta's tuples of one relation (empty if none).
    pub fn tuples(&self, rel: RelId) -> &[Tuple] {
        self.rels
            .iter()
            .find(|(r, _)| *r == rel)
            .map_or(&[], |(_, ts)| ts.as_slice())
    }

    /// Per-relation groups, in first-derivation order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &[Tuple])> {
        self.rels.iter().map(|(r, ts)| (*r, ts.as_slice()))
    }
}

/// One maintained index: tuples bucketed by the hash of their projection
/// onto the spec's key columns.
#[derive(Debug, Clone)]
struct ColumnIndex {
    key_cols: Box<[usize]>,
    buckets: BucketMap,
}

static EMPTY: Vec<Tuple> = Vec::new();

/// The maintained indexes for one instance, laid out per [`IndexSpecs`].
///
/// Keep it in lockstep with the instance: [`InstanceIndex::build`] once,
/// then [`InstanceIndex::absorb`] every newly inserted fact. Probes take
/// `&self`, so candidate buckets stay borrowable across a whole join.
#[derive(Debug, Clone)]
pub struct InstanceIndex {
    indexes: Vec<ColumnIndex>,
    /// Spec ids per relation, for O(1) insert fan-out.
    by_rel: HashMap<RelId, Vec<usize>>,
}

impl InstanceIndex {
    /// An empty (unbuilt) index laid out for `specs`.
    pub fn new(specs: &IndexSpecs) -> InstanceIndex {
        let mut by_rel: HashMap<RelId, Vec<usize>> = HashMap::new();
        let mut indexes = Vec::with_capacity(specs.len());
        for (id, (rel, cols)) in specs.specs.iter().enumerate() {
            by_rel.entry(*rel).or_default().push(id);
            indexes.push(ColumnIndex {
                key_cols: cols.clone(),
                buckets: BucketMap::default(),
            });
        }
        InstanceIndex { indexes, by_rel }
    }

    /// Builds (or rebuilds) every index from `instance`, discarding any
    /// previously absorbed state.
    pub fn build(&mut self, instance: &Instance) {
        for ix in &mut self.indexes {
            ix.buckets.clear();
        }
        for (&rel, ids) in &self.by_rel {
            for t in instance.relation(rel) {
                for &id in ids {
                    let ix = &mut self.indexes[id];
                    let h = hash_key(ix.key_cols.iter().map(|&c| &t[c]));
                    ix.buckets.entry(h).or_default().push(t.clone());
                }
            }
        }
    }

    /// Convenience: a built index over `instance`.
    pub fn built(specs: &IndexSpecs, instance: &Instance) -> InstanceIndex {
        let mut ix = InstanceIndex::new(specs);
        ix.build(instance);
        ix
    }

    /// Builds (or rebuilds) every index from a [`Delta`], discarding
    /// previous state. Used for the per-round delta indexes of the
    /// semi-naive loop; the layout (and spec ids) match the main index.
    pub fn build_from_delta(&mut self, delta: &Delta) {
        for ix in &mut self.indexes {
            ix.buckets.clear();
        }
        for (rel, tuples) in delta.iter() {
            let Some(ids) = self.by_rel.get(&rel) else {
                continue;
            };
            for t in tuples {
                for &id in ids {
                    let ix = &mut self.indexes[id];
                    let h = hash_key(ix.key_cols.iter().map(|&c| &t[c]));
                    ix.buckets.entry(h).or_default().push(t.clone());
                }
            }
        }
    }

    /// Absorbs one **newly inserted** fact into every index on its
    /// relation. Only pass facts that were actually new to the instance
    /// (set semantics), or buckets would hold duplicates.
    #[inline]
    pub fn absorb(&mut self, rel: RelId, tuple: &Tuple) {
        let Some(ids) = self.by_rel.get(&rel) else {
            return;
        };
        for &id in ids {
            let ix = &mut self.indexes[id];
            let h = hash_key(ix.key_cols.iter().map(|&c| &tuple[c]));
            ix.buckets.entry(h).or_default().push(tuple.clone());
        }
    }

    /// The bucket of tuples whose key projection hashes to `hash` under
    /// spec `id`. Candidates must still be verified against the actual key
    /// values (64-bit collisions).
    #[inline]
    pub fn bucket(&self, id: usize, hash: u64) -> &[Tuple] {
        self.indexes[id]
            .buckets
            .get(&hash)
            .map_or(EMPTY.as_slice(), Vec::as_slice)
    }

    /// Whether the indexed relation holds a tuple whose key projection
    /// equals `key` under spec `id` (hash probe plus verification).
    pub fn contains_key(&self, id: usize, key: &[Value]) -> bool {
        let ix = &self.indexes[id];
        debug_assert_eq!(ix.key_cols.len(), key.len());
        let h = hash_key(key.iter());
        self.bucket(id, h)
            .iter()
            .any(|t| ix.key_cols.iter().zip(key).all(|(&c, v)| &t[c] == v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;

    fn r(n: u32) -> RelId {
        RelId(n)
    }

    #[test]
    fn probe_by_first_column() {
        let mut d = Instance::new();
        d.insert(r(0), tuple!["a", 1i64]);
        d.insert(r(0), tuple!["a", 2i64]);
        d.insert(r(0), tuple!["b", 3i64]);
        let mut specs = IndexSpecs::new();
        let id = specs.intern(r(0), &[0]);
        let idx = InstanceIndex::built(&specs, &d);
        let key = [Value::sym("a")];
        let hits: Vec<_> = idx
            .bucket(id, hash_key(key.iter()))
            .iter()
            .filter(|t| t[0] == key[0])
            .collect();
        assert_eq!(hits.len(), 2);
        assert!(idx.contains_key(id, &key));
        assert!(!idx.contains_key(id, &[Value::sym("z")]));
    }

    #[test]
    fn absorb_keeps_index_in_lockstep() {
        let mut d = Instance::new();
        d.insert(r(0), tuple!["a", 1i64]);
        let mut specs = IndexSpecs::new();
        let id = specs.intern(r(0), &[0]);
        let mut idx = InstanceIndex::built(&specs, &d);
        assert!(!idx.contains_key(id, &[Value::sym("b")]));
        let t = tuple!["b", 9i64];
        assert!(d.insert(r(0), t.clone()));
        idx.absorb(r(0), &t);
        assert!(idx.contains_key(id, &[Value::sym("b")]));
        // Absorbing into a relation with no indexes is a no-op.
        idx.absorb(r(7), &tuple![1i64]);
    }

    #[test]
    fn incremental_equals_rebuilt() {
        let mut specs = IndexSpecs::new();
        let id01 = specs.intern(r(0), &[0, 1]);
        let id1 = specs.intern(r(0), &[1]);
        let mut d = Instance::new();
        let mut incremental = InstanceIndex::built(&specs, &d);
        for i in 0..50i64 {
            let t = tuple![i % 7, i % 3, i];
            if d.insert(r(0), t.clone()) {
                incremental.absorb(r(0), &t);
            }
        }
        let rebuilt = InstanceIndex::built(&specs, &d);
        for i in 0..7i64 {
            for j in 0..3i64 {
                let key = [Value::int(i), Value::int(j)];
                assert_eq!(
                    incremental.contains_key(id01, &key),
                    rebuilt.contains_key(id01, &key)
                );
                let h = hash_key(key.iter());
                assert_eq!(
                    incremental.bucket(id01, h).len(),
                    rebuilt.bucket(id01, h).len()
                );
            }
            let key = [Value::int(i)];
            let h = hash_key(key.iter());
            assert_eq!(
                incremental.bucket(id1, h).len(),
                rebuilt.bucket(id1, h).len()
            );
        }
    }

    #[test]
    fn compound_keys() {
        let mut d = Instance::new();
        d.insert(r(0), tuple!["a", 1i64, "x"]);
        d.insert(r(0), tuple!["a", 1i64, "y"]);
        d.insert(r(0), tuple!["a", 2i64, "x"]);
        let mut specs = IndexSpecs::new();
        let id = specs.intern(r(0), &[0, 1]);
        let idx = InstanceIndex::built(&specs, &d);
        let key = [Value::sym("a"), Value::int(1)];
        let hits = idx
            .bucket(id, hash_key(key.iter()))
            .iter()
            .filter(|t| t[0] == key[0] && t[1] == key[1])
            .count();
        assert_eq!(hits, 2);
    }
}
