//! Pretty-printing of GDatalog programs back to parseable text.

use std::fmt;

use gdatalog_data::ColType;

use crate::ast::{
    AtomAst, GroundFactAst, ObserveAst, ObserveKind, Program, RelDeclAst, RuleAst, TermAst,
};

impl fmt::Display for TermAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermAst::Var(v) => write!(f, "{v}"),
            TermAst::Const(c) => write!(f, "{c}"),
            TermAst::Hole { name: Some(n), .. } => write!(f, "?{n}"),
            TermAst::Hole { name: None, .. } => write!(f, "?"),
            TermAst::Random {
                dist, params, tags, ..
            } => {
                write!(f, "{dist}<")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                if !tags.is_empty() {
                    write!(f, " | ")?;
                    for (i, t) in tags.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                }
                write!(f, ">")
            }
        }
    }
}

impl fmt::Display for AtomAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for RuleAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.body.is_empty() {
            write!(f, "{} :- true.", self.head)
        } else {
            write!(f, "{} :- ", self.head)?;
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ".")
        }
    }
}

impl fmt::Display for RelDeclAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel {}(", self.name)?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let name = match c {
                ColType::Bool => "bool",
                ColType::Int => "int",
                ColType::Real => "real",
                ColType::Symbol => "symbol",
                ColType::Str => "str",
                ColType::Any => "any",
            };
            write!(f, "{name}")?;
        }
        write!(f, ")")?;
        if self.is_input {
            write!(f, " input")?;
        }
        write!(f, ".")
    }
}

impl fmt::Display for GroundFactAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ").")
    }
}

impl fmt::Display for ObserveAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@observe ")?;
        match &self.kind {
            ObserveKind::Hard { rel, values } => {
                write!(f, "{rel}(")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")?;
            }
            ObserveKind::Soft {
                dist,
                params,
                value,
            } => {
                write!(f, "{dist}<")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "> == {value}")?;
            }
        }
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
        }
        write!(f, ".")
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.decls {
            writeln!(f, "{d}")?;
        }
        for fa in &self.facts {
            writeln!(f, "{fa}")?;
        }
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        for o in &self.observes {
            writeln!(f, "{o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_program;

    #[test]
    fn round_trip_burglary() {
        let src = r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            Earthquake(C, Flip<0.1>) :- City(C, R).
            Trig(X, Flip<0.6>) :- Unit(X, C), Earthquake(C, 1).
            G(Geometric<0.5 | X>) :- G(X).
            R(Flip<0.5>) :- true.
        "#;
        let p1 = parse_program(src).unwrap();
        let rendered = p1.to_string();
        let p2 = parse_program(&rendered).unwrap();
        // Spans differ between the two parses; compare the rendered text,
        // which is span-insensitive and a complete invariant of the AST.
        assert_eq!(rendered, p2.to_string(), "pretty-print must be stable");
    }

    #[test]
    fn round_trip_holes() {
        let src = "H(Normal<?mu, ?>) :- Obs(H).\n";
        let p1 = parse_program(src).unwrap();
        assert_eq!(p1.to_string(), src);
        let p2 = parse_program(&p1.to_string()).unwrap();
        assert_eq!(p1.to_string(), p2.to_string());
    }

    #[test]
    fn round_trip_string_and_bool_constants() {
        let src = r#"T("he\"llo", true, -1, -2.5)."#;
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&p1.to_string()).unwrap();
        assert_eq!(p1.to_string(), p2.to_string());
        assert_eq!(p1.facts, p2.facts);
    }
}
