#![warn(missing_docs)]

//! # gdatalog-lang
//!
//! The GDatalog language front-end (§3 of the paper):
//!
//! * [`ast`] — terms, atoms, rules, programs (Defs. 3.1–3.3), including
//!   *random terms* `ψ⟨θ₁,…,θₘ | tag₁,…⟩` (tags after `|` are the explicit
//!   "tagging" device of §6.2).
//! * [`lexer`] / [`parser`] — a concrete text syntax:
//!   ```text
//!   rel City(symbol, real) input.
//!   City(gotham, 0.3).
//!   Earthquake(C, Flip<0.1>) :- City(C, R).
//!   ```
//! * [`mod@validate`] — name resolution, arity/type inference and the
//!   well-formedness conditions of Defs. 3.1–3.3 (deterministic bodies,
//!   range restriction, random terms only in intensional heads).
//! * [`acyclicity`] — the position dependency graph and the **weak
//!   acyclicity** check of Theorem 6.3.
//! * [`mod@translate`] — association of the existential Datalog program `Ĝ`
//!   (rules (3.A)/(3.B)) under either semantics:
//!   [`SemanticsMode::Grohe`] (this paper — experiments keyed per rule ×
//!   head valuation × parameters) or [`SemanticsMode::Barany`] (TODS 2017 —
//!   experiments keyed per distribution name × parameters × tags).
//! * [`simulate`] — the §6.2 program rewritings that let each semantics
//!   simulate the other.
//! * [`holes`] — free-parameter holes `Dist<?, ?name>`: placeholders in
//!   distribution parameter positions, estimated from data by the learning
//!   subsystem (`gdl fit`).

pub mod acyclicity;
pub mod ast;
pub mod holes;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod simulate;
pub mod translate;
pub mod validate;

pub use acyclicity::{weak_acyclicity, AcyclicityReport};
pub use ast::{
    AtomAst, GroundFactAst, ObserveAst, ObserveKind, Program, RelDeclAst, RuleAst, Span, TermAst,
};
pub use holes::{collect_free_params, substitute_free_params, FreeParam};
pub use parser::{parse_facts, parse_observations, parse_program};
pub use simulate::{simulate_barany_in_grohe, simulate_grohe_in_barany, BSIM_PREFIX};
pub use translate::{
    compile_observations, translate, CompiledObserve, CompiledProgram, CompiledRule,
    ExistentialHead, RuleKind, SampleSpec, SemanticsMode,
};
pub use validate::{validate, ValidatedProgram};

/// Errors produced anywhere in the language front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// Human-readable message.
    pub message: String,
    /// Source location, when known.
    pub span: Option<Span>,
}

impl LangError {
    /// An error with a location.
    pub fn at(span: Span, message: impl Into<String>) -> LangError {
        LangError {
            message: message.into(),
            span: Some(span),
        }
    }

    /// An error without a location.
    pub fn msg(message: impl Into<String>) -> LangError {
        LangError {
            message: message.into(),
            span: None,
        }
    }
}

impl std::fmt::Display for LangError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.span {
            Some(s) => write!(f, "{}:{}: {}", s.line, s.col, self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for LangError {}
