//! Abstract syntax of GDatalog programs (Defs. 3.1–3.3 of the paper).

use gdatalog_data::{ColType, Value};

/// A source location (1-based line/column plus byte offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Byte offset into the source.
    pub offset: usize,
}

/// A term (Def. 3.1): deterministic (variable or constant) or random
/// `ψ⟨params | tags⟩`.
#[derive(Debug, Clone, PartialEq)]
pub enum TermAst {
    /// A variable (identifier starting with an uppercase letter or `_`).
    Var(String),
    /// A constant.
    Const(Value),
    /// A random term `ψ⟨θ₁,…,θₘ | t₁,…,tₖ⟩`. `tags` are extra terms that
    /// participate in the experiment identity but not in the distribution —
    /// the explicit tagging device discussed in §6.2 of the paper.
    Random {
        /// Distribution name.
        dist: String,
        /// Distribution parameters (deterministic terms).
        params: Vec<TermAst>,
        /// Tags (deterministic terms); empty when not used.
        tags: Vec<TermAst>,
        /// Source location.
        span: Span,
    },
    /// A free-parameter hole `?` / `?name` in a distribution parameter
    /// position — a placeholder to be estimated from data by the learning
    /// subsystem. Programs containing holes are rejected by ordinary
    /// evaluation; `gdl fit` substitutes estimates and emits a runnable
    /// program.
    Hole {
        /// Optional hole name (`?mu` → `Some("mu")`, bare `?` → `None`).
        name: Option<String>,
        /// Source location.
        span: Span,
    },
}

impl TermAst {
    /// Whether the term is random.
    pub fn is_random(&self) -> bool {
        matches!(self, TermAst::Random { .. })
    }

    /// Variables occurring in the term (params and tags included).
    pub fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            TermAst::Var(v) => out.push(v),
            TermAst::Const(_) | TermAst::Hole { .. } => {}
            TermAst::Random { params, tags, .. } => {
                for t in params.iter().chain(tags) {
                    t.collect_vars(out);
                }
            }
        }
    }

    /// Whether the term is, or contains, a free-parameter hole.
    pub fn has_hole(&self) -> bool {
        match self {
            TermAst::Hole { .. } => true,
            TermAst::Var(_) | TermAst::Const(_) => false,
            TermAst::Random { params, tags, .. } => {
                params.iter().chain(tags).any(TermAst::has_hole)
            }
        }
    }
}

/// An atom `R(t₁, …, tₙ)` (Def. 3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct AtomAst {
    /// Relation name.
    pub rel: String,
    /// Argument terms.
    pub args: Vec<TermAst>,
    /// Source location.
    pub span: Span,
}

impl AtomAst {
    /// Whether any argument is a random term.
    pub fn is_random(&self) -> bool {
        self.args.iter().any(TermAst::is_random)
    }

    /// Variables occurring in the atom, in order of occurrence.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for a in &self.args {
            a.collect_vars(&mut out);
        }
        out
    }
}

/// A rule `head ← body` (Def. 3.3). An empty body renders as `:- true`.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleAst {
    /// Head atom (an I-atom; may contain random terms).
    pub head: AtomAst,
    /// Body atoms (deterministic).
    pub body: Vec<AtomAst>,
    /// Source location.
    pub span: Span,
}

impl RuleAst {
    /// Whether the rule is random (contains a random atom).
    pub fn is_random(&self) -> bool {
        self.head.is_random()
    }
}

/// An optional relation declaration
/// `rel Name(type, …) [input].`
#[derive(Debug, Clone, PartialEq)]
pub struct RelDeclAst {
    /// Relation name.
    pub name: String,
    /// Column types.
    pub cols: Vec<ColType>,
    /// Whether the relation is extensional (input).
    pub is_input: bool,
    /// Source location.
    pub span: Span,
}

/// What an `@observe` clause conditions on.
///
/// Conditioning follows the evidence construct of Bárány et al.'s PPDL
/// (TODS 2017): **hard** observations restrict the possible worlds to those
/// containing a ground fact, **soft** observations re-weight each world by
/// the likelihood of an observed value under a distribution whose
/// parameters flow from the world. Both renormalize the surviving mass.
#[derive(Debug, Clone, PartialEq)]
pub enum ObserveKind {
    /// `@observe R(c₁, …, cₙ).` — the ground fact must hold in the world.
    Hard {
        /// Relation name.
        rel: String,
        /// Constant tuple.
        values: Vec<Value>,
    },
    /// `@observe ψ⟨θ₁,…,θₘ⟩ == v [:- body].` — for every valuation of the
    /// body, the world's weight is multiplied by the density of `v` under
    /// `ψ⟨θ̄⟩` (a likelihood statement; `v` and the parameters may mention
    /// body variables).
    Soft {
        /// Distribution name.
        dist: String,
        /// Parameter terms (deterministic).
        params: Vec<TermAst>,
        /// The observed value term (deterministic).
        value: TermAst,
    },
}

/// One `@observe` clause: the observation plus an optional deterministic
/// body binding its variables (hard observations are ground and body-less).
#[derive(Debug, Clone, PartialEq)]
pub struct ObserveAst {
    /// Hard or soft observation.
    pub kind: ObserveKind,
    /// Body atoms (soft observations only; empty means "once").
    pub body: Vec<AtomAst>,
    /// Source location.
    pub span: Span,
}

/// A ground fact appearing in program text, e.g. `City(gotham, 0.3).`
#[derive(Debug, Clone, PartialEq)]
pub struct GroundFactAst {
    /// Relation name.
    pub rel: String,
    /// Constant values.
    pub values: Vec<Value>,
    /// Source location.
    pub span: Span,
}

/// A parsed GDatalog program: declarations, ground facts and rules.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Relation declarations (optional; missing relations are inferred).
    pub decls: Vec<RelDeclAst>,
    /// Ground facts (the fixed part of the input instance).
    pub facts: Vec<GroundFactAst>,
    /// Rules.
    pub rules: Vec<RuleAst>,
    /// `@observe` clauses (evidence the program conditions on).
    pub observes: Vec<ObserveAst>,
}

impl Program {
    /// Parses a program from text (convenience wrapper around
    /// [`crate::parser::parse_program`]).
    ///
    /// # Errors
    /// Returns the first syntax error.
    pub fn parse(src: &str) -> Result<Program, crate::LangError> {
        crate::parser::parse_program(src)
    }

    /// Whether any term of the program contains a free-parameter hole
    /// (`?` / `?name`) — such programs can be fitted but not evaluated.
    pub fn has_holes(&self) -> bool {
        let rule_holes = self.rules.iter().any(|r| {
            r.head
                .args
                .iter()
                .chain(r.body.iter().flat_map(|a| &a.args))
                .any(TermAst::has_hole)
        });
        rule_holes
            || self.observes.iter().any(|o| match &o.kind {
                crate::ast::ObserveKind::Hard { .. } => false,
                crate::ast::ObserveKind::Soft { params, value, .. } => {
                    params.iter().any(TermAst::has_hole) || value.has_hole()
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_term_detection() {
        let t = TermAst::Random {
            dist: "Flip".into(),
            params: vec![TermAst::Const(Value::real(0.5))],
            tags: vec![],
            span: Span::default(),
        };
        assert!(t.is_random());
        assert!(!TermAst::Var("X".into()).is_random());
    }

    #[test]
    fn vars_collected_from_params_and_tags() {
        let t = TermAst::Random {
            dist: "Flip".into(),
            params: vec![TermAst::Var("P".into())],
            tags: vec![TermAst::Var("T".into())],
            span: Span::default(),
        };
        let atom = AtomAst {
            rel: "R".into(),
            args: vec![TermAst::Var("X".into()), t],
            span: Span::default(),
        };
        assert_eq!(atom.vars(), vec!["X", "P", "T"]);
        assert!(atom.is_random());
    }
}
