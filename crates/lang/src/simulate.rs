//! The §6.2 program rewritings: each semantics can simulate the other.
//!
//! * [`simulate_barany_in_grohe`] — pull every sampling experiment out into
//!   a dedicated relation keyed by `(distribution, parameters, tags)`.
//!   Running the rewritten program under [`SemanticsMode::Grohe`] and
//!   projecting away the `BSim…` helper relations reproduces the Bárány
//!   et al. semantics of the original program. This generalizes the H ↦ H′
//!   example of the paper.
//! * [`simulate_grohe_in_barany`] — tag every random term with its rule
//!   index and the deterministic head arguments, so that the Bárány
//!   experiment key `(ψ, params, tags)` becomes exactly the Grohe key
//!   `(rule, head args, params)`.
//!
//! [`SemanticsMode::Grohe`]: crate::translate::SemanticsMode::Grohe

use std::collections::HashSet;

use gdatalog_data::Value;

use crate::ast::{AtomAst, Program, RuleAst, Span, TermAst};

/// Prefix of helper relations introduced by [`simulate_barany_in_grohe`];
/// project these away when comparing results.
pub const BSIM_PREFIX: &str = "BSimulation";

fn need_rel(dist: &str, m: usize, t: usize) -> String {
    format!("{BSIM_PREFIX}Need_{}_{m}_{t}", dist.replace('\'', "prime"))
}

fn res_rel(dist: &str, m: usize, t: usize) -> String {
    format!("{BSIM_PREFIX}Res_{}_{m}_{t}", dist.replace('\'', "prime"))
}

/// Rewrites `program` so that **Grohe semantics on the result simulates
/// Bárány semantics on the input** (§6.2). Helper relations are prefixed
/// with [`BSIM_PREFIX`].
pub fn simulate_barany_in_grohe(program: &Program) -> Program {
    let mut out = Program {
        decls: program.decls.clone(),
        facts: program.facts.clone(),
        rules: Vec::new(),
        observes: program.observes.clone(),
    };
    let mut sigs_done: HashSet<(String, usize, usize)> = HashSet::new();

    for rule in &program.rules {
        if !rule.is_random() {
            out.rules.push(rule.clone());
            continue;
        }
        let mut new_head_args: Vec<TermAst> = Vec::new();
        let mut extra_body: Vec<AtomAst> = Vec::new();
        let mut fresh = 0usize;
        for arg in &rule.head.args {
            match arg {
                TermAst::Random {
                    dist,
                    params,
                    tags,
                    span,
                } => {
                    let sig = (dist.clone(), params.len(), tags.len());
                    let need = need_rel(dist, params.len(), tags.len());
                    let res = res_rel(dist, params.len(), tags.len());

                    // Demand the experiment: Need(params, tags) ← body.
                    let mut need_args = params.clone();
                    need_args.extend(tags.iter().cloned());
                    out.rules.push(RuleAst {
                        head: AtomAst {
                            rel: need.clone(),
                            args: need_args.clone(),
                            span: *span,
                        },
                        body: rule.body.clone(),
                        span: *span,
                    });

                    // One sampling rule per signature:
                    // Res(P̄, T̄, ψ⟨P̄|T̄⟩) ← Need(P̄, T̄).
                    if sigs_done.insert(sig) {
                        let pvars: Vec<TermAst> = (0..params.len())
                            .map(|i| TermAst::Var(format!("BSimP{i}")))
                            .collect();
                        let tvars: Vec<TermAst> = (0..tags.len())
                            .map(|i| TermAst::Var(format!("BSimT{i}")))
                            .collect();
                        let mut res_head_args = pvars.clone();
                        res_head_args.extend(tvars.iter().cloned());
                        res_head_args.push(TermAst::Random {
                            dist: dist.clone(),
                            params: pvars.clone(),
                            tags: tvars.clone(),
                            span: *span,
                        });
                        let mut need_body_args = pvars.clone();
                        need_body_args.extend(tvars.iter().cloned());
                        out.rules.push(RuleAst {
                            head: AtomAst {
                                rel: res.clone(),
                                args: res_head_args,
                                span: *span,
                            },
                            body: vec![AtomAst {
                                rel: need.clone(),
                                args: need_body_args,
                                span: *span,
                            }],
                            span: *span,
                        });
                    }

                    // Replace the random term by a fresh variable and join
                    // against the result relation.
                    let y = format!("BSimY{fresh}");
                    fresh += 1;
                    let mut res_args = params.clone();
                    res_args.extend(tags.iter().cloned());
                    res_args.push(TermAst::Var(y.clone()));
                    extra_body.push(AtomAst {
                        rel: res,
                        args: res_args,
                        span: *span,
                    });
                    new_head_args.push(TermAst::Var(y));
                }
                other => new_head_args.push(other.clone()),
            }
        }
        let mut body = rule.body.clone();
        body.extend(extra_body);
        out.rules.push(RuleAst {
            head: AtomAst {
                rel: rule.head.rel.clone(),
                args: new_head_args,
                span: rule.head.span,
            },
            body,
            span: rule.span,
        });
    }
    out
}

/// Rewrites `program` so that **Bárány semantics on the result simulates
/// Grohe semantics on the input**: every random term is tagged with its
/// rule index and the rule's deterministic head arguments, making the
/// Bárány experiment key coincide with the Grohe one.
pub fn simulate_grohe_in_barany(program: &Program) -> Program {
    let mut out = program.clone();
    for (rix, rule) in out.rules.iter_mut().enumerate() {
        if !rule.head.is_random() {
            continue;
        }
        let det_args: Vec<TermAst> = rule
            .head
            .args
            .iter()
            .filter(|t| !t.is_random())
            .cloned()
            .collect();
        for arg in &mut rule.head.args {
            if let TermAst::Random { tags, .. } = arg {
                let mut new_tags = vec![TermAst::Const(Value::sym(&format!("grule{rix}")))];
                new_tags.extend(det_args.iter().cloned());
                new_tags.extend(tags.iter().cloned());
                *tags = new_tags;
            }
        }
        let _ = Span::default();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn h_becomes_h_prime() {
        // Program H of §6.2: R(Flip<1/2>) ← ⊤. S(Flip<1/2>) ← ⊤.
        let h = parse_program("R(Flip<0.5>) :- true. S(Flip<0.5>) :- true.").unwrap();
        let h2 = simulate_barany_in_grohe(&h);
        // Expect: 2 Need rules + 1 Res rule + 2 rewritten delivery rules.
        assert_eq!(h2.rules.len(), 5);
        let res_rules: Vec<_> = h2
            .rules
            .iter()
            .filter(|r| r.head.rel.starts_with("BSimulationRes"))
            .collect();
        assert_eq!(res_rules.len(), 1, "one shared sampling rule");
        // The rewritten R-rule now has a deterministic head.
        let r_rule = h2.rules.iter().find(|r| r.head.rel == "R").unwrap();
        assert!(!r_rule.is_random());
        assert_eq!(r_rule.body.len(), 1);
    }

    #[test]
    fn distinct_names_stay_distinct() {
        // G′0: Flip vs Flip′ must produce two sampling rules.
        let g = parse_program("R(Flip<0.5>) :- true. R(Flip'<0.5>) :- true.").unwrap();
        let g2 = simulate_barany_in_grohe(&g);
        let res_rules: Vec<_> = g2
            .rules
            .iter()
            .filter(|r| r.head.rel.starts_with("BSimulationRes"))
            .collect();
        assert_eq!(res_rules.len(), 2);
    }

    #[test]
    fn grohe_in_barany_adds_rule_tags() {
        let g =
            parse_program("Earthquake(C, Flip<0.1>) :- City(C, R). Trig(X, Flip<0.1>) :- U(X).")
                .unwrap();
        let g2 = simulate_grohe_in_barany(&g);
        for (i, rule) in g2.rules.iter().enumerate() {
            for arg in &rule.head.args {
                if let TermAst::Random { tags, .. } = arg {
                    assert!(
                        matches!(&tags[0], TermAst::Const(v) if *v == Value::sym(&format!("grule{i}"))),
                        "tag 0 must identify the rule"
                    );
                    assert!(tags.len() >= 2, "head args must be in the tags");
                }
            }
        }
    }

    #[test]
    fn deterministic_rules_untouched() {
        let g = parse_program("A(X) :- B(X).").unwrap();
        assert_eq!(simulate_barany_in_grohe(&g), g);
        assert_eq!(simulate_grohe_in_barany(&g), g);
    }

    #[test]
    fn multi_random_terms_each_get_experiments() {
        let g = parse_program("P(Flip<0.5>, Flip<0.7>) :- Q(X).").unwrap();
        let g2 = simulate_barany_in_grohe(&g);
        // Need rules: 2 (one per random term); Res rules: 1 (same signature);
        // rewritten rule: 1. Total 4.
        assert_eq!(g2.rules.len(), 4);
        let p_rule = g2.rules.iter().find(|r| r.head.rel == "P").unwrap();
        assert_eq!(p_rule.body.len(), 3, "body + two Res atoms");
    }
}
