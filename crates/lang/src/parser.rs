//! Recursive-descent parser for the GDatalog text syntax.
//!
//! Grammar (EBNF; `.` terminates every clause):
//!
//! ```text
//! program   := clause*
//! clause    := decl | rule | fact | observe
//! decl      := "rel" RelName "(" type ("," type)* ")" ["input"] "."
//! observe   := "@" "observe" (groundAtom | random "==" term [":-" body]) "."
//! type      := "bool" | "int" | "real" | "symbol" | "str" | "any"
//! rule      := atom (":-" | "←") body "."
//! body      := "true" | atom ("," atom)*
//! fact      := RelName "(" const ("," const)* ")" "."
//! atom      := RelName "(" [term ("," term)*] ")"
//! term      := Var | const | random | hole
//! random    := DistName "<" term ("," term)* ["|" term ("," term)*] ">"
//! const     := Int | Real | String | lowerIdent | "true" | "false"
//! hole      := "?" [name]
//! ```
//!
//! Identifier conventions: variables start with an uppercase letter or `_`;
//! symbol constants are lowercase identifiers; relation and distribution
//! names may be either (they are syntactically distinguished by a following
//! `(` resp. `<`).

use gdatalog_data::{ColType, Value};

use crate::ast::{
    AtomAst, GroundFactAst, ObserveAst, ObserveKind, Program, RelDeclAst, RuleAst, Span, TermAst,
};
use crate::lexer::{lex, Tok, Token};
use crate::LangError;

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<Token, LangError> {
        if self.peek() == tok {
            Ok(self.bump())
        } else {
            Err(LangError::at(
                self.span(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), LangError> {
        let sp = self.span();
        match self.bump().tok {
            Tok::UpperIdent(s) | Tok::LowerIdent(s) => Ok((s, sp)),
            other => Err(LangError::at(
                sp,
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn parse_const(&mut self) -> Result<Value, LangError> {
        let sp = self.span();
        match self.bump().tok {
            Tok::Int(i) => Ok(Value::int(i)),
            Tok::Real(x) => Ok(Value::real(x)),
            Tok::Str(s) => Ok(Value::str(&s)),
            Tok::LowerIdent(s) if s == "true" => Ok(Value::Bool(true)),
            Tok::LowerIdent(s) if s == "false" => Ok(Value::Bool(false)),
            Tok::LowerIdent(s) => Ok(Value::sym(&s)),
            other => Err(LangError::at(
                sp,
                format!("expected a constant, found {other:?}"),
            )),
        }
    }

    fn parse_term(&mut self) -> Result<TermAst, LangError> {
        let sp = self.span();
        match self.peek().clone() {
            Tok::Hole(name) => {
                self.bump();
                Ok(TermAst::Hole { name, span: sp })
            }
            Tok::UpperIdent(name) => {
                // Variable, or a random term if followed by `<`.
                if *self.peek2() == Tok::Lt {
                    self.bump(); // name
                    self.bump(); // `<`
                    let mut params = Vec::new();
                    let mut tags = Vec::new();
                    let mut in_tags = false;
                    loop {
                        let t = self.parse_term()?;
                        if t.is_random() {
                            return Err(LangError::at(
                                sp,
                                "random terms cannot be nested inside parameters",
                            ));
                        }
                        if in_tags {
                            tags.push(t);
                        } else {
                            params.push(t);
                        }
                        match self.peek() {
                            Tok::Comma => {
                                self.bump();
                            }
                            Tok::Pipe => {
                                if in_tags {
                                    return Err(LangError::at(self.span(), "duplicate `|`"));
                                }
                                in_tags = true;
                                self.bump();
                            }
                            Tok::Gt => {
                                self.bump();
                                break;
                            }
                            other => {
                                return Err(LangError::at(
                                    self.span(),
                                    format!("expected `,`, `|` or `>`, found {other:?}"),
                                ))
                            }
                        }
                    }
                    Ok(TermAst::Random {
                        dist: name,
                        params,
                        tags,
                        span: sp,
                    })
                } else {
                    self.bump();
                    Ok(TermAst::Var(name))
                }
            }
            Tok::LowerIdent(name)
                if *self.peek2() == Tok::Lt && name != "true" && name != "false" =>
            {
                // Lowercase distribution names are allowed too.
                self.bump();
                self.bump();
                let mut params = Vec::new();
                let mut tags = Vec::new();
                let mut in_tags = false;
                loop {
                    let t = self.parse_term()?;
                    if in_tags {
                        tags.push(t);
                    } else {
                        params.push(t);
                    }
                    match self.peek() {
                        Tok::Comma => {
                            self.bump();
                        }
                        Tok::Pipe => {
                            in_tags = true;
                            self.bump();
                        }
                        Tok::Gt => {
                            self.bump();
                            break;
                        }
                        other => {
                            return Err(LangError::at(
                                self.span(),
                                format!("expected `,`, `|` or `>`, found {other:?}"),
                            ))
                        }
                    }
                }
                Ok(TermAst::Random {
                    dist: name,
                    params,
                    tags,
                    span: sp,
                })
            }
            _ => Ok(TermAst::Const(self.parse_const()?)),
        }
    }

    fn parse_atom(&mut self) -> Result<AtomAst, LangError> {
        let (rel, sp) = self.ident()?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.parse_term()?);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        Ok(AtomAst {
            rel,
            args,
            span: sp,
        })
    }

    fn parse_decl(&mut self) -> Result<RelDeclAst, LangError> {
        let sp = self.span();
        self.bump(); // `rel`
        let (name, _) = self.ident()?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut cols = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let (ty_name, ty_sp) = self.ident()?;
                let ty = match ty_name.as_str() {
                    "bool" => ColType::Bool,
                    "int" => ColType::Int,
                    "real" => ColType::Real,
                    "symbol" => ColType::Symbol,
                    "str" => ColType::Str,
                    "any" => ColType::Any,
                    other => {
                        return Err(LangError::at(
                            ty_sp,
                            format!("unknown column type `{other}`"),
                        ))
                    }
                };
                cols.push(ty);
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "`)`")?;
        let mut is_input = false;
        if let Tok::LowerIdent(kw) = self.peek() {
            if kw == "input" {
                is_input = true;
                self.bump();
            }
        }
        self.expect(&Tok::Dot, "`.`")?;
        Ok(RelDeclAst {
            name,
            cols,
            is_input,
            span: sp,
        })
    }

    /// Consumes the `@observe` introducer.
    fn expect_observe_keyword(&mut self) -> Result<(), LangError> {
        self.expect(&Tok::At, "`@`")?;
        match self.peek() {
            Tok::LowerIdent(kw) if kw == "observe" => {
                self.bump();
                Ok(())
            }
            other => Err(LangError::at(
                self.span(),
                format!("expected `observe` after `@`, found {other:?}"),
            )),
        }
    }

    /// Parses the clause after `@observe`: either a hard observation (a
    /// ground atom) or a soft likelihood statement
    /// `Dist<θ̄> == value [:- body]`.
    fn parse_observe_clause(&mut self) -> Result<ObserveAst, LangError> {
        let sp = self.span();
        // Disambiguate on the token after the leading identifier: `<`
        // introduces a distribution (soft), `(` a relation atom (hard).
        let soft = matches!(self.peek(), Tok::UpperIdent(_) | Tok::LowerIdent(_))
            && *self.peek2() == Tok::Lt;
        if soft {
            let term = self.parse_term()?;
            let TermAst::Random {
                dist, params, tags, ..
            } = term
            else {
                return Err(LangError::at(sp, "expected a distribution term"));
            };
            if !tags.is_empty() {
                return Err(LangError::at(
                    sp,
                    "tags have no meaning in observations (the likelihood depends \
                     only on the parameters)",
                ));
            }
            self.expect(&Tok::EqEq, "`==`")?;
            let value = self.parse_term()?;
            if value.is_random() {
                return Err(LangError::at(
                    sp,
                    "the observed value must be deterministic",
                ));
            }
            let mut body = Vec::new();
            if *self.peek() == Tok::Arrow {
                self.bump();
                // `true` denotes the empty body, as in rules.
                let empty_body = matches!(self.peek(), Tok::LowerIdent(kw)
                    if kw == "true" && *self.peek2() != Tok::LParen);
                if empty_body {
                    self.bump();
                } else {
                    loop {
                        let atom = self.parse_atom()?;
                        if atom.is_random() {
                            return Err(LangError::at(
                                atom.span,
                                "random terms are not allowed in observation bodies",
                            ));
                        }
                        body.push(atom);
                        if *self.peek() == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
            self.expect(&Tok::Dot, "`.`")?;
            return Ok(ObserveAst {
                kind: ObserveKind::Soft {
                    dist,
                    params,
                    value,
                },
                body,
                span: sp,
            });
        }
        // Hard observation: a ground atom.
        let atom = self.parse_atom()?;
        let values: Vec<Value> = atom
            .args
            .iter()
            .map(|t| match t {
                TermAst::Const(c) => Some(c.clone()),
                _ => None,
            })
            .collect::<Option<_>>()
            .ok_or_else(|| {
                LangError::at(
                    atom.span,
                    "hard observations must be ground facts (constants only); \
                     use `Dist<θ> == value :- body` for likelihood statements",
                )
            })?;
        self.expect(&Tok::Dot, "`.`")?;
        Ok(ObserveAst {
            kind: ObserveKind::Hard {
                rel: atom.rel,
                values,
            },
            body: Vec::new(),
            span: sp,
        })
    }

    /// Parses a rule or a ground fact (disambiguated after reading the
    /// head atom: `.` means fact-or-bodyless-rule, `:-` means rule).
    fn parse_rule_or_fact(&mut self, program: &mut Program) -> Result<(), LangError> {
        let sp = self.span();
        let head = self.parse_atom()?;
        match self.peek() {
            Tok::Dot => {
                self.bump();
                // Ground atom: if all args are constants, it is a fact;
                // otherwise it is a body-less rule (which must then be safe,
                // i.e. variable-free — validation will check).
                let consts: Option<Vec<Value>> = head
                    .args
                    .iter()
                    .map(|t| match t {
                        TermAst::Const(c) => Some(c.clone()),
                        _ => None,
                    })
                    .collect();
                match consts {
                    Some(values) => program.facts.push(GroundFactAst {
                        rel: head.rel,
                        values,
                        span: sp,
                    }),
                    None => program.rules.push(RuleAst {
                        head,
                        body: vec![],
                        span: sp,
                    }),
                }
                Ok(())
            }
            Tok::Arrow => {
                self.bump();
                let mut body = Vec::new();
                // `true` (or `⊤` spelled as the keyword) denotes the empty body.
                if let Tok::LowerIdent(kw) = self.peek() {
                    if kw == "true" && *self.peek2() != Tok::LParen {
                        self.bump();
                        self.expect(&Tok::Dot, "`.`")?;
                        program.rules.push(RuleAst {
                            head,
                            body,
                            span: sp,
                        });
                        return Ok(());
                    }
                }
                loop {
                    let atom = self.parse_atom()?;
                    if atom.is_random() {
                        return Err(LangError::at(
                            atom.span,
                            "random terms are not allowed in rule bodies (Def. 3.3)",
                        ));
                    }
                    body.push(atom);
                    if *self.peek() == Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::Dot, "`.`")?;
                program.rules.push(RuleAst {
                    head,
                    body,
                    span: sp,
                });
                Ok(())
            }
            other => Err(LangError::at(
                self.span(),
                format!("expected `.` or `:-`, found {other:?}"),
            )),
        }
    }
}

/// Parses a fact-only text (one ground fact per line, same syntax as
/// program facts) into an [`gdatalog_data::Instance`] against an existing
/// catalog — the data-loading path of the `gdl` CLI.
///
/// # Errors
/// Syntax errors, unknown relations, and tuple type mismatches.
pub fn parse_facts(
    src: &str,
    catalog: &gdatalog_data::Catalog,
) -> Result<gdatalog_data::Instance, LangError> {
    let program = parse_program(src)?;
    if !program.rules.is_empty() || !program.decls.is_empty() || !program.observes.is_empty() {
        return Err(LangError::msg(
            "fact files may contain only ground facts (no rules, declarations, \
             or observations)",
        ));
    }
    let mut out = gdatalog_data::Instance::new();
    for f in &program.facts {
        let rel = catalog
            .resolve(&f.rel)
            .ok_or_else(|| LangError::at(f.span, format!("unknown relation `{}`", f.rel)))?;
        let tuple = gdatalog_data::Tuple::from(f.values.clone());
        catalog
            .check_tuple(rel, &tuple)
            .map_err(|e| LangError::at(f.span, e.to_string()))?;
        out.insert(rel, tuple);
    }
    Ok(out)
}

/// Parses a complete GDatalog program.
///
/// # Errors
/// Returns the first syntax error with its source location.
pub fn parse_program(src: &str) -> Result<Program, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut program = Program::default();
    loop {
        match p.peek() {
            Tok::Eof => break,
            Tok::At => {
                p.expect_observe_keyword()?;
                let o = p.parse_observe_clause()?;
                program.observes.push(o);
            }
            Tok::LowerIdent(kw)
                if kw == "rel" && matches!(p.peek2(), Tok::UpperIdent(_) | Tok::LowerIdent(_)) =>
            {
                let d = p.parse_decl()?;
                program.decls.push(d);
            }
            _ => p.parse_rule_or_fact(&mut program)?,
        }
    }
    Ok(program)
}

/// Parses evidence text into observation clauses — the dynamic counterpart
/// of `@observe` program clauses, used by `Evaluation::given(...)` and the
/// serving layer's `"given"` request member. The `@observe` prefix is
/// optional here: `"Alarm(h1)."` (hard) and
/// `"Normal<M, 1.0> == 2.5 :- Mu(M)."` (soft) are both accepted.
///
/// # Errors
/// Returns the first syntax error.
pub fn parse_observations(src: &str) -> Result<Vec<ObserveAst>, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    while *p.peek() != Tok::Eof {
        if *p.peek() == Tok::At {
            p.expect_observe_keyword()?;
        }
        out.push(p.parse_observe_clause()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_burglary_example() {
        // Example 3.4 of the paper, in our syntax.
        let src = r#"
            rel City(symbol, real) input.
            rel House(symbol, symbol) input.
            rel Business(symbol, symbol) input.

            Earthquake(C, Flip<0.1>) :- City(C, R).
            Unit(H, C) :- House(H, C).
            Unit(B, C) :- Business(B, C).
            Burglary(X, C, Flip<R>) :- Unit(X, C), City(C, R).
            Trig(X, Flip<0.6>) :- Unit(X, C), Earthquake(C, 1).
            Trig(X, Flip<0.9>) :- Burglary(X, C, 1).
            Alarm(X) :- Trig(X, 1).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.decls.len(), 3);
        assert_eq!(p.rules.len(), 7);
        assert!(p.rules[0].is_random());
        assert!(!p.rules[1].is_random());
        assert!(p.rules[3].is_random());
        // The Flip<R> random term carries the variable parameter.
        match &p.rules[3].head.args[2] {
            TermAst::Random { dist, params, .. } => {
                assert_eq!(dist, "Flip");
                assert_eq!(params, &vec![TermAst::Var("R".into())]);
            }
            other => panic!("expected random term, got {other:?}"),
        }
    }

    #[test]
    fn parses_facts_and_bodyless_rules() {
        let src = r#"
            City(gotham, 0.3).
            R(Flip<0.5>) :- true.
            S(Flip<0.5>).
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.facts.len(), 1);
        assert_eq!(
            p.facts[0].values,
            vec![Value::sym("gotham"), Value::real(0.3)]
        );
        assert_eq!(p.rules.len(), 2);
        assert!(p.rules[0].body.is_empty());
        assert!(p.rules[1].body.is_empty());
    }

    #[test]
    fn parses_tags_after_pipe() {
        let src = "G(Geometric<0.5 | X>) :- G(X).";
        let p = parse_program(src).unwrap();
        match &p.rules[0].head.args[0] {
            TermAst::Random { params, tags, .. } => {
                assert_eq!(params.len(), 1);
                assert_eq!(tags, &vec![TermAst::Var("X".into())]);
            }
            other => panic!("expected random term, got {other:?}"),
        }
    }

    #[test]
    fn parses_multi_param_distributions() {
        let src = "PHeight(P, Normal<Mu, Sigma2>) :- PCountry(P, C), CMoments(C, Mu, Sigma2).";
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].body.len(), 2);
    }

    #[test]
    fn rejects_random_terms_in_bodies() {
        let err = parse_program("R(X) :- Q(Flip<0.5>).").unwrap_err();
        assert!(err.message.contains("not allowed in rule bodies"));
    }

    #[test]
    fn parses_string_bool_and_negative_constants() {
        let src = r#"T("hello", true, -3, -0.5)."#;
        let p = parse_program(src).unwrap();
        assert_eq!(
            p.facts[0].values,
            vec![
                Value::str("hello"),
                Value::Bool(true),
                Value::int(-3),
                Value::real(-0.5)
            ]
        );
    }

    #[test]
    fn rejects_syntax_errors_with_location() {
        let err = parse_program("R(X :- Q(X).").unwrap_err();
        assert!(err.span.is_some());
    }

    #[test]
    fn prime_names_work_for_renamed_distributions() {
        // Program G′0 of Example 1.1 uses Flip′ — spelled Flip' here.
        let src = "R(Flip<0.5>) :- true. R(Flip'<0.5>) :- true.";
        let p = parse_program(src).unwrap();
        match &p.rules[1].head.args[0] {
            TermAst::Random { dist, .. } => assert_eq!(dist, "Flip'"),
            other => panic!("expected random term, got {other:?}"),
        }
    }

    #[test]
    fn nullary_atoms_parse() {
        let p = parse_program("Done() :- Start().").unwrap();
        assert_eq!(p.rules[0].head.args.len(), 0);
    }

    #[test]
    fn parses_hard_and_soft_observations() {
        let src = r#"
            rel Mu(real) input.
            H(Normal<M, 1.0>) :- Mu(M).
            @observe Alarm(h1).
            @observe Normal<M, 1.0> == 2.5 :- Mu(M).
            @observe Flip<0.5> == 1.
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.observes.len(), 3);
        match &p.observes[0].kind {
            ObserveKind::Hard { rel, values } => {
                assert_eq!(rel, "Alarm");
                assert_eq!(values, &vec![Value::sym("h1")]);
            }
            other => panic!("expected hard observation, got {other:?}"),
        }
        match &p.observes[1].kind {
            ObserveKind::Soft { dist, value, .. } => {
                assert_eq!(dist, "Normal");
                assert_eq!(value, &TermAst::Const(Value::real(2.5)));
            }
            other => panic!("expected soft observation, got {other:?}"),
        }
        assert_eq!(p.observes[1].body.len(), 1);
        assert!(p.observes[2].body.is_empty());
        // Pretty-printing round-trips observations too (spans differ, so
        // compare the rendered text, a span-insensitive AST invariant).
        let again = parse_program(&p.to_string()).unwrap();
        assert_eq!(p.to_string(), again.to_string());
        assert_eq!(again.observes.len(), 3);
    }

    #[test]
    fn parse_observations_accepts_optional_prefix() {
        let obs = parse_observations("Alarm(h1). @observe Flip<0.5> == 1.").unwrap();
        assert_eq!(obs.len(), 2);
        assert!(matches!(obs[0].kind, ObserveKind::Hard { .. }));
        assert!(matches!(obs[1].kind, ObserveKind::Soft { .. }));
    }

    #[test]
    fn rejects_malformed_observations() {
        // Non-ground hard observation.
        assert!(parse_program("@observe Alarm(X).")
            .unwrap_err()
            .span
            .is_some());
        // Random observed value.
        assert!(parse_program("@observe Flip<0.5> == Flip<0.5>.").is_err());
        // Tags in the likelihood term.
        assert!(parse_program("@observe Flip<0.5 | 1> == 1.").is_err());
        // Missing `==`.
        assert!(parse_program("@observe Flip<0.5>.").is_err());
        // `@` without `observe`.
        assert!(parse_program("@foo Alarm(h1).").is_err());
    }

    #[test]
    fn parses_free_parameter_holes() {
        let p = parse_program("H(Normal<?mu, ?>) :- true.").unwrap();
        match &p.rules[0].head.args[0] {
            TermAst::Random { params, .. } => {
                assert_eq!(
                    params[0],
                    TermAst::Hole {
                        name: Some("mu".into()),
                        span: Span {
                            line: 1,
                            col: 10,
                            offset: 9
                        }
                    }
                );
                assert!(matches!(params[1], TermAst::Hole { name: None, .. }));
            }
            other => panic!("expected random term, got {other:?}"),
        }
        assert!(p.has_holes());
        assert!(!parse_program("H(Normal<0.0, 1.0>) :- true.")
            .unwrap()
            .has_holes());
    }

    #[test]
    fn parse_facts_loads_instances() {
        use gdatalog_data::{Catalog, ColType, RelationKind};
        let mut cat = Catalog::new();
        let city = cat
            .declare_named(
                "City",
                vec![ColType::Symbol, ColType::Real],
                RelationKind::Extensional,
            )
            .unwrap();
        let inst = parse_facts("City(gotham, 0.3).\nCity(metropolis, 0.1).", &cat).unwrap();
        assert_eq!(inst.relation_len(city), 2);
        // Rules are rejected in fact files.
        assert!(parse_facts("A(X) :- B(X).", &cat).is_err());
        // Unknown relations are rejected.
        assert!(parse_facts("Town(x).", &cat).is_err());
        // Type errors are rejected.
        assert!(parse_facts("City(1, 0.3).", &cat).is_err());
    }
}
