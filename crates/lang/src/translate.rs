//! Association of the existential Datalog program `Ĝ` to a GDatalog
//! program `G` (§3.2 of the paper, rules (3.A)/(3.B)), under either
//! semantics.
//!
//! For a random rule
//! `R(x₁,…,xₙ, ψ⟨p₁,…,pₘ⟩) ← body(x̄)`
//! the translation produces
//!
//! * an **existential rule** (3.A)
//!   `∃y: Ri(x₁,…,xₙ, p₁,…,pₘ, y) ← body(x̄)`, and
//! * a **delivery rule** (3.B)
//!   `R(x₁,…,xₙ, y) ← body(x̄), Ri(x₁,…,xₙ, p₁,…,pₘ, y)`,
//!
//! where `Ri` is a fresh auxiliary relation recording the sampling
//! experiment. The *key* columns of `Ri` (everything but `y`) define the
//! induced functional dependency `FD(φ̂)` (§3.5, Lemma 3.10) and the
//! sample-once discipline: the existential rule is applicable only while no
//! `Ri` fact with the same key exists.
//!
//! [`SemanticsMode::Grohe`] keys experiments per **rule** (fresh `Ri` per
//! source rule, key = deterministic head args + parameters + tags).
//! [`SemanticsMode::Barany`] keys experiments per **distribution name**
//! (one shared `Result_ψ` relation per distribution signature, key =
//! parameters + tags, as in Bárány et al. TODS 2017) — producing exactly the
//! behavioral differences discussed in Example 1.1 and §6.2.
//!
//! Rules whose head carries several random terms are translated with a
//! single joint auxiliary relation holding one outcome column per random
//! term under `Grohe` (the product-density construction the paper sketches
//! after Def. 3.2), and with one experiment per random term under `Barany`.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use gdatalog_data::{
    Catalog, ColType, Fact, FunctionalDependency, Instance, RelId, RelationKind, Tuple, Value,
};
use gdatalog_datalog::{Atom as DlAtom, Term as DlTerm};
use gdatalog_dist::{ParamDist, Registry};

use crate::acyclicity::{weak_acyclicity, AcyclicityReport};
use crate::ast::{ObserveAst, ObserveKind, Span, TermAst};
use crate::validate::{check_observe, rule_vars, ValidatedProgram};
use crate::LangError;

/// Which sample-once discipline to compile (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemanticsMode {
    /// This paper's semantics: one experiment per rule × head valuation ×
    /// parameters.
    Grohe,
    /// Bárány et al. (TODS 2017): one experiment per distribution name ×
    /// parameters × tags.
    Barany,
}

impl fmt::Display for SemanticsMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsMode::Grohe => write!(f, "Grohe"),
            SemanticsMode::Barany => write!(f, "Barany"),
        }
    }
}

/// One sampling slot of an existential rule: the distribution and the terms
/// (over the rule's variables) that evaluate to its parameters.
#[derive(Clone)]
pub struct SampleSpec {
    /// The parameterized distribution ψ.
    pub dist: Arc<dyn ParamDist>,
    /// Parameter terms (evaluated under the body valuation to obtain θ).
    pub param_terms: Vec<DlTerm>,
}

impl fmt::Debug for SampleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SampleSpec({}, {:?})",
            self.dist.name(),
            self.param_terms
        )
    }
}

/// The head of an existential rule (3.A): the auxiliary relation, its key
/// terms, and the sampling slots filling the outcome columns.
#[derive(Debug, Clone)]
pub struct ExistentialHead {
    /// The auxiliary relation `Ri`.
    pub aux_rel: RelId,
    /// Key terms; the aux tuple is `key ++ outcomes`.
    pub key_terms: Vec<DlTerm>,
    /// One sampler per outcome column.
    pub samples: Vec<SampleSpec>,
}

/// One compiled observation: evidence the evaluation conditions on, as
/// produced from `@observe` program clauses (at translation time) or from
/// dynamic evidence text ([`compile_observations`]).
///
/// The conditional semantics is the one of Bárány et al.'s PPDL and the
/// companion PPDB paper (Grohe et al.): a world's prior weight is
/// multiplied by the indicator of every hard observation and by the
/// likelihood of every soft observation (the density of the observed value
/// under the distribution, once per valuation of the observation body),
/// and the surviving mass is renormalized.
#[derive(Debug, Clone)]
pub enum CompiledObserve {
    /// The world must contain this ground fact.
    Hard {
        /// The observed fact.
        fact: gdatalog_data::Fact,
    },
    /// For every valuation of `body` over the world, multiply the world's
    /// weight by the density of `value_term` under the distribution.
    Soft {
        /// Deterministic body atoms binding the observation's variables.
        body: Vec<DlAtom>,
        /// Number of body variables.
        n_vars: usize,
        /// The distribution and its parameter terms.
        sample: SampleSpec,
        /// The observed value (evaluated under the body valuation).
        value_term: DlTerm,
    },
}

/// A compiled rule is either deterministic (including the delivery rules
/// (3.B)) or existential (3.A).
#[derive(Debug, Clone)]
pub enum RuleKind {
    /// Ordinary Datalog rule; fires by inserting the head fact.
    Deterministic {
        /// The head atom.
        head: DlAtom,
    },
    /// Existential rule; fires by sampling and inserting an aux fact.
    Existential(ExistentialHead),
}

/// One rule of the compiled Datalog∃ program `Ĝ`.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// Stable rule id (index into [`CompiledProgram::rules`]).
    pub id: usize,
    /// Body atoms (all deterministic).
    pub body: Vec<DlAtom>,
    /// Number of rule-local variables (body vars + outcome vars).
    pub n_vars: usize,
    /// Deterministic or existential.
    pub kind: RuleKind,
    /// Index of the source rule in the validated program (delivery rules
    /// share the index of the random rule they originate from).
    pub source_rule: usize,
    /// Source span for diagnostics.
    pub span: Span,
}

impl CompiledRule {
    /// Whether the rule is existential.
    pub fn is_existential(&self) -> bool {
        matches!(self.kind, RuleKind::Existential(_))
    }
}

/// The compiled program: catalog (now including auxiliary relations), the
/// rules of `Ĝ`, the induced FDs, and the acyclicity analysis.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Schema `S = E ∪ I ∪ {Ri}`.
    pub catalog: Catalog,
    /// Distribution family Ψ.
    pub registry: Arc<Registry>,
    /// Rules of the associated Datalog∃ program.
    pub rules: Vec<CompiledRule>,
    /// Which semantics the auxiliary keys implement.
    pub mode: SemanticsMode,
    /// Ground facts from the program text.
    pub initial_instance: Instance,
    /// Non-auxiliary relations (the schema of final results, Remark 4.9).
    pub output_relations: Vec<RelId>,
    /// Auxiliary relations created by the translation.
    pub aux_relations: Vec<RelId>,
    /// The induced functional dependencies `FD(φ̂)` (§3.5).
    pub fds: Vec<FunctionalDependency>,
    /// Weak-acyclicity analysis of the source program (Thm. 6.3).
    pub acyclicity: AcyclicityReport,
    /// Compiled `@observe` clauses — evidence every evaluation of this
    /// program conditions on (extendable per request via
    /// `Evaluation::given`).
    pub observes: Vec<CompiledObserve>,
}

impl CompiledProgram {
    /// Whether the source program is weakly acyclic (hence terminating,
    /// Theorem 6.3).
    pub fn weakly_acyclic(&self) -> bool {
        self.acyclicity.weakly_acyclic
    }

    /// Renders the associated Datalog∃ program `Ĝ` in a readable notation
    /// mirroring rules (3.A)/(3.B) of the paper:
    ///
    /// ```text
    /// ∃y0: @exp0_R(0.5; y0) ← ⊤                      [rule 0, from source rule 0]
    /// R(y0) ← @exp0_R(0.5, y0)                        [rule 1, from source rule 0]
    /// ```
    pub fn render_existential_program(&self) -> String {
        use std::fmt::Write as _;
        let term = |t: &DlTerm| -> String {
            match t {
                DlTerm::Var(v) => format!("v{v}"),
                DlTerm::Const(c) => c.to_string(),
            }
        };
        let atom = |a: &gdatalog_datalog::Atom| -> String {
            let args: Vec<String> = a.args.iter().map(&term).collect();
            format!("{}({})", self.catalog.name(a.rel), args.join(", "))
        };
        let mut out = String::new();
        for rule in &self.rules {
            let body = if rule.body.is_empty() {
                "⊤".to_string()
            } else {
                rule.body.iter().map(&atom).collect::<Vec<_>>().join(", ")
            };
            match &rule.kind {
                RuleKind::Deterministic { head } => {
                    let _ = writeln!(
                        out,
                        "{} ← {}    [rule {}, from source rule {}]",
                        atom(head),
                        body,
                        rule.id,
                        rule.source_rule
                    );
                }
                RuleKind::Existential(e) => {
                    let ys: Vec<String> = (0..e.samples.len()).map(|j| format!("y{j}")).collect();
                    let keys: Vec<String> = e.key_terms.iter().map(&term).collect();
                    let dists: Vec<String> = e
                        .samples
                        .iter()
                        .map(|s| {
                            let ps: Vec<String> = s.param_terms.iter().map(&term).collect();
                            format!("{}⟨{}⟩", s.dist.name(), ps.join(", "))
                        })
                        .collect();
                    let _ = writeln!(
                        out,
                        "∃{}: {}({}; {}) ← {}    [rule {}, samples {}, from source rule {}]",
                        ys.join(", "),
                        self.catalog.name(e.aux_rel),
                        keys.join(", "),
                        ys.join(", "),
                        body,
                        rule.id,
                        dists.join(" × "),
                        rule.source_rule
                    );
                }
            }
        }
        out
    }

    /// Whether every distribution used by the program is discrete — the
    /// precondition for exact chase-tree enumeration.
    pub fn all_discrete(&self) -> bool {
        self.rules.iter().all(|r| match &r.kind {
            RuleKind::Deterministic { .. } => true,
            RuleKind::Existential(e) => e.samples.iter().all(|s| s.dist.is_discrete()),
        })
    }

    /// Restricts an instance to the output schema (drops aux relations).
    pub fn project_output(&self, instance: &Instance) -> Instance {
        let catalog = &self.catalog;
        instance.project_relations(|rel| catalog.decl(rel).kind() != RelationKind::Auxiliary)
    }

    /// Whether the program carries `@observe` clauses (so every evaluation
    /// is conditional).
    pub fn has_observes(&self) -> bool {
        !self.observes.is_empty()
    }
}

/// Term-level helper: converts a deterministic AST term to a Datalog term
/// under a variable numbering.
fn lower_term(
    t: &TermAst,
    var_ix: &HashMap<String, usize>,
    span: Span,
) -> Result<DlTerm, LangError> {
    match t {
        TermAst::Var(v) => var_ix
            .get(v)
            .map(|&i| DlTerm::Var(i))
            .ok_or_else(|| LangError::at(span, format!("unbound variable `{v}`"))),
        TermAst::Const(c) => Ok(DlTerm::Const(c.clone())),
        TermAst::Random { .. } => Err(LangError::at(
            span,
            "random term in a deterministic position",
        )),
        TermAst::Hole { name, span: hsp } => Err(LangError::at(
            *hsp,
            format!(
                "free parameter `?{}` cannot be evaluated; estimate it from data \
                 with `gdl fit` first",
                name.as_deref().unwrap_or("")
            ),
        )),
    }
}

/// Lowers one (already checked) observation clause against a catalog and
/// distribution family.
fn lower_observe(
    o: &ObserveAst,
    catalog: &Catalog,
    registry: &Registry,
) -> Result<CompiledObserve, LangError> {
    // Observations may only reference the output schema. Auxiliary
    // experiment relations are an implementation detail, and — decisive
    // for correctness — the Monte-Carlo backend weighs worlds after the
    // aux projection while exact enumeration weighs them before it, so an
    // aux reference would make the two backends disagree. (The text
    // parser cannot produce `@…` names; this guards programmatically
    // built ASTs.)
    let require_output = |name: &str, span: Span| -> Result<RelId, LangError> {
        let rel = catalog
            .resolve(name)
            .ok_or_else(|| LangError::at(span, format!("unknown relation `{name}`")))?;
        if catalog.decl(rel).kind() == RelationKind::Auxiliary {
            return Err(LangError::at(
                span,
                format!("observations cannot reference the auxiliary relation `{name}`"),
            ));
        }
        Ok(rel)
    };
    match &o.kind {
        ObserveKind::Hard { rel, values } => {
            let rel_id = require_output(rel, o.span)?;
            let tuple = Tuple::from(values.clone());
            catalog
                .check_tuple(rel_id, &tuple)
                .map_err(|e| LangError::at(o.span, e.to_string()))?;
            Ok(CompiledObserve::Hard {
                fact: Fact::new(rel_id, tuple),
            })
        }
        ObserveKind::Soft {
            dist,
            params,
            value,
        } => {
            // Body variables in first-use order, as for rules.
            let mut vars: Vec<String> = Vec::new();
            for a in &o.body {
                for v in a.vars() {
                    if !vars.iter().any(|s| s == v) {
                        vars.push(v.to_string());
                    }
                }
            }
            let var_ix: HashMap<String, usize> = vars
                .iter()
                .enumerate()
                .map(|(i, v)| (v.clone(), i))
                .collect();
            let body = o
                .body
                .iter()
                .map(|a| {
                    let rel = require_output(&a.rel, a.span)?;
                    let arity = catalog.decl(rel).arity();
                    if arity != a.args.len() {
                        return Err(LangError::at(
                            a.span,
                            format!(
                                "relation `{}` has arity {arity}, found {} argument(s)",
                                a.rel,
                                a.args.len()
                            ),
                        ));
                    }
                    let args = a
                        .args
                        .iter()
                        .map(|t| lower_term(t, &var_ix, a.span))
                        .collect::<Result<Vec<_>, _>>()?;
                    Ok(DlAtom::new(rel, args))
                })
                .collect::<Result<Vec<_>, LangError>>()?;
            let d = registry
                .get(dist)
                .ok_or_else(|| LangError::at(o.span, format!("unknown distribution `{dist}`")))?
                .clone();
            let param_terms = params
                .iter()
                .map(|p| lower_term(p, &var_ix, o.span))
                .collect::<Result<Vec<_>, _>>()?;
            let value_term = lower_term(value, &var_ix, o.span)?;
            Ok(CompiledObserve::Soft {
                body,
                n_vars: vars.len(),
                sample: SampleSpec {
                    dist: d,
                    param_terms,
                },
                value_term,
            })
        }
    }
}

/// Compiles **dynamic evidence text** against an already-compiled program:
/// the per-request counterpart of `@observe` program clauses, used by
/// `Evaluation::given(...)`, the serving layer's `"given"` request member
/// and `gdl query --given`. Accepts the same statements with the
/// `@observe` prefix optional (`"Alarm(h1)."`,
/// `"Normal<M, 1.0> == 2.5 :- Mu(M)."`).
///
/// # Errors
/// Syntax errors, unknown relations/distributions, arity and type
/// mismatches, unbound observation variables.
pub fn compile_observations(
    program: &CompiledProgram,
    src: &str,
) -> Result<Vec<CompiledObserve>, LangError> {
    let parsed = crate::parser::parse_observations(src)?;
    parsed
        .iter()
        .map(|o| {
            check_observe(o, &program.registry)?;
            lower_observe(o, &program.catalog, &program.registry)
        })
        .collect()
}

/// Translates a validated GDatalog program into its associated Datalog∃
/// program `Ĝ` (§3.2) under the chosen semantics.
///
/// # Errors
/// Returns a [`LangError`] on internal inconsistencies (which validation
/// should have ruled out) or on auxiliary-relation name clashes.
pub fn translate(
    validated: &ValidatedProgram,
    mode: SemanticsMode,
) -> Result<CompiledProgram, LangError> {
    // A program with free-parameter holes has no semantics to evaluate.
    // Reject it here — before any chase machinery — with an error that
    // names the relation and parameter position of the first hole, so
    // `gdl query`/`gdl serve` report *what* is missing and *where*.
    if let Some(fp) = validated.free_params.first() {
        let more = match validated.free_params.len() {
            1 => String::new(),
            n => format!(" (and {} more)", n - 1),
        };
        return Err(LangError::at(
            fp.span,
            format!(
                "program has free parameter `?{}` at parameter {} of `{}` in the \
                 head of `{}`{more}; estimate it from data with \
                 `gdl fit <program> <data>` before evaluating",
                fp.name.as_deref().unwrap_or(""),
                fp.param_index,
                fp.dist,
                fp.rel,
            ),
        ));
    }
    let acyclicity = weak_acyclicity(validated);
    let mut catalog = validated.catalog.clone();
    let registry = validated.registry.clone();
    let mut rules: Vec<CompiledRule> = Vec::new();
    let mut fds: Vec<FunctionalDependency> = Vec::new();
    let mut aux_relations: Vec<RelId> = Vec::new();
    // Bárány mode: shared aux relation per (dist name, n_params, n_tags).
    let mut shared_aux: HashMap<(String, usize, usize), RelId> = HashMap::new();

    for (rix, rule) in validated.program.rules.iter().enumerate() {
        let vars = rule_vars(&rule.head, &rule.body);
        let var_ix: HashMap<String, usize> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i))
            .collect();
        let n_body_vars = vars.len();

        // Lower the body (shared by all rules generated from this rule).
        let body: Vec<DlAtom> = rule
            .body
            .iter()
            .map(|a| {
                let rel = catalog
                    .require(&a.rel)
                    .map_err(|e| LangError::at(a.span, e.to_string()))?;
                let args = a
                    .args
                    .iter()
                    .map(|t| lower_term(t, &var_ix, a.span))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(DlAtom::new(rel, args))
            })
            .collect::<Result<Vec<_>, LangError>>()?;

        let head_rel = catalog
            .require(&rule.head.rel)
            .map_err(|e| LangError::at(rule.head.span, e.to_string()))?;

        // Split the head into deterministic terms and random slots.
        let mut det_terms: Vec<(usize, DlTerm)> = Vec::new(); // (head col, term)
        let mut randoms: Vec<(usize, &TermAst)> = Vec::new();
        for (i, t) in rule.head.args.iter().enumerate() {
            if t.is_random() {
                randoms.push((i, t));
            } else {
                det_terms.push((i, lower_term(t, &var_ix, rule.head.span)?));
            }
        }

        if randoms.is_empty() {
            let head_args = det_terms.into_iter().map(|(_, t)| t).collect();
            rules.push(CompiledRule {
                id: rules.len(),
                body,
                n_vars: n_body_vars,
                kind: RuleKind::Deterministic {
                    head: DlAtom::new(head_rel, head_args),
                },
                source_rule: rix,
                span: rule.span,
            });
            continue;
        }

        // Random rule. Gather per-random-term data.
        struct Rnd {
            head_col: usize,
            dist: Arc<dyn ParamDist>,
            param_terms: Vec<DlTerm>,
            tag_terms: Vec<DlTerm>,
        }
        let mut rnds: Vec<Rnd> = Vec::new();
        for (col, t) in &randoms {
            let TermAst::Random {
                dist,
                params,
                tags,
                span,
            } = t
            else {
                unreachable!("filtered to random terms");
            };
            let d = registry
                .get(dist)
                .ok_or_else(|| LangError::at(*span, format!("unknown distribution `{dist}`")))?
                .clone();
            let param_terms = params
                .iter()
                .map(|p| lower_term(p, &var_ix, *span))
                .collect::<Result<Vec<_>, _>>()?;
            let tag_terms = tags
                .iter()
                .map(|p| lower_term(p, &var_ix, *span))
                .collect::<Result<Vec<_>, _>>()?;
            rnds.push(Rnd {
                head_col: *col,
                dist: d,
                param_terms,
                tag_terms,
            });
        }

        // Outcome variables (fresh, appended after the body variables).
        let outcome_vars: Vec<usize> = (0..rnds.len()).map(|j| n_body_vars + j).collect();

        match mode {
            SemanticsMode::Grohe => {
                // One joint aux relation per source rule:
                // key = det head args ++ (params ++ tags per random term);
                // outcomes = one column per random term.
                let mut key_terms: Vec<DlTerm> = det_terms.iter().map(|(_, t)| t.clone()).collect();
                for r in &rnds {
                    key_terms.extend(r.param_terms.iter().cloned());
                    key_terms.extend(r.tag_terms.iter().cloned());
                }
                let mut cols = vec![ColType::Any; key_terms.len()];
                cols.extend(rnds.iter().map(|r| r.dist.output_type()));
                let aux_name = format!("@exp{rix}_{}", rule.head.rel);
                let aux_rel = catalog
                    .declare_named(&aux_name, cols, RelationKind::Auxiliary)
                    .map_err(|e| LangError::at(rule.span, e.to_string()))?;
                aux_relations.push(aux_rel);
                let arity = key_terms.len() + rnds.len();
                fds.push(FunctionalDependency::new(
                    aux_rel,
                    (0..key_terms.len()).collect(),
                    (key_terms.len()..arity).collect(),
                ));

                // (3.A) existential rule.
                rules.push(CompiledRule {
                    id: rules.len(),
                    body: body.clone(),
                    n_vars: n_body_vars,
                    kind: RuleKind::Existential(ExistentialHead {
                        aux_rel,
                        key_terms: key_terms.clone(),
                        samples: rnds
                            .iter()
                            .map(|r| SampleSpec {
                                dist: r.dist.clone(),
                                param_terms: r.param_terms.clone(),
                            })
                            .collect(),
                    }),
                    source_rule: rix,
                    span: rule.span,
                });

                // (3.B) delivery rule.
                let mut delivery_body = body.clone();
                let mut aux_args = key_terms;
                aux_args.extend(outcome_vars.iter().map(|&v| DlTerm::Var(v)));
                delivery_body.push(DlAtom::new(aux_rel, aux_args));
                let mut head_args: Vec<DlTerm> =
                    vec![DlTerm::Const(Value::int(0)); rule.head.args.len()];
                for (col, t) in &det_terms {
                    head_args[*col] = t.clone();
                }
                for (j, r) in rnds.iter().enumerate() {
                    head_args[r.head_col] = DlTerm::Var(outcome_vars[j]);
                }
                rules.push(CompiledRule {
                    id: rules.len(),
                    body: delivery_body,
                    n_vars: n_body_vars + rnds.len(),
                    kind: RuleKind::Deterministic {
                        head: DlAtom::new(head_rel, head_args),
                    },
                    source_rule: rix,
                    span: rule.span,
                });
            }
            SemanticsMode::Barany => {
                // One experiment per random term, keyed by the distribution
                // signature. Existential rules (3.A), one per random term.
                let mut aux_atoms: Vec<DlAtom> = Vec::new();
                for (j, r) in rnds.iter().enumerate() {
                    let sig = (
                        r.dist.name().to_string(),
                        r.param_terms.len(),
                        r.tag_terms.len(),
                    );
                    let aux_rel = match shared_aux.get(&sig) {
                        Some(&id) => id,
                        None => {
                            let mut cols =
                                vec![ColType::Any; r.param_terms.len() + r.tag_terms.len()];
                            cols.push(r.dist.output_type());
                            let aux_name = format!(
                                "@res_{}_{}_{}",
                                r.dist.name(),
                                r.param_terms.len(),
                                r.tag_terms.len()
                            );
                            let id = catalog
                                .declare_named(&aux_name, cols, RelationKind::Auxiliary)
                                .map_err(|e| LangError::at(rule.span, e.to_string()))?;
                            aux_relations.push(id);
                            let keylen = r.param_terms.len() + r.tag_terms.len();
                            fds.push(FunctionalDependency::new(
                                id,
                                (0..keylen).collect(),
                                vec![keylen],
                            ));
                            shared_aux.insert(sig, id);
                            id
                        }
                    };
                    let mut key_terms = r.param_terms.clone();
                    key_terms.extend(r.tag_terms.iter().cloned());
                    rules.push(CompiledRule {
                        id: rules.len(),
                        body: body.clone(),
                        n_vars: n_body_vars,
                        kind: RuleKind::Existential(ExistentialHead {
                            aux_rel,
                            key_terms: key_terms.clone(),
                            samples: vec![SampleSpec {
                                dist: r.dist.clone(),
                                param_terms: r.param_terms.clone(),
                            }],
                        }),
                        source_rule: rix,
                        span: rule.span,
                    });
                    let mut aux_args = key_terms;
                    aux_args.push(DlTerm::Var(outcome_vars[j]));
                    aux_atoms.push(DlAtom::new(aux_rel, aux_args));
                }
                // (3.B) delivery rule joining all experiments.
                let mut delivery_body = body.clone();
                delivery_body.extend(aux_atoms);
                let mut head_args: Vec<DlTerm> =
                    vec![DlTerm::Const(Value::int(0)); rule.head.args.len()];
                for (col, t) in &det_terms {
                    head_args[*col] = t.clone();
                }
                for (j, r) in rnds.iter().enumerate() {
                    head_args[r.head_col] = DlTerm::Var(outcome_vars[j]);
                }
                rules.push(CompiledRule {
                    id: rules.len(),
                    body: delivery_body,
                    n_vars: n_body_vars + rnds.len(),
                    kind: RuleKind::Deterministic {
                        head: DlAtom::new(head_rel, head_args),
                    },
                    source_rule: rix,
                    span: rule.span,
                });
            }
        }
    }

    let output_relations = catalog
        .iter()
        .filter(|(_, d)| d.kind() != RelationKind::Auxiliary)
        .map(|(id, _)| id)
        .collect();

    // Lower the program's own `@observe` clauses against the final catalog
    // (validation already checked their well-formedness).
    let observes = validated
        .program
        .observes
        .iter()
        .map(|o| lower_observe(o, &catalog, &registry))
        .collect::<Result<Vec<_>, _>>()?;

    Ok(CompiledProgram {
        catalog,
        registry,
        rules,
        mode,
        initial_instance: validated.initial_instance.clone(),
        output_relations,
        aux_relations,
        fds,
        acyclicity,
        observes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::validate::validate;

    fn compile(src: &str, mode: SemanticsMode) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, mode).unwrap()
    }

    #[test]
    fn holed_programs_rejected_with_location() {
        let v = validate(
            parse_program("H(Normal<?mu, ?>) :- Obs(X).").unwrap(),
            Arc::new(Registry::standard()),
        )
        .unwrap();
        let err = translate(&v, SemanticsMode::Grohe).unwrap_err();
        assert!(err.message.contains("free parameter `?mu`"), "{err}");
        assert!(err.message.contains("parameter 0 of `Normal`"), "{err}");
        assert!(err.message.contains("head of `H`"), "{err}");
        assert!(err.message.contains("and 1 more"), "{err}");
        assert!(err.message.contains("gdl fit"), "{err}");
        assert!(err.span.is_some());
    }

    #[test]
    fn deterministic_rules_pass_through() {
        let c = compile("Alarm(X) :- Trig(X, 1).", SemanticsMode::Grohe);
        assert_eq!(c.rules.len(), 1);
        assert!(!c.rules[0].is_existential());
        assert!(c.aux_relations.is_empty());
    }

    #[test]
    fn random_rule_splits_into_3a_and_3b() {
        let c = compile(
            "Earthquake(C, Flip<0.1>) :- City(C, R).",
            SemanticsMode::Grohe,
        );
        assert_eq!(c.rules.len(), 2);
        assert!(c.rules[0].is_existential());
        assert!(!c.rules[1].is_existential());
        assert_eq!(c.aux_relations.len(), 1);
        // Aux key: deterministic head arg C plus param 0.1 → arity 3 with
        // one outcome column.
        let aux = c.aux_relations[0];
        assert_eq!(c.catalog.decl(aux).arity(), 3);
        assert_eq!(c.fds.len(), 1);
        assert_eq!(c.fds[0].lhs, vec![0, 1]);
        assert_eq!(c.fds[0].rhs, vec![2]);
        // Delivery rule body = original body + aux atom.
        assert_eq!(c.rules[1].body.len(), 2);
    }

    #[test]
    fn grohe_gives_each_rule_its_own_experiment() {
        // Program G0 of Example 1.1.
        let c = compile(
            "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
            SemanticsMode::Grohe,
        );
        assert_eq!(c.aux_relations.len(), 2, "two rules → two experiments");
    }

    #[test]
    fn barany_shares_experiments_by_distribution() {
        let c = compile(
            "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
            SemanticsMode::Barany,
        );
        assert_eq!(c.aux_relations.len(), 1, "same distribution → shared");
        // But a renamed distribution gets its own relation (G′0).
        let c2 = compile(
            "R(Flip<0.5>) :- true. R(Bernoulli<0.5>) :- true.",
            SemanticsMode::Barany,
        );
        assert_eq!(c2.aux_relations.len(), 2);
    }

    #[test]
    fn multi_random_head_uses_joint_aux_in_grohe() {
        let c = compile(
            "P(Flip<0.5>, Normal<0.0, 1.0>) :- Seed(X).",
            SemanticsMode::Grohe,
        );
        // 1 existential + 1 delivery.
        assert_eq!(c.rules.len(), 2);
        match &c.rules[0].kind {
            RuleKind::Existential(e) => {
                assert_eq!(e.samples.len(), 2);
                assert_eq!(e.samples[0].dist.name(), "Flip");
                assert_eq!(e.samples[1].dist.name(), "Normal");
            }
            other => panic!("expected existential, got {other:?}"),
        }
    }

    #[test]
    fn multi_random_head_uses_separate_experiments_in_barany() {
        let c = compile(
            "P(Flip<0.5>, Normal<0.0, 1.0>) :- Seed(X).",
            SemanticsMode::Barany,
        );
        // 2 existential + 1 delivery.
        assert_eq!(c.rules.len(), 3);
        assert_eq!(c.rules.iter().filter(|r| r.is_existential()).count(), 2);
    }

    #[test]
    fn output_projection_drops_aux() {
        let c = compile("R(Flip<0.5>) :- true.", SemanticsMode::Grohe);
        let mut inst = Instance::new();
        let aux = c.aux_relations[0];
        let r = c.catalog.require("R").unwrap();
        inst.insert(aux, gdatalog_data::tuple![0.5, 1i64]);
        inst.insert(r, gdatalog_data::tuple![1i64]);
        let out = c.project_output(&inst);
        assert_eq!(out.len(), 1);
        assert!(out.contains(r, &gdatalog_data::tuple![1i64]));
    }

    #[test]
    fn all_discrete_detection() {
        assert!(compile("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).all_discrete());
        assert!(!compile("R(Normal<0.0, 1.0>) :- true.", SemanticsMode::Grohe).all_discrete());
    }

    #[test]
    fn tags_enter_the_aux_key() {
        let c = compile("G(Geometric<0.5 | X>) :- Seed(X).", SemanticsMode::Grohe);
        let aux = c.aux_relations[0];
        // key = param 0.5 + tag X → 2 key cols + outcome.
        assert_eq!(c.catalog.decl(aux).arity(), 3);
    }

    #[test]
    fn observations_cannot_reference_auxiliary_relations() {
        // The text parser cannot spell `@…` names, but programmatically
        // built ASTs could; the lowering must refuse them, because exact
        // and Monte-Carlo backends weigh worlds on opposite sides of the
        // aux projection.
        let c = compile("R(Flip<0.5>) :- true.", SemanticsMode::Grohe);
        let aux_name = c.catalog.name(c.aux_relations[0]).to_string();
        let hard = ObserveAst {
            kind: crate::ast::ObserveKind::Hard {
                rel: aux_name.clone(),
                values: vec![Value::real(0.5), Value::int(1)],
            },
            body: Vec::new(),
            span: Span::default(),
        };
        let err = lower_observe(&hard, &c.catalog, &c.registry).unwrap_err();
        assert!(err.message.contains("auxiliary"), "{err}");
        let soft = ObserveAst {
            kind: crate::ast::ObserveKind::Soft {
                dist: "Flip".into(),
                params: vec![TermAst::Const(Value::real(0.5))],
                value: TermAst::Var("X".into()),
            },
            body: vec![crate::ast::AtomAst {
                rel: aux_name,
                args: vec![TermAst::Const(Value::real(0.5)), TermAst::Var("X".into())],
                span: Span::default(),
            }],
            span: Span::default(),
        };
        let err = lower_observe(&soft, &c.catalog, &c.registry).unwrap_err();
        assert!(err.message.contains("auxiliary"), "{err}");
    }

    #[test]
    fn weak_acyclicity_is_recorded() {
        let c = compile("C(Normal<V, 1.0>) :- C(V).", SemanticsMode::Grohe);
        assert!(!c.weakly_acyclic());
        let c2 = compile("R(Flip<0.5>) :- true.", SemanticsMode::Grohe);
        assert!(c2.weakly_acyclic());
    }

    #[test]
    fn renders_existential_program() {
        let c = compile(
            "Earthquake(C, Flip<0.1>) :- City(C, R).",
            SemanticsMode::Grohe,
        );
        let rendered = c.render_existential_program();
        assert!(rendered.contains("∃y0"), "{rendered}");
        assert!(rendered.contains("Flip⟨0.1⟩"), "{rendered}");
        assert!(
            rendered.contains("Earthquake(v0, y0)") || rendered.contains("Earthquake(v0, v2)"),
            "{rendered}"
        );
        assert_eq!(rendered.lines().count(), 2, "3.A and 3.B");
    }
}
