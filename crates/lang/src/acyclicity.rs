//! Weak acyclicity (Theorem 6.3): the position dependency graph of a
//! GDatalog program and the classic Fagin-et-al. cycle test.
//!
//! Nodes are positions `(relation, column)`. For every rule and every
//! variable `x` occurring both in the body and the head, there is a
//! *regular* edge from each body position of `x` to each head position of
//! `x`. Additionally there is a *special* edge from each body position of
//! each such `x` to every position holding a random term in the head (the
//! "existential" positions of the associated Datalog∃ program). The program
//! is weakly acyclic iff no cycle traverses a special edge; Theorem 6.3
//! states that weakly acyclic GDatalog programs terminate on all chase
//! paths.

use std::collections::{HashMap, HashSet};

use crate::ast::{Program, TermAst};
use crate::validate::ValidatedProgram;

/// A position `(relation name, column index)`.
pub type Position = (String, usize);

/// The result of the weak-acyclicity analysis.
#[derive(Debug, Clone)]
pub struct AcyclicityReport {
    /// Whether the program is weakly acyclic.
    pub weakly_acyclic: bool,
    /// Regular edges of the dependency graph.
    pub regular_edges: Vec<(Position, Position)>,
    /// Special (existential) edges of the dependency graph.
    pub special_edges: Vec<(Position, Position)>,
    /// If not weakly acyclic: a special edge lying on a cycle.
    pub witness: Option<(Position, Position)>,
}

/// Computes the weak-acyclicity report for a validated program.
pub fn weak_acyclicity(validated: &ValidatedProgram) -> AcyclicityReport {
    weak_acyclicity_of_ast(&validated.program)
}

/// AST-level analysis (usable before full validation in tests).
pub fn weak_acyclicity_of_ast(program: &Program) -> AcyclicityReport {
    let mut regular: HashSet<(Position, Position)> = HashSet::new();
    let mut special: HashSet<(Position, Position)> = HashSet::new();

    for rule in &program.rules {
        // Body positions of each variable.
        let mut body_pos: HashMap<&str, Vec<Position>> = HashMap::new();
        for atom in &rule.body {
            for (i, t) in atom.args.iter().enumerate() {
                if let TermAst::Var(v) = t {
                    body_pos
                        .entry(v.as_str())
                        .or_default()
                        .push((atom.rel.clone(), i));
                }
            }
        }
        // Variables occurring in the head (at deterministic positions or
        // inside random-term parameters/tags).
        let head_vars: Vec<&str> = rule.head.vars();
        // Existential positions: head columns holding random terms.
        let exist_pos: Vec<Position> = rule
            .head
            .args
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_random())
            .map(|(i, _)| (rule.head.rel.clone(), i))
            .collect();

        // Regular edges: body position of x → deterministic head position
        // of x.
        for (i, t) in rule.head.args.iter().enumerate() {
            if let TermAst::Var(v) = t {
                if let Some(sources) = body_pos.get(v.as_str()) {
                    for s in sources {
                        regular.insert((s.clone(), (rule.head.rel.clone(), i)));
                    }
                }
            }
        }
        // Special edges: body position of every head-occurring variable →
        // every existential position.
        for v in &head_vars {
            if let Some(sources) = body_pos.get(*v) {
                for s in sources {
                    for e in &exist_pos {
                        special.insert((s.clone(), e.clone()));
                    }
                }
            }
        }
    }

    // Tarjan SCC over the union graph; a special edge inside one SCC means a
    // cycle through it.
    let mut nodes: Vec<Position> = Vec::new();
    let mut node_ix: HashMap<Position, usize> = HashMap::new();
    let intern = |p: &Position, nodes: &mut Vec<Position>, ix: &mut HashMap<Position, usize>| {
        *ix.entry(p.clone()).or_insert_with(|| {
            nodes.push(p.clone());
            nodes.len() - 1
        })
    };
    let mut adj: Vec<Vec<usize>> = Vec::new();
    for (a, b) in regular.iter().chain(special.iter()) {
        let ia = intern(a, &mut nodes, &mut node_ix);
        let ib = intern(b, &mut nodes, &mut node_ix);
        if adj.len() < nodes.len() {
            adj.resize(nodes.len(), Vec::new());
        }
        adj[ia].push(ib);
    }
    adj.resize(nodes.len(), Vec::new());

    let scc = tarjan_scc(&adj);
    let mut comp = vec![0usize; nodes.len()];
    for (c, members) in scc.iter().enumerate() {
        for &m in members {
            comp[m] = c;
        }
    }

    let mut witness = None;
    for (a, b) in &special {
        let ia = node_ix[a];
        let ib = node_ix[b];
        if comp[ia] == comp[ib] {
            witness = Some((a.clone(), b.clone()));
            break;
        }
    }

    AcyclicityReport {
        weakly_acyclic: witness.is_none(),
        regular_edges: regular.into_iter().collect(),
        special_edges: special.into_iter().collect(),
        witness,
    }
}

/// Iterative Tarjan strongly-connected components.
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: i64,
        lowlink: i64,
        on_stack: bool,
    }
    let n = adj.len();
    let mut state = vec![
        NodeState {
            index: -1,
            lowlink: -1,
            on_stack: false,
        };
        n
    ];
    let mut next_index = 0i64;
    let mut stack: Vec<usize> = Vec::new();
    let mut out: Vec<Vec<usize>> = Vec::new();

    for root in 0..n {
        if state[root].index >= 0 {
            continue;
        }
        // Explicit DFS stack of (node, next-child-position).
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        state[root].index = next_index;
        state[root].lowlink = next_index;
        next_index += 1;
        stack.push(root);
        state[root].on_stack = true;

        while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if state[w].index < 0 {
                    state[w].index = next_index;
                    state[w].lowlink = next_index;
                    next_index += 1;
                    stack.push(w);
                    state[w].on_stack = true;
                    dfs.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let vl = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(vl);
                }
                if state[v].lowlink == state[v].index {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        state[w].on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn report(src: &str) -> AcyclicityReport {
        weak_acyclicity_of_ast(&parse_program(src).unwrap())
    }

    #[test]
    fn burglary_is_weakly_acyclic() {
        let r = report(
            r#"
            Earthquake(C, Flip<0.1>) :- City(C, R).
            Unit(H, C) :- House(H, C).
            Unit(B, C) :- Business(B, C).
            Burglary(X, C, Flip<R>) :- Unit(X, C), City(C, R).
            Trig(X, Flip<0.6>) :- Unit(X, C), Earthquake(C, 1).
            Trig(X, Flip<0.9>) :- Burglary(X, C, 1).
            Alarm(X) :- Trig(X, 1).
        "#,
        );
        assert!(r.weakly_acyclic);
        assert!(!r.special_edges.is_empty());
    }

    #[test]
    fn heights_program_is_weakly_acyclic() {
        let r = report("PHeight(P, Normal<Mu, S2>) :- PCountry(P, C), CMoments(C, Mu, S2).");
        assert!(r.weakly_acyclic);
    }

    #[test]
    fn direct_random_recursion_is_not_weakly_acyclic() {
        // X flows from the random position back into a random rule.
        let r = report("C(Normal<V, 1.0>) :- C(V).");
        assert!(!r.weakly_acyclic);
        assert!(r.witness.is_some());
    }

    #[test]
    fn tagged_recursion_is_not_weakly_acyclic() {
        let r = report("G(Geometric<0.5 | X>) :- G(X).");
        assert!(!r.weakly_acyclic, "tag variables also feed the cycle");
    }

    #[test]
    fn deterministic_recursion_is_weakly_acyclic() {
        // Plain transitive closure has cycles but no special edges.
        let r = report("T(X, Y) :- E(X, Y). T(X, Z) :- T(X, Y), E(Y, Z).");
        assert!(r.weakly_acyclic);
        assert!(r.special_edges.is_empty());
    }

    #[test]
    fn indirect_cycle_through_two_relations_detected() {
        let r = report(
            r#"
            A(Flip<0.5 | X>) :- B(X).
            B(Y) :- A(Y).
        "#,
        );
        assert!(!r.weakly_acyclic);
    }

    #[test]
    fn random_rule_feeding_unrelated_relation_is_fine() {
        let r = report(
            r#"
            Noise(X, Normal<0.0, 1.0>) :- Reading(X).
            Out(X, N) :- Noise(X, N).
        "#,
        );
        assert!(r.weakly_acyclic);
    }

    #[test]
    fn tarjan_handles_self_loops() {
        let r = report("P(X, Flip<0.5>) :- P(X, Y), Q(X).");
        // Y flows from P's own random position? No: body var Y occurs in P
        // at position 1, and the head's random term sits at position 1 of P
        // — but Y does not occur in the head, so only X (which does) feeds
        // the special edge; X's body positions include (P, 0), and the head
        // position (P, 1) is existential: special edge (P,0) → (P,1),
        // regular edge (P,0) → (P,0). Cycle through special? (P,1) has no
        // outgoing edges, so no.
        assert!(r.weakly_acyclic);
    }

    #[test]
    fn cycle_via_param_variable_detected() {
        // The sampled value becomes a parameter downstream.
        let r = report(
            r#"
            Level(Gamma<K, 1.0>) :- Seed(K).
            Seed(L) :- Level(L).
        "#,
        );
        assert!(!r.weakly_acyclic);
    }
}
