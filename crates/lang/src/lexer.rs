//! Hand-written lexer for the GDatalog text syntax.

use crate::ast::Span;
use crate::LangError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier starting with an uppercase letter or `_` (variable or
    /// relation or distribution name, depending on context).
    UpperIdent(String),
    /// Identifier starting with a lowercase letter (symbol constant,
    /// relation name, or keyword).
    LowerIdent(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// String literal (unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-` or `←`
    Arrow,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `|`
    Pipe,
    /// `@` (introduces `@observe` clauses).
    At,
    /// `==` (the likelihood operator of soft observations).
    EqEq,
    /// `?` or `?name` — a free-parameter hole in a distribution term,
    /// to be estimated from data by `gdl fit`.
    Hole(Option<String>),
    /// End of input.
    Eof,
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Location of the first character.
    pub span: Span,
}

/// Tokenizes `src`, skipping whitespace and `//`/`%` line comments.
///
/// # Errors
/// Returns a [`LangError`] at the first unrecognized character or malformed
/// literal.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! span {
        () => {
            Span {
                line,
                col,
                offset: i,
            }
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c == '\n' {
            i += 1;
            line += 1;
            col = 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Comments: `//` and `%` to end of line.
        if c == '%' || (c == '/' && bytes.get(i + 1) == Some(&b'/')) {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let sp = span!();
        // Punctuation.
        let single = match c {
            '(' => Some(Tok::LParen),
            ')' => Some(Tok::RParen),
            ',' => Some(Tok::Comma),
            '.' => {
                // Distinguish `.` from the decimal point of a number like
                // `.5` (we require a leading digit, so `.` is always a dot).
                Some(Tok::Dot)
            }
            '<' => Some(Tok::Lt),
            '>' => Some(Tok::Gt),
            '|' => Some(Tok::Pipe),
            '@' => Some(Tok::At),
            _ => None,
        };
        if let Some(t) = single {
            toks.push(Token { tok: t, span: sp });
            i += 1;
            col += 1;
            continue;
        }
        // `==`
        if c == '=' {
            if bytes.get(i + 1) == Some(&b'=') {
                toks.push(Token {
                    tok: Tok::EqEq,
                    span: sp,
                });
                i += 2;
                col += 2;
                continue;
            }
            return Err(LangError::at(sp, "expected `==`"));
        }
        // `:-`
        if c == ':' {
            if bytes.get(i + 1) == Some(&b'-') {
                toks.push(Token {
                    tok: Tok::Arrow,
                    span: sp,
                });
                i += 2;
                col += 2;
                continue;
            }
            return Err(LangError::at(sp, "expected `:-`"));
        }
        // `←` (UTF-8: E2 86 90).
        if bytes[i] == 0xE2 && bytes.get(i + 1) == Some(&0x86) && bytes.get(i + 2) == Some(&0x90) {
            toks.push(Token {
                tok: Tok::Arrow,
                span: sp,
            });
            i += 3;
            col += 1;
            continue;
        }
        // String literal.
        if c == '"' {
            let mut s = String::new();
            let mut j = i + 1;
            let mut ok = false;
            while j < bytes.len() {
                match bytes[j] {
                    b'"' => {
                        ok = true;
                        break;
                    }
                    b'\\' => {
                        let esc = bytes
                            .get(j + 1)
                            .copied()
                            .ok_or_else(|| LangError::at(sp, "unterminated escape in string"))?;
                        s.push(match esc {
                            b'n' => '\n',
                            b't' => '\t',
                            b'\\' => '\\',
                            b'"' => '"',
                            other => {
                                return Err(LangError::at(
                                    sp,
                                    format!("unknown escape `\\{}`", other as char),
                                ))
                            }
                        });
                        j += 2;
                    }
                    b => {
                        s.push(b as char);
                        j += 1;
                    }
                }
            }
            if !ok {
                return Err(LangError::at(sp, "unterminated string literal"));
            }
            let len = j + 1 - i;
            toks.push(Token {
                tok: Tok::Str(s),
                span: sp,
            });
            i = j + 1;
            col += len as u32;
            continue;
        }
        // Numbers (with optional leading minus).
        if c.is_ascii_digit() || (c == '-' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) {
            let start = i;
            if c == '-' {
                i += 1;
            }
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let mut is_real = false;
            if i < bytes.len()
                && bytes[i] == b'.'
                && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
            {
                is_real = true;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            // Exponent.
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    is_real = true;
                    i = j;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &src[start..i];
            let tok =
                if is_real {
                    Tok::Real(text.parse().map_err(|_| {
                        LangError::at(sp, format!("malformed real literal `{text}`"))
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        LangError::at(sp, format!("malformed integer literal `{text}`"))
                    })?)
                };
            col += (i - start) as u32;
            toks.push(Token { tok, span: sp });
            continue;
        }
        // Free-parameter holes: `?` or `?name` (the name must follow the
        // `?` immediately, with no whitespace).
        if c == '?' {
            i += 1;
            col += 1;
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let name = (i > start).then(|| src[start..i].to_string());
            col += (i - start) as u32;
            toks.push(Token {
                tok: Tok::Hole(name),
                span: sp,
            });
            continue;
        }
        // Identifiers.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'\'')
            {
                i += 1;
            }
            let text = &src[start..i];
            col += (i - start) as u32;
            let tok = if c.is_ascii_uppercase() || c == '_' {
                Tok::UpperIdent(text.to_string())
            } else {
                Tok::LowerIdent(text.to_string())
            };
            toks.push(Token { tok, span: sp });
            continue;
        }
        return Err(LangError::at(sp, format!("unexpected character `{c}`")));
    }
    toks.push(Token {
        tok: Tok::Eof,
        span: Span {
            line,
            col,
            offset: i,
        },
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_a_rule() {
        let ts = kinds("Earthquake(C, Flip<0.1>) :- City(C, R).");
        assert_eq!(
            ts,
            vec![
                Tok::UpperIdent("Earthquake".into()),
                Tok::LParen,
                Tok::UpperIdent("C".into()),
                Tok::Comma,
                Tok::UpperIdent("Flip".into()),
                Tok::Lt,
                Tok::Real(0.1),
                Tok::Gt,
                Tok::RParen,
                Tok::Arrow,
                Tok::UpperIdent("City".into()),
                Tok::LParen,
                Tok::UpperIdent("C".into()),
                Tok::Comma,
                Tok::UpperIdent("R".into()),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("1 -2 0.5 -0.25 1e3 2.5e-2"),
            vec![
                Tok::Int(1),
                Tok::Int(-2),
                Tok::Real(0.5),
                Tok::Real(-0.25),
                Tok::Real(1000.0),
                Tok::Real(0.025),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_and_comments() {
        let ts = kinds("\"a\\nb\" // comment\n% also comment\nfoo");
        assert_eq!(
            ts,
            vec![
                Tok::Str("a\nb".into()),
                Tok::LowerIdent("foo".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_unicode_arrow_and_primes() {
        let ts = kinds("R(X) ← Q(X). Flip'");
        assert!(ts.contains(&Tok::Arrow));
        assert!(ts.contains(&Tok::UpperIdent("Flip'".into())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("R(x) # Q(x)").is_err());
        assert!(lex("R(x) = Q(x)").is_err(), "single `=` is not a token");
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn lexes_observe_clauses() {
        let ts = kinds("@observe Normal<0.0, 1.0> == 2.5.");
        assert_eq!(ts[0], Tok::At);
        assert_eq!(ts[1], Tok::LowerIdent("observe".into()));
        assert!(ts.contains(&Tok::EqEq));
    }

    #[test]
    fn lexes_holes() {
        assert_eq!(
            kinds("Normal<?, ?sigma>"),
            vec![
                Tok::UpperIdent("Normal".into()),
                Tok::Lt,
                Tok::Hole(None),
                Tok::Comma,
                Tok::Hole(Some("sigma".into())),
                Tok::Gt,
                Tok::Eof
            ]
        );
        // The name must be attached: `? mu` is an anonymous hole then an
        // identifier, not a named hole.
        assert_eq!(
            kinds("? mu"),
            vec![Tok::Hole(None), Tok::LowerIdent("mu".into()), Tok::Eof]
        );
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("a\nbb\n  ccc").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 3);
        assert_eq!(toks[2].span.col, 3);
    }
}
