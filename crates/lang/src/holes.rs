//! Free-parameter holes: `Dist<?, ?name>` placeholders in distribution
//! parameter positions, to be estimated from data by the learning
//! subsystem (`gdl fit`).
//!
//! A program with holes validates (the fitter needs the resolved catalog
//! and type information) but is rejected by translation — and therefore by
//! every ordinary evaluation path — with an error naming the relation and
//! parameter index of the first hole.

use gdatalog_data::Value;

use crate::ast::{ObserveKind, Program, Span, TermAst};
use crate::LangError;

/// One free parameter of a program: the location of a `?` / `?name` hole
/// inside a distribution term of a rule head. Collected in deterministic
/// program order (rule index, then head column, then parameter index), so
/// the dense [`FreeParam::id`] doubles as the index into estimate vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct FreeParam {
    /// Dense index in collection order — position in estimate vectors.
    pub id: usize,
    /// The hole's name (`?mu` → `Some("mu")`); anonymous holes are `None`.
    pub name: Option<String>,
    /// Index of the owning rule in [`Program::rules`].
    pub rule_index: usize,
    /// Head relation name of the owning rule.
    pub rel: String,
    /// Head argument position of the owning distribution term.
    pub head_col: usize,
    /// Distribution name of the owning term.
    pub dist: String,
    /// Position within the distribution's parameter list (0-based).
    pub param_index: usize,
    /// Source location of the hole.
    pub span: Span,
}

impl FreeParam {
    /// The display label: the hole's name when it has one, otherwise a
    /// positional `Rel.Dist[param_index]` path.
    pub fn label(&self) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => format!("{}.{}[{}]", self.rel, self.dist, self.param_index),
        }
    }
}

/// Collects every free-parameter hole of `program` in deterministic order,
/// enforcing the placement rules: holes may appear **only** in distribution
/// parameter positions of rule heads (not in tags, bodies, facts, direct
/// head arguments, or observations), and a named hole may be used at most
/// once (each hole belongs to exactly one distribution term).
///
/// # Errors
/// Returns the first misplaced or duplicated hole, with its location.
pub fn collect_free_params(program: &Program) -> Result<Vec<FreeParam>, LangError> {
    let mut out: Vec<FreeParam> = Vec::new();
    for (rule_index, r) in program.rules.iter().enumerate() {
        for a in &r.body {
            for t in &a.args {
                if let Some(sp) = first_hole_span(t) {
                    return Err(LangError::at(
                        sp,
                        format!(
                            "free parameter `?` is not allowed in the body of a rule \
                             (relation `{}`); holes may only appear as distribution \
                             parameters in rule heads",
                            a.rel
                        ),
                    ));
                }
            }
        }
        for (head_col, t) in r.head.args.iter().enumerate() {
            match t {
                TermAst::Hole { span, .. } => {
                    return Err(LangError::at(
                        *span,
                        format!(
                            "free parameter `?` cannot stand alone in column {head_col} of \
                             `{}`; holes may only appear as distribution parameters \
                             (e.g. `Normal<?, ?>`)",
                            r.head.rel
                        ),
                    ));
                }
                TermAst::Random {
                    dist, params, tags, ..
                } => {
                    for tag in tags {
                        if let Some(sp) = first_hole_span(tag) {
                            return Err(LangError::at(
                                sp,
                                format!(
                                    "free parameter `?` is not allowed in the tags of \
                                     `{dist}` (relation `{}`); tags fix the experiment \
                                     identity and cannot be fitted",
                                    r.head.rel
                                ),
                            ));
                        }
                    }
                    for (param_index, p) in params.iter().enumerate() {
                        if let TermAst::Hole { name, span } = p {
                            if let Some(n) = name {
                                if let Some(prev) =
                                    out.iter().find(|fp| fp.name.as_deref() == Some(n))
                                {
                                    return Err(LangError::at(
                                        *span,
                                        format!(
                                            "free parameter `?{n}` is used twice (first in \
                                             `{}` parameter {} of `{}`); each hole belongs \
                                             to exactly one distribution term",
                                            prev.dist, prev.param_index, prev.rel
                                        ),
                                    ));
                                }
                            }
                            out.push(FreeParam {
                                id: out.len(),
                                name: name.clone(),
                                rule_index,
                                rel: r.head.rel.clone(),
                                head_col,
                                dist: dist.clone(),
                                param_index,
                                span: *span,
                            });
                        }
                    }
                }
                TermAst::Var(_) | TermAst::Const(_) => {}
            }
        }
    }
    for o in &program.observes {
        if let ObserveKind::Soft { params, value, .. } = &o.kind {
            for t in params.iter().chain(std::iter::once(value)) {
                if let Some(sp) = first_hole_span(t) {
                    return Err(LangError::at(
                        sp,
                        "free parameter `?` is not allowed in observations; holes may \
                         only appear as distribution parameters in rule heads",
                    ));
                }
            }
        }
    }
    Ok(out)
}

/// Substitutes constants for every hole of `program`, in the same
/// deterministic order [`collect_free_params`] reports them — `values[i]`
/// fills the hole with [`FreeParam::id`] `i`. The result contains no holes
/// and is evaluable.
///
/// # Errors
/// When `values.len()` differs from the program's hole count.
pub fn substitute_free_params(program: &Program, values: &[Value]) -> Result<Program, LangError> {
    let holes = collect_free_params(program)?;
    if holes.len() != values.len() {
        return Err(LangError::msg(format!(
            "program has {} free parameter(s) but {} value(s) were supplied",
            holes.len(),
            values.len()
        )));
    }
    let mut next = 0usize;
    let mut out = program.clone();
    for r in &mut out.rules {
        for t in &mut r.head.args {
            if let TermAst::Random { params, .. } = t {
                for p in params.iter_mut() {
                    if matches!(p, TermAst::Hole { .. }) {
                        *p = TermAst::Const(values[next].clone());
                        next += 1;
                    }
                }
            }
        }
    }
    debug_assert_eq!(next, values.len());
    Ok(out)
}

fn first_hole_span(t: &TermAst) -> Option<Span> {
    match t {
        TermAst::Hole { span, .. } => Some(*span),
        TermAst::Var(_) | TermAst::Const(_) => None,
        TermAst::Random { params, tags, .. } => params.iter().chain(tags).find_map(first_hole_span),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn collects_in_program_order() {
        let p = parse_program(
            "H(P, Normal<?mu, ?sigma2>) :- Person(P).\n\
             W(Exponential<?>) :- true.",
        )
        .unwrap();
        let fps = collect_free_params(&p).unwrap();
        assert_eq!(fps.len(), 3);
        assert_eq!(fps[0].name.as_deref(), Some("mu"));
        assert_eq!(fps[0].rel, "H");
        assert_eq!(fps[0].head_col, 1);
        assert_eq!(fps[0].param_index, 0);
        assert_eq!(fps[1].label(), "sigma2");
        assert_eq!(fps[2].name, None);
        assert_eq!(fps[2].dist, "Exponential");
        assert_eq!(fps[2].label(), "W.Exponential[0]");
        assert_eq!(fps.iter().map(|f| f.id).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn rejects_misplaced_holes() {
        // Stand-alone head argument.
        let p = parse_program("H(?) :- Q(X).").unwrap();
        let err = collect_free_params(&p).unwrap_err();
        assert!(err.message.contains("cannot stand alone"), "{err}");
        // In a tag.
        let p = parse_program("H(Flip<0.5 | ?>) :- true.").unwrap();
        let err = collect_free_params(&p).unwrap_err();
        assert!(err.message.contains("tags"), "{err}");
        // In an observation.
        let p = parse_program("@observe Normal<?, 1.0> == 2.5.").unwrap();
        let err = collect_free_params(&p).unwrap_err();
        assert!(err.message.contains("observations"), "{err}");
    }

    #[test]
    fn rejects_duplicate_named_holes() {
        let p = parse_program("H(Normal<?m, 1.0>) :- true. G(Normal<?m, 1.0>) :- true.").unwrap();
        let err = collect_free_params(&p).unwrap_err();
        assert!(err.message.contains("used twice"), "{err}");
    }

    #[test]
    fn substitution_round_trips() {
        let p = parse_program("H(Normal<?mu, ?s2>) :- Obs(H).").unwrap();
        let filled = substitute_free_params(&p, &[Value::real(1.5), Value::real(0.25)]).unwrap();
        assert!(!filled.has_holes());
        assert_eq!(filled.to_string(), "H(Normal<1.5, 0.25>) :- Obs(H).\n");
        // Arity mismatch is rejected.
        assert!(substitute_free_params(&p, &[Value::real(1.5)]).is_err());
    }
}
