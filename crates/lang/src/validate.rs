//! Name resolution, type inference and the well-formedness conditions of
//! Defs. 3.1–3.3: bodies are deterministic conjunctions over exactly the
//! rule's variables (range restriction / safety), random terms occur only
//! in intensional heads, and every random term refers to a known
//! parameterized distribution with an admissible parameter count.

use std::collections::HashMap;
use std::sync::Arc;

use gdatalog_data::{Catalog, ColType, Instance, RelationKind, Tuple};
use gdatalog_dist::Registry;

use crate::ast::{AtomAst, ObserveAst, ObserveKind, Program, TermAst};
use crate::holes::{collect_free_params, FreeParam};
use crate::LangError;

/// A validated program: the AST plus the resolved catalog (extensional and
/// intensional relations only — auxiliary relations appear later, during
/// translation) and the initial instance built from the program's ground
/// facts.
#[derive(Debug, Clone)]
pub struct ValidatedProgram {
    /// The source AST.
    pub program: Program,
    /// Resolved schema `S = E ∪ I`.
    pub catalog: Catalog,
    /// The distribution family Ψ.
    pub registry: Arc<Registry>,
    /// Ground facts from the program text, as an instance.
    pub initial_instance: Instance,
    /// Free-parameter holes (`Dist<?, ?name>`), in deterministic program
    /// order. Non-empty programs validate (the fitter needs the catalog)
    /// but are rejected by translation and ordinary evaluation.
    pub free_params: Vec<FreeParam>,
}

#[derive(Default, Clone)]
struct RelInfo {
    arity: Option<usize>,
    declared: Option<Vec<ColType>>,
    inferred: Vec<Option<ColType>>,
    is_input_decl: bool,
    in_head: bool,
    first_seen: crate::ast::Span,
}

fn type_compat(flow: ColType, declared: ColType) -> bool {
    declared == ColType::Any
        || flow == ColType::Any
        || flow == declared
        || (flow == ColType::Int && declared == ColType::Real)
}

/// Validates `program` against the distribution family `registry`.
///
/// # Errors
/// Returns the first violation found, with a source location when possible.
pub fn validate(program: Program, registry: Arc<Registry>) -> Result<ValidatedProgram, LangError> {
    // Free-parameter holes: enforce placement (distribution parameters of
    // rule heads only) and named-hole uniqueness up front; keep the
    // collected locations for the learning subsystem.
    let free_params = collect_free_params(&program)?;

    let mut rels: HashMap<String, RelInfo> = HashMap::new();

    let touch = |name: &str,
                 arity: usize,
                 span: crate::ast::Span,
                 rels: &mut HashMap<String, RelInfo>|
     -> Result<(), LangError> {
        let info = rels.entry(name.to_string()).or_insert_with(|| RelInfo {
            first_seen: span,
            ..RelInfo::default()
        });
        match info.arity {
            None => {
                info.arity = Some(arity);
                info.inferred = vec![None; arity];
            }
            Some(a) if a != arity => {
                return Err(LangError::at(
                    span,
                    format!("relation `{name}` used with arity {arity} but previously {a}"),
                ));
            }
            _ => {}
        }
        Ok(())
    };

    // Declarations.
    for d in &program.decls {
        touch(&d.name, d.cols.len(), d.span, &mut rels)?;
        let info = rels.get_mut(&d.name).expect("just touched");
        if info.declared.is_some() {
            return Err(LangError::at(
                d.span,
                format!("relation `{}` declared twice", d.name),
            ));
        }
        info.declared = Some(d.cols.clone());
        info.is_input_decl = d.is_input;
    }

    // Facts.
    for f in &program.facts {
        touch(&f.rel, f.values.len(), f.span, &mut rels)?;
    }

    // Rules: arity collection + head marking.
    for r in &program.rules {
        touch(&r.head.rel, r.head.args.len(), r.head.span, &mut rels)?;
        rels.get_mut(&r.head.rel).expect("touched").in_head = true;
        for a in &r.body {
            touch(&a.rel, a.args.len(), a.span, &mut rels)?;
        }
    }

    // Observations: relations referenced by hard observations and by
    // observation bodies enter the schema like any other reference.
    for o in &program.observes {
        if let ObserveKind::Hard { rel, values } = &o.kind {
            touch(rel, values.len(), o.span, &mut rels)?;
        }
        for a in &o.body {
            touch(&a.rel, a.args.len(), a.span, &mut rels)?;
        }
        check_observe(o, &registry)?;
    }

    // Well-formedness per rule.
    for r in &program.rules {
        // Bodies deterministic (the parser already enforces this for text
        // input; re-check for programmatically built ASTs).
        for a in &r.body {
            if a.is_random() {
                return Err(LangError::at(
                    a.span,
                    "random terms are not allowed in rule bodies (Def. 3.3)",
                ));
            }
        }
        // Safety / range restriction: head variables (including those in
        // distribution parameters and tags) must occur in the body.
        let mut body_vars: Vec<&str> = Vec::new();
        for a in &r.body {
            body_vars.extend(a.vars());
        }
        for v in r.head.vars() {
            if !body_vars.contains(&v) {
                return Err(LangError::at(
                    r.head.span,
                    format!("head variable `{v}` does not occur in the body (unsafe rule)"),
                ));
            }
        }
        // Random terms: distribution known, parameter count admissible, and
        // only at top level of intensional heads.
        for (i, t) in r.head.args.iter().enumerate() {
            if let TermAst::Random {
                dist, params, span, ..
            } = t
            {
                let d = registry.get(dist).ok_or_else(|| {
                    LangError::at(*span, format!("unknown distribution `{dist}`"))
                })?;
                if !d.arity().admits(params.len()) {
                    return Err(LangError::at(
                        *span,
                        format!(
                            "distribution `{dist}` expects {} parameter(s), found {}",
                            d.arity(),
                            params.len()
                        ),
                    ));
                }
                let _ = i;
            }
        }
    }

    // Heads must be intensional: a declared-input relation cannot be derived.
    for r in &program.rules {
        let info = &rels[&r.head.rel];
        if info.is_input_decl {
            return Err(LangError::at(
                r.head.span,
                format!(
                    "relation `{}` is declared `input` and cannot appear in a rule head",
                    r.head.rel
                ),
            ));
        }
    }

    // Type inference fixpoint. The lattice is Option<ColType> ordered by
    // None < t < Any; joins are monotone so this terminates.
    let join = |slot: &mut Option<ColType>, ty: ColType| -> bool {
        let new = match *slot {
            None => ty,
            Some(old) => old.join(ty),
        };
        if *slot != Some(new) {
            *slot = Some(new);
            true
        } else {
            false
        }
    };

    // Seed: facts flow value types into columns; hard observations flow
    // like facts (they name tuples of the same relations).
    for f in &program.facts {
        let info = rels.get_mut(&f.rel).expect("touched");
        for (i, v) in f.values.iter().enumerate() {
            join(&mut info.inferred[i], v.type_of());
        }
    }
    for o in &program.observes {
        if let ObserveKind::Hard { rel, values } = &o.kind {
            let info = rels.get_mut(rel).expect("touched");
            for (i, v) in values.iter().enumerate() {
                join(&mut info.inferred[i], v.type_of());
            }
        }
    }

    let mut changed = true;
    while changed {
        changed = false;
        for r in &program.rules {
            // Compute variable types from body positions.
            let mut var_ty: HashMap<&str, ColType> = HashMap::new();
            for a in &r.body {
                let info = &rels[&a.rel];
                let col_ty = |i: usize| -> Option<ColType> {
                    info.declared.as_ref().map(|c| c[i]).or(info.inferred[i])
                };
                for (i, t) in a.args.iter().enumerate() {
                    if let TermAst::Var(v) = t {
                        if let Some(ty) = col_ty(i) {
                            var_ty
                                .entry(v)
                                .and_modify(|old| *old = old.join(ty))
                                .or_insert(ty);
                        }
                    }
                }
            }
            // Flow into head columns.
            let head_rel = r.head.rel.clone();
            for (i, t) in r.head.args.iter().enumerate() {
                let ty = match t {
                    TermAst::Const(c) => Some(c.type_of()),
                    TermAst::Var(v) => var_ty.get(v.as_str()).copied(),
                    TermAst::Random { dist, .. } => registry.get(dist).map(|d| d.output_type()),
                    // A stand-alone hole is rejected by the placement check
                    // above; nothing flows from it.
                    TermAst::Hole { .. } => None,
                };
                if let Some(ty) = ty {
                    let info = rels.get_mut(&head_rel).expect("touched");
                    changed |= join(&mut info.inferred[i], ty);
                }
            }
        }
    }

    // Check inferred flows against declared types.
    for (name, info) in &rels {
        if let Some(declared) = &info.declared {
            for (i, inf) in info.inferred.iter().enumerate() {
                if let Some(ty) = inf {
                    if !type_compat(*ty, declared[i]) {
                        return Err(LangError::at(
                            info.first_seen,
                            format!(
                                "relation `{name}` column {i}: inferred type {ty} conflicts with declared {}",
                                declared[i]
                            ),
                        ));
                    }
                }
            }
        }
    }

    // Build the catalog: deterministic order (sorted by name) so RelIds are
    // reproducible across runs.
    let mut names: Vec<&String> = rels.keys().collect();
    names.sort();
    let mut catalog = Catalog::new();
    for name in names {
        let info = &rels[name];
        let cols: Vec<ColType> = match &info.declared {
            Some(c) => c.clone(),
            None => info
                .inferred
                .iter()
                .map(|t| t.unwrap_or(ColType::Any))
                .collect(),
        };
        let kind = if info.in_head {
            RelationKind::Intensional
        } else {
            RelationKind::Extensional
        };
        catalog
            .declare_named(name, cols, kind)
            .map_err(|e| LangError::msg(e.to_string()))?;
    }

    // Materialize the ground facts, type-checking against the catalog.
    let mut initial_instance = Instance::new();
    for f in &program.facts {
        let rel = catalog
            .require(&f.rel)
            .map_err(|e| LangError::msg(e.to_string()))?;
        let tuple = Tuple::from(f.values.clone());
        catalog
            .check_tuple(rel, &tuple)
            .map_err(|e| LangError::at(f.span, e.to_string()))?;
        initial_instance.insert(rel, tuple);
    }

    Ok(ValidatedProgram {
        program,
        catalog,
        registry,
        initial_instance,
        free_params,
    })
}

/// Well-formedness of one observation clause: hard observations are ground
/// and body-less; soft observations name a known distribution with an
/// admissible parameter count, have deterministic bodies, and bind every
/// parameter/value variable in the body (safety). Shared by program
/// validation and the dynamic-evidence path
/// ([`crate::translate::compile_observations`]).
pub(crate) fn check_observe(o: &ObserveAst, registry: &Registry) -> Result<(), LangError> {
    match &o.kind {
        ObserveKind::Hard { .. } => {
            // The parser only builds ground, body-less hard observations;
            // re-check for programmatically constructed ASTs.
            if !o.body.is_empty() {
                return Err(LangError::at(
                    o.span,
                    "hard observations take no body (they are ground facts)",
                ));
            }
            Ok(())
        }
        ObserveKind::Soft {
            dist,
            params,
            value,
        } => {
            for a in &o.body {
                if a.is_random() {
                    return Err(LangError::at(
                        a.span,
                        "random terms are not allowed in observation bodies",
                    ));
                }
            }
            let d = registry
                .get(dist)
                .ok_or_else(|| LangError::at(o.span, format!("unknown distribution `{dist}`")))?;
            if !d.arity().admits(params.len()) {
                return Err(LangError::at(
                    o.span,
                    format!(
                        "distribution `{dist}` expects {} parameter(s), found {}",
                        d.arity(),
                        params.len()
                    ),
                ));
            }
            if params.iter().any(TermAst::is_random) || value.is_random() {
                return Err(LangError::at(
                    o.span,
                    "observation parameters and values must be deterministic",
                ));
            }
            let mut body_vars: Vec<&str> = Vec::new();
            for a in &o.body {
                body_vars.extend(a.vars());
            }
            let mut used: Vec<&str> = Vec::new();
            for p in params {
                p.collect_vars(&mut used);
            }
            value.collect_vars(&mut used);
            for v in used {
                if !body_vars.contains(&v) {
                    return Err(LangError::at(
                        o.span,
                        format!("observation variable `{v}` does not occur in the body"),
                    ));
                }
            }
            Ok(())
        }
    }
}

/// Convenience: collect the distinct variable names of a rule in first-use
/// order (head first-use order matters only for diagnostics).
pub(crate) fn rule_vars(head: &AtomAst, body: &[AtomAst]) -> Vec<String> {
    let mut seen: Vec<String> = Vec::new();
    for a in body.iter().chain(std::iter::once(head)) {
        for v in a.vars() {
            if !seen.iter().any(|s| s == v) {
                seen.push(v.to_string());
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<ValidatedProgram, LangError> {
        validate(parse_program(src).unwrap(), Arc::new(Registry::standard()))
    }

    #[test]
    fn burglary_program_validates() {
        let v = check(
            r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            Earthquake(C, Flip<0.1>) :- City(C, R).
            Alarm(X) :- Trig(X, 1).
            Trig(X, Flip<0.6>) :- Earthquake(X, 1).
        "#,
        )
        .unwrap();
        let city = v.catalog.require("City").unwrap();
        assert_eq!(v.catalog.decl(city).kind(), RelationKind::Extensional);
        let eq = v.catalog.require("Earthquake").unwrap();
        assert_eq!(v.catalog.decl(eq).kind(), RelationKind::Intensional);
        // Inferred: Earthquake(symbol-ish, int from Flip).
        assert_eq!(v.catalog.decl(eq).cols()[1], ColType::Int);
        assert_eq!(v.initial_instance.len(), 1);
    }

    #[test]
    fn unsafe_head_var_rejected() {
        let err = check("R(X) :- Q(Y).").unwrap_err();
        assert!(err.message.contains("unsafe"), "{}", err.message);
    }

    #[test]
    fn unsafe_param_var_rejected() {
        let err = check("R(Flip<P>) :- Q(Y).").unwrap_err();
        assert!(err.message.contains("`P`"), "{}", err.message);
    }

    #[test]
    fn unknown_distribution_rejected() {
        let err = check("R(Zorp<0.5>) :- true.").unwrap_err();
        assert!(
            err.message.contains("unknown distribution"),
            "{}",
            err.message
        );
    }

    #[test]
    fn wrong_param_count_rejected() {
        let err = check("R(Normal<1.0>) :- true.").unwrap_err();
        assert!(err.message.contains("parameter"), "{}", err.message);
    }

    #[test]
    fn input_relation_cannot_be_head() {
        let err = check("rel Q(int) input. Q(X) :- R(X).").unwrap_err();
        assert!(
            err.message.contains("cannot appear in a rule head"),
            "{}",
            err.message
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = check("R(X) :- Q(X). S(Y) :- Q(Y, Y).").unwrap_err();
        assert!(err.message.contains("arity"), "{}", err.message);
    }

    #[test]
    fn declared_type_conflict_rejected() {
        let err = check("rel R(symbol). R(Flip<0.5>) :- true.").unwrap_err();
        assert!(err.message.contains("conflicts"), "{}", err.message);
    }

    #[test]
    fn int_flows_into_real_columns() {
        // Fact has Int in a column later joined with Real: inferred Real.
        let v = check("M(1). M(0.5). P(Normal<X, 1.0>) :- M(X).").unwrap();
        let m = v.catalog.require("M").unwrap();
        assert_eq!(v.catalog.decl(m).cols()[0], ColType::Real);
    }

    #[test]
    fn types_propagate_through_rules() {
        let v = check(
            r#"
            rel PCountry(symbol, symbol) input.
            rel CMoments(symbol, real, real) input.
            PHeight(P, Normal<Mu, S2>) :- PCountry(P, C), CMoments(C, Mu, S2).
        "#,
        )
        .unwrap();
        let ph = v.catalog.require("PHeight").unwrap();
        assert_eq!(v.catalog.decl(ph).cols()[0], ColType::Symbol);
        assert_eq!(v.catalog.decl(ph).cols()[1], ColType::Real);
    }

    #[test]
    fn fact_type_checked_against_declaration() {
        // The type-inference pass flags the conflict between the Int flow
        // and the declared symbol column.
        let err = check("rel City(symbol, real) input. City(1, 0.5).").unwrap_err();
        assert!(
            err.message.contains("conflicts") || err.message.contains("type mismatch"),
            "{}",
            err.message
        );
    }

    #[test]
    fn observations_validate() {
        // Well-formed: hard ground fact + soft likelihood with bound vars.
        let v = check(
            r#"
            rel Mu(real) input.
            H(Normal<M, 1.0>) :- Mu(M).
            @observe H(2.5).
            @observe Normal<M, 1.0> == 2.5 :- Mu(M).
        "#,
        )
        .unwrap();
        assert_eq!(v.program.observes.len(), 2);
        // A hard observation of an otherwise-unmentioned relation enters
        // the catalog (as an extensional relation).
        let v2 = check("R(Flip<0.5>) :- true. @observe Seen(1).").unwrap();
        assert!(v2.catalog.resolve("Seen").is_some());
    }

    #[test]
    fn malformed_observations_rejected() {
        // Unknown distribution.
        let err = check("@observe Zorp<0.5> == 1.").unwrap_err();
        assert!(err.message.contains("unknown distribution"), "{err}");
        // Wrong parameter count.
        let err = check("@observe Normal<1.0> == 1.").unwrap_err();
        assert!(err.message.contains("parameter"), "{err}");
        // Unbound observation variable.
        let err = check("rel Mu(real) input. @observe Normal<M, 1.0> == X :- Mu(M).").unwrap_err();
        assert!(err.message.contains("`X`"), "{err}");
    }

    #[test]
    fn holed_programs_validate_with_free_params() {
        let v = check("rel Obs(real) input. H(Normal<?mu, ?s2>) :- Obs(X).").unwrap();
        assert_eq!(v.free_params.len(), 2);
        assert_eq!(v.free_params[0].label(), "mu");
        // The hole contributes no type information, but the distribution's
        // output type still flows into the head column.
        let h = v.catalog.require("H").unwrap();
        assert_eq!(v.catalog.decl(h).cols()[0], ColType::Real);
        // Misplaced holes fail validation.
        let err = check("H(?) :- Q(X).").unwrap_err();
        assert!(err.message.contains("cannot stand alone"), "{err}");
        // Hole-free programs report no free parameters.
        assert!(check("R(Flip<0.5>) :- true.")
            .unwrap()
            .free_params
            .is_empty());
    }

    #[test]
    fn rule_vars_order() {
        let p = parse_program("R(X, Y) :- A(Y, Z), B(X).").unwrap();
        let vars = rule_vars(&p.rules[0].head, &p.rules[0].body);
        assert_eq!(vars, vec!["Y", "Z", "X"]);
    }
}
