//! Fuzz-style robustness tests: the front-end must never panic — every
//! input either parses or yields a located error, and everything that
//! validates also translates.

use std::sync::Arc;

use proptest::prelude::*;

use gdatalog_dist::Registry;
use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: parse returns Ok or Err, never panics.
    #[test]
    fn parser_total_on_arbitrary_input(src in "[ -~\\n]{0,200}") {
        let _ = parse_program(&src);
    }

    /// Arbitrary near-miss programs assembled from plausible fragments.
    #[test]
    fn parser_total_on_program_like_input(
        frags in proptest::collection::vec(
            prop_oneof![
                Just("R(X) :- Q(X)."),
                Just("R(Flip<0.5>) :- true."),
                Just("rel Q(int) input."),
                Just("Q(1)."),
                Just("R(Flip<P | X>) :- Q(P, X)."),
                Just("R(X :- Q."),          // broken
                Just("<>,|()."),            // broken
                Just("R(Normal<0.0>) :- true."), // wrong arity
                Just("R(Zorp<1>) :- true."),     // unknown dist
            ],
            0..8,
        )
    ) {
        let src = frags.join("\n");
        // Parse may fail; if it succeeds, validation may fail; if that
        // succeeds, translation must succeed (validation is the gate).
        if let Ok(ast) = parse_program(&src) {
            if let Ok(v) = validate(ast, Arc::new(Registry::standard())) {
                for mode in [SemanticsMode::Grohe, SemanticsMode::Barany] {
                    prop_assert!(translate(&v, mode).is_ok(), "translate failed on:\n{src}");
                }
            }
        }
    }

    /// Pretty-printing round trip on whatever parses: render → reparse →
    /// render is a fixpoint.
    #[test]
    fn pretty_print_is_stable(
        frags in proptest::collection::vec(
            prop_oneof![
                Just("R(X) :- Q(X)."),
                Just("R(Flip<0.5>) :- true."),
                Just("S(Normal<0.0, 1.0>, X) :- Q(X)."),
                Just("G(Geometric<0.5 | X, Y>) :- Q(X, Y)."),
                Just("Q(1, a)."),
                Just("T(\"s\", true, -2.5)."),
            ],
            1..6,
        )
    ) {
        let src = frags.join("\n");
        let p1 = parse_program(&src).expect("fragments are valid");
        let r1 = p1.to_string();
        let p2 = parse_program(&r1).expect("rendered text reparses");
        prop_assert_eq!(r1, p2.to_string());
    }
}
