//! The batch wire format: one [`Request`] per independent unit of work,
//! one [`Reply`] per answer.
//!
//! Requests name relations and facts **textually** (`"Alarm(h0)"`) so they
//! can travel as JSON; the executor resolves them against the cached
//! program's catalog at evaluation time. Each request carries its own
//! input facts (inserted into the pooled session before evaluation),
//! conditioning evidence, backend choice, and Monte-Carlo configuration —
//! requests in one batch are fully independent, which is what makes
//! batched execution embarrassingly parallel *and* bit-reproducible.
//!
//! A request may ask **several queries at once** (the `"queries"` wire
//! member / [`Request::query`]); the executor answers all of them in one
//! backend pass over the session, so a K-statistics dashboard request
//! costs one chase instead of K. The answer is a [`Reply`]: one
//! [`Response`] per query in query order, plus conditioning diagnostics
//! (evidence mass, effective sample size) when the request was
//! conditioned.
//!
//! ```
//! use gdatalog_serve::{Request, json::Json};
//!
//! let req = Request::marginal("Alarm(h0)").input("City(h0, 0.3).").seed(7);
//! let parsed = Request::from_json(&Json::parse(
//!     r#"{"kind": "marginal", "fact": "Alarm(h0)", "input": "City(h0, 0.3).", "seed": 7}"#,
//! ).unwrap()).unwrap();
//! assert_eq!(req, parsed);
//!
//! // Multi-query: one pass, three answers, order preserved.
//! let multi = Request::from_json(&Json::parse(
//!     r#"{"queries": [
//!         {"kind": "marginal", "fact": "Alarm(h0)"},
//!         {"kind": "expectation", "rel": "Alarm"},
//!         {"kind": "quantile", "rel": "Reading", "col": 1, "q": 0.5}
//!     ], "input": "City(h0, 0.3)."}"#,
//! ).unwrap()).unwrap();
//! assert_eq!(multi.queries.len(), 3);
//! ```

use gdatalog_core::EvidenceSummary;
use gdatalog_data::{Catalog, Fact};
use gdatalog_pdb::{AggFun, ColumnHistogram, Moments};

use crate::json::Json;
use crate::ServeError;

/// Which evaluation strategy a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendSpec {
    /// Let the builder pick: exact for discrete programs, Monte-Carlo for
    /// continuous ones.
    #[default]
    Auto,
    /// Exact sequential chase-tree enumeration.
    Exact,
    /// Exact parallel chase enumeration.
    ExactParallel,
    /// Monte-Carlo path sampling.
    Mc,
    /// Single-site Metropolis-Hastings over chase traces — posterior
    /// sampling that stays effective where likelihood weighting's
    /// effective sample size collapses under sharp evidence.
    Mh,
}

/// One query of a request, with textual relation/fact references.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// `P(fact ∈ D)` for one fact, e.g. `"Alarm(h0)"`.
    Marginal {
        /// The fact, in program syntax (trailing `.` optional).
        fact: String,
    },
    /// The marginal of every tuple of a relation occurring in some world.
    Marginals {
        /// Relation name.
        rel: String,
    },
    /// Probability that **all** listed facts are present (a conjunctive
    /// event over fact containment, §2.3).
    Probability {
        /// Ground facts in program syntax, e.g. `"Alarm(h0). Alarm(h1)."`.
        facts: String,
    },
    /// Mean/variance of an aggregate over a relation's tuples per world.
    Expectation {
        /// Relation name.
        rel: String,
        /// Aggregate applied per world.
        agg: AggFun,
        /// Column to aggregate (projected to the aggregate position);
        /// `None` aggregates whole tuples (only meaningful for `count`).
        col: Option<usize>,
    },
    /// Probability-weighted fixed-bin histogram of a numeric column.
    Histogram {
        /// Relation name.
        rel: String,
        /// Column index.
        col: usize,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
        /// Number of equal-width bins.
        bins: usize,
    },
    /// Weighted `q`-quantile of the values at a numeric column.
    Quantile {
        /// Relation name.
        rel: String,
        /// Column index.
        col: usize,
        /// The quantile, in `[0, 1]`.
        q: f64,
    },
    /// Tail probability `P(some fact has column value ≥ threshold)`.
    Tail {
        /// Relation name.
        rel: String,
        /// Column index.
        col: usize,
        /// Inclusive threshold.
        threshold: f64,
    },
}

/// One independent request: one or more queries answered in a **single**
/// backend pass over one session state.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The queries to answer, in answer order. Every query of one request
    /// shares the request's input facts, evidence, backend, and seed —
    /// and one evaluation pass.
    pub queries: Vec<QueryKind>,
    /// Ground facts (program syntax) inserted into the session before
    /// evaluation — the request's **input** facts. (Renamed from
    /// `evidence`, which wrongly suggested conditioning; the JSON parser
    /// still accepts the old `"evidence"` key as an alias.)
    pub input: Option<String>,
    /// Observation statements to **condition** on (`@observe` syntax with
    /// the prefix optional): hard ground facts (`"Alarm(h0)."`) and soft
    /// likelihood statements (`"Normal<M, 1.0> == 2.5 :- Mu(M)."`). The
    /// answer is then the posterior given this evidence, self-normalized.
    pub given: Option<String>,
    /// Evaluation strategy.
    pub backend: BackendSpec,
    /// Monte-Carlo run count (applies when the Monte-Carlo backend is
    /// selected or auto-picked).
    pub runs: Option<usize>,
    /// Monte-Carlo master seed.
    pub seed: Option<u64>,
    /// Chase depth/step budget.
    pub max_depth: Option<usize>,
    /// Metropolis-Hastings burn-in steps (the `mh` backend only).
    pub burn_in: Option<usize>,
    /// Metropolis-Hastings thinning interval (the `mh` backend only).
    pub thin: Option<usize>,
    /// Adaptive run control (the wire member `"infer": {"mode": "ess",
    /// "target": …}`): grow the Monte-Carlo run count in doubling batches
    /// until the conditioned pass's effective sample size reaches this
    /// target. Incompatible with the exact and `mh` backends.
    pub ess_target: Option<f64>,
    /// Run-count cap for adaptive inference (wire member
    /// `"infer": {…, "max_runs": …}`).
    pub max_runs: Option<usize>,
    /// Cooperative evaluation deadline, set by the serving layer (not part
    /// of the wire format): the chase aborts with
    /// `EngineError::DeadlineExceeded` once it has passed.
    pub deadline: Option<std::time::Instant>,
}

impl Request {
    fn new(query: QueryKind) -> Request {
        Request::multi(vec![query])
    }

    /// A request asking several queries at once (one backend pass).
    pub fn multi(queries: Vec<QueryKind>) -> Request {
        Request {
            queries,
            input: None,
            given: None,
            backend: BackendSpec::Auto,
            runs: None,
            seed: None,
            max_depth: None,
            burn_in: None,
            thin: None,
            ess_target: None,
            max_runs: None,
            deadline: None,
        }
    }

    /// A marginal request for one fact, e.g. `"Alarm(h0)"`.
    pub fn marginal(fact: impl Into<String>) -> Request {
        Request::new(QueryKind::Marginal { fact: fact.into() })
    }

    /// An all-fact-marginals request for one relation.
    pub fn marginals(rel: impl Into<String>) -> Request {
        Request::new(QueryKind::Marginals { rel: rel.into() })
    }

    /// A conjunctive event-probability request: all listed facts present.
    pub fn probability(facts: impl Into<String>) -> Request {
        Request::new(QueryKind::Probability {
            facts: facts.into(),
        })
    }

    /// An expectation request over a relation.
    pub fn expectation(rel: impl Into<String>, agg: AggFun) -> Request {
        Request::new(QueryKind::Expectation {
            rel: rel.into(),
            agg,
            col: None,
        })
    }

    /// A histogram request over `rel`'s column `col`.
    pub fn histogram(rel: impl Into<String>, col: usize, lo: f64, hi: f64, bins: usize) -> Request {
        Request::new(QueryKind::Histogram {
            rel: rel.into(),
            col,
            lo,
            hi,
            bins,
        })
    }

    /// A quantile request over `rel`'s column `col`.
    pub fn quantile(rel: impl Into<String>, col: usize, q: f64) -> Request {
        Request::new(QueryKind::Quantile {
            rel: rel.into(),
            col,
            q,
        })
    }

    /// A tail-probability request over `rel`'s column `col`.
    pub fn tail(rel: impl Into<String>, col: usize, threshold: f64) -> Request {
        Request::new(QueryKind::Tail {
            rel: rel.into(),
            col,
            threshold,
        })
    }

    /// Appends another query to the request — all queries of one request
    /// are answered by a single backend pass, in append order.
    pub fn query(mut self, query: QueryKind) -> Request {
        self.queries.push(query);
        self
    }

    /// Sets the request's input facts.
    pub fn input(mut self, facts: impl Into<String>) -> Request {
        self.input = Some(facts.into());
        self
    }

    /// Back-compat alias for [`Request::input`] (the member used to be
    /// called `evidence`, which wrongly suggested conditioning — use
    /// [`Request::given`] for that).
    pub fn evidence(self, facts: impl Into<String>) -> Request {
        self.input(facts)
    }

    /// Conditions the request on observation statements (the wire
    /// counterpart of `Evaluation::given`).
    pub fn given(mut self, observations: impl Into<String>) -> Request {
        self.given = Some(observations.into());
        self
    }

    /// Forces exact sequential enumeration.
    pub fn exact(mut self) -> Request {
        self.backend = BackendSpec::Exact;
        self
    }

    /// Forces Monte-Carlo sampling with `runs` runs.
    pub fn mc(mut self, runs: usize) -> Request {
        self.backend = BackendSpec::Mc;
        self.runs = Some(runs);
        self
    }

    /// Forces Metropolis-Hastings sampling keeping `samples` states.
    pub fn mh(mut self, samples: usize) -> Request {
        self.backend = BackendSpec::Mh;
        self.runs = Some(samples);
        self
    }

    /// Sets the Metropolis-Hastings burn-in step count.
    pub fn burn_in(mut self, steps: usize) -> Request {
        self.burn_in = Some(steps);
        self
    }

    /// Sets the Metropolis-Hastings thinning interval.
    pub fn thin(mut self, every: usize) -> Request {
        self.thin = Some(every);
        self
    }

    /// Asks for ESS-adaptive Monte-Carlo inference: run count grows in
    /// doubling batches until the conditioned pass's effective sample
    /// size reaches `target` (the wire's `"infer"` member).
    pub fn ess_target(mut self, target: f64) -> Request {
        self.ess_target = Some(target);
        self
    }

    /// Caps the run count of ESS-adaptive inference.
    pub fn max_runs(mut self, cap: usize) -> Request {
        self.max_runs = Some(cap);
        self
    }

    /// Sets the Monte-Carlo master seed.
    pub fn seed(mut self, seed: u64) -> Request {
        self.seed = Some(seed);
        self
    }

    /// Sets the chase depth/step budget.
    pub fn max_depth(mut self, depth: usize) -> Request {
        self.max_depth = Some(depth);
        self
    }

    /// Sets a cooperative evaluation deadline (serving-layer concern; not
    /// part of the wire format).
    pub fn deadline(mut self, deadline: std::time::Instant) -> Request {
        self.deadline = Some(deadline);
        self
    }

    /// Parses one request object of the batch wire format: either the
    /// single-query form (`"kind"` and its fields at top level) or the
    /// multi-query form (a `"queries"` array of such objects, sharing the
    /// top-level configuration members).
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] on unknown kinds, missing fields, or a
    /// request mixing both forms.
    pub fn from_json(v: &Json) -> Result<Request, ServeError> {
        // Optional members: absent is fine, present-but-invalid (wrong
        // type, negative, fractional, or beyond the exact-f64 range) is
        // an error — never a silent fallback to a default.
        let opt_str = |key: &str| -> Result<Option<String>, ServeError> {
            match v.get(key) {
                None => Ok(None),
                Some(s) => s.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
                    ServeError::BadRequest(format!("`{key}` must be a string, got {}", s.render()))
                }),
            }
        };
        let opt_usize = |key: &str| -> Result<Option<usize>, ServeError> {
            match v.get(key) {
                None => Ok(None),
                Some(n) => n.as_usize().map(Some).ok_or_else(|| {
                    ServeError::BadRequest(format!(
                        "`{key}` must be a non-negative whole number, got {}",
                        n.render()
                    ))
                }),
            }
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, ServeError> {
            match v.get(key) {
                None => Ok(None),
                Some(n) => n.as_u64().map(Some).ok_or_else(|| {
                    ServeError::BadRequest(format!(
                        "`{key}` must be a whole number in [0, 2^53] — JSON numbers \
                         are f64, so larger values do not survive the wire — got {}",
                        n.render()
                    ))
                }),
            }
        };
        let queries = match v.get("queries") {
            Some(arr) => {
                if v.get("kind").is_some() {
                    return Err(ServeError::BadRequest(
                        "a request carries either a top-level `kind` (single query) \
                         or a `queries` array, not both"
                            .to_string(),
                    ));
                }
                let items = arr.as_array().ok_or_else(|| {
                    ServeError::BadRequest(format!(
                        "`queries` must be an array, got {}",
                        arr.render()
                    ))
                })?;
                if items.is_empty() {
                    return Err(ServeError::BadRequest(
                        "`queries` must not be empty".to_string(),
                    ));
                }
                items
                    .iter()
                    .map(query_from_json)
                    .collect::<Result<Vec<_>, _>>()?
            }
            None => vec![query_from_json(v)?],
        };
        let backend = match opt_str("backend")?.as_deref().unwrap_or("auto") {
            "auto" => BackendSpec::Auto,
            "exact" => BackendSpec::Exact,
            "exact-parallel" => BackendSpec::ExactParallel,
            "mc" => BackendSpec::Mc,
            "mh" => BackendSpec::Mh,
            other => {
                return Err(ServeError::BadRequest(format!(
                    "unknown backend `{other}` (expected auto | exact | exact-parallel | mc | mh)"
                )))
            }
        };
        // Adaptive inference: `"infer": {"mode": "ess", "target": …,
        // "max_runs"?: …}`. Only the `ess` mode exists today; an explicit
        // unknown mode is an error, not a silent fixed-run fallback.
        let (ess_target, max_runs) = match v.get("infer") {
            None => (None, None),
            Some(obj) => {
                let mode = obj.get("mode").and_then(Json::as_str).ok_or_else(|| {
                    ServeError::BadRequest("`infer` needs a string `mode`".to_string())
                })?;
                if mode != "ess" {
                    return Err(ServeError::BadRequest(format!(
                        "unknown infer mode `{mode}` (expected ess)"
                    )));
                }
                let target = obj.get("target").and_then(Json::as_f64).ok_or_else(|| {
                    ServeError::BadRequest("`infer` needs a numeric `target`".to_string())
                })?;
                if !target.is_finite() || target < 1.0 {
                    return Err(ServeError::BadRequest(format!(
                        "`infer.target` must be a finite effective sample size ≥ 1, got {target}"
                    )));
                }
                let cap = match obj.get("max_runs") {
                    None => None,
                    Some(n) => Some(n.as_usize().ok_or_else(|| {
                        ServeError::BadRequest(format!(
                            "`infer.max_runs` must be a non-negative whole number, got {}",
                            n.render()
                        ))
                    })?),
                };
                (Some(target), cap)
            }
        };
        // `input` is the member's name; `evidence` stays accepted as a
        // back-compat alias (it never meant conditioning — that's
        // `given`). Both at once would be ambiguous.
        let input = match (opt_str("input")?, opt_str("evidence")?) {
            (Some(_), Some(_)) => {
                return Err(ServeError::BadRequest(
                    "`input` and its legacy alias `evidence` are the same member; \
                     send only one"
                        .to_string(),
                ))
            }
            (input, legacy) => input.or(legacy),
        };
        Ok(Request {
            queries,
            input,
            given: opt_str("given")?,
            backend,
            runs: opt_usize("runs")?,
            seed: opt_u64("seed")?,
            max_depth: opt_usize("max_depth")?,
            burn_in: opt_usize("burn_in")?,
            thin: opt_usize("thin")?,
            ess_target,
            max_runs,
            // Deadlines are a serving-layer policy (set from the server's
            // configuration), not a wire member a client can extend.
            deadline: None,
        })
    }
}

/// Parses one query object (the `"kind"` + kind-specific fields shape
/// used both at request top level and inside a `"queries"` array).
///
/// # Errors
/// [`ServeError::BadRequest`] on unknown kinds or missing fields.
pub fn query_from_json(v: &Json) -> Result<QueryKind, ServeError> {
    let bad = |msg: &str| ServeError::BadRequest(msg.to_string());
    let str_field = |key: &str| -> Result<String, ServeError> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServeError::BadRequest(format!("request needs a string `{key}`")))
    };
    let opt_str = |key: &str| -> Result<Option<String>, ServeError> {
        match v.get(key) {
            None => Ok(None),
            Some(s) => s.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
                ServeError::BadRequest(format!("`{key}` must be a string, got {}", s.render()))
            }),
        }
    };
    let opt_usize = |key: &str| -> Result<Option<usize>, ServeError> {
        match v.get(key) {
            None => Ok(None),
            Some(n) => n.as_usize().map(Some).ok_or_else(|| {
                ServeError::BadRequest(format!(
                    "`{key}` must be a non-negative whole number, got {}",
                    n.render()
                ))
            }),
        }
    };
    let num_field = |key: &str, what: &str| -> Result<f64, ServeError> {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| ServeError::BadRequest(format!("{what} needs a numeric `{key}`")))
    };
    let kind = str_field("kind")?;
    Ok(match kind.as_str() {
        "marginal" => QueryKind::Marginal {
            fact: str_field("fact")?,
        },
        "marginals" => QueryKind::Marginals {
            rel: str_field("rel")?,
        },
        "probability" => QueryKind::Probability {
            facts: str_field("facts")?,
        },
        "expectation" => QueryKind::Expectation {
            rel: str_field("rel")?,
            agg: match opt_str("agg")?.as_deref().unwrap_or("count") {
                "count" => AggFun::Count,
                "sum" => AggFun::Sum,
                "avg" => AggFun::Avg,
                "min" => AggFun::Min,
                "max" => AggFun::Max,
                other => {
                    return Err(ServeError::BadRequest(format!(
                        "unknown aggregate `{other}`"
                    )))
                }
            },
            col: opt_usize("col")?,
        },
        "histogram" => QueryKind::Histogram {
            rel: str_field("rel")?,
            col: opt_usize("col")?.ok_or_else(|| bad("histogram needs an integer `col`"))?,
            lo: num_field("lo", "histogram")?,
            hi: num_field("hi", "histogram")?,
            bins: opt_usize("bins")?.unwrap_or(20),
        },
        "quantile" => QueryKind::Quantile {
            rel: str_field("rel")?,
            col: opt_usize("col")?.ok_or_else(|| bad("quantile needs an integer `col`"))?,
            q: num_field("q", "quantile")?,
        },
        "tail" => QueryKind::Tail {
            rel: str_field("rel")?,
            col: opt_usize("col")?.ok_or_else(|| bad("tail needs an integer `col`"))?,
            threshold: num_field("threshold", "tail")?,
        },
        other => {
            return Err(ServeError::BadRequest(format!(
                "unknown request kind `{other}` (expected marginal | marginals | \
                 probability | expectation | histogram | quantile | tail)"
            )))
        }
    })
}

/// The answer to one query of a request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A marginal probability.
    Marginal(f64),
    /// A conjunctive event probability.
    Probability(f64),
    /// Moments of an aggregate (`None` when no world mass was observed).
    Expectation(Option<Moments>),
    /// A column histogram.
    Histogram(ColumnHistogram),
    /// All fact marginals of a relation, facts rendered in program syntax.
    Marginals(Vec<(String, f64)>),
    /// A weighted quantile (`None` when no value mass was observed).
    Quantile(Option<f64>),
    /// A tail probability.
    Tail(f64),
}

impl Response {
    /// Renders the response as a JSON object tagged with its kind.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Marginal(p) => Json::Obj(vec![
                ("kind".into(), Json::Str("marginal".into())),
                ("p".into(), Json::Num(*p)),
            ]),
            Response::Probability(p) => Json::Obj(vec![
                ("kind".into(), Json::Str("probability".into())),
                ("p".into(), Json::Num(*p)),
            ]),
            Response::Expectation(None) => Json::Obj(vec![
                ("kind".into(), Json::Str("expectation".into())),
                ("empty".into(), Json::Bool(true)),
            ]),
            Response::Expectation(Some(m)) => Json::Obj(vec![
                ("kind".into(), Json::Str("expectation".into())),
                ("mean".into(), Json::Num(m.mean)),
                ("variance".into(), Json::Num(m.variance)),
                ("mass".into(), Json::Num(m.mass)),
            ]),
            Response::Histogram(h) => Json::Obj(vec![
                ("kind".into(), Json::Str("histogram".into())),
                ("lo".into(), Json::Num(h.lo)),
                ("hi".into(), Json::Num(h.hi)),
                (
                    "bins".into(),
                    Json::Arr(h.bins.iter().map(|c| Json::Num(*c)).collect()),
                ),
                ("underflow".into(), Json::Num(h.underflow)),
                ("overflow".into(), Json::Num(h.overflow)),
                ("nan".into(), Json::Num(h.nan)),
                ("mass".into(), Json::Num(h.mass)),
            ]),
            Response::Marginals(rows) => Json::Obj(vec![
                ("kind".into(), Json::Str("marginals".into())),
                (
                    "marginals".into(),
                    Json::Arr(
                        rows.iter()
                            .map(|(fact, p)| {
                                Json::Obj(vec![
                                    ("fact".into(), Json::Str(fact.clone())),
                                    ("p".into(), Json::Num(*p)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Quantile(None) => Json::Obj(vec![
                ("kind".into(), Json::Str("quantile".into())),
                ("empty".into(), Json::Bool(true)),
            ]),
            Response::Quantile(Some(value)) => Json::Obj(vec![
                ("kind".into(), Json::Str("quantile".into())),
                ("value".into(), Json::Num(*value)),
            ]),
            Response::Tail(p) => Json::Obj(vec![
                ("kind".into(), Json::Str("tail".into())),
                ("p".into(), Json::Num(*p)),
            ]),
        }
    }
}

/// The full answer to one [`Request`]: one [`Response`] per query in
/// query order, plus the pass's conditioning diagnostics when the
/// request was conditioned (`given` / program `@observe` clauses).
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// One response per query, in query order.
    pub responses: Vec<Response>,
    /// The evidence summary of the (single, shared) conditioned pass:
    /// observed mass and effective sample size. `None` for
    /// unconditioned requests.
    pub evidence: Option<EvidenceSummary>,
}

impl Reply {
    /// The sole response of a single-query request.
    ///
    /// # Panics
    /// Panics unless the reply answers exactly one query.
    pub fn single(&self) -> &Response {
        assert_eq!(
            self.responses.len(),
            1,
            "Reply::single on a {}-query reply",
            self.responses.len()
        );
        &self.responses[0]
    }

    /// Renders the reply as JSON. Replies answering exactly **one**
    /// query keep the flat pre-multi-query shape (`{"kind": …, …}`) —
    /// regardless of whether the request used the top-level or the
    /// `"queries": [...]` form — gaining an `"evidence"` member when
    /// conditioned; replies answering several render as
    /// `{"kind": "multi", "answers": […], "evidence"?: …}`. Clients
    /// parse unambiguously by branching on `kind == "multi"` (no flat
    /// answer shape uses that tag).
    pub fn to_json(&self) -> Json {
        let evidence = self.evidence.as_ref().map(|ev| {
            // `log_mass` is the authoritative evidence figure — `mass` is
            // its exponential and reads 0 once the log drops below ≈ −745
            // (kept for back-compat; see docs/API.md).
            let mut members = vec![
                ("mass".into(), Json::Num(ev.mass)),
                ("log_mass".into(), Json::Num(ev.log_mass)),
                ("ess".into(), Json::Num(ev.ess)),
                ("worlds".into(), Json::Num(ev.worlds as f64)),
                ("runs".into(), Json::Num(ev.runs as f64)),
            ];
            if let Some(rate) = ev.accept_rate {
                members.push(("accept_rate".into(), Json::Num(rate)));
            }
            Json::Obj(members)
        });
        if self.responses.len() == 1 {
            let mut obj = match self.responses[0].to_json() {
                Json::Obj(members) => members,
                other => vec![("answer".into(), other)],
            };
            if let Some(ev) = evidence {
                obj.push(("evidence".into(), ev));
            }
            return Json::Obj(obj);
        }
        let mut obj = vec![
            ("kind".into(), Json::Str("multi".into())),
            (
                "answers".into(),
                Json::Arr(self.responses.iter().map(Response::to_json).collect()),
            ),
        ];
        if let Some(ev) = evidence {
            obj.push(("evidence".into(), ev));
        }
        Json::Obj(obj)
    }
}

/// Renders a fact in program syntax against a catalog, e.g. `Alarm(h0)`.
pub fn fact_text(fact: &Fact, catalog: &Catalog) -> String {
    let mut line = format!("{}(", catalog.name(fact.rel));
    for (i, v) in fact.tuple.values().iter().enumerate() {
        if i > 0 {
            line.push_str(", ");
        }
        line.push_str(&format!("{v}"));
    }
    line.push(')');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let reqs = r#"[
            {"kind": "marginal", "fact": "A(x)"},
            {"kind": "marginals", "rel": "A", "backend": "exact-parallel"},
            {"kind": "probability", "facts": "A(x). A(y).", "backend": "mc", "runs": 100},
            {"kind": "expectation", "rel": "A", "agg": "sum", "col": 1},
            {"kind": "histogram", "rel": "A", "col": 0, "lo": 0, "hi": 1, "bins": 4},
            {"kind": "quantile", "rel": "A", "col": 0, "q": 0.5},
            {"kind": "tail", "rel": "A", "col": 0, "threshold": 2.5}
        ]"#;
        let parsed: Vec<Request> = Json::parse(reqs)
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| Request::from_json(v).unwrap())
            .collect();
        assert_eq!(parsed.len(), 7);
        assert_eq!(parsed[1].backend, BackendSpec::ExactParallel);
        assert_eq!(parsed[2].runs, Some(100));
        assert!(matches!(
            &parsed[3].queries[0],
            QueryKind::Expectation {
                agg: AggFun::Sum,
                col: Some(1),
                ..
            }
        ));
        assert!(matches!(
            &parsed[5].queries[0],
            QueryKind::Quantile { q, .. } if (*q - 0.5).abs() < 1e-12
        ));
        assert!(matches!(
            &parsed[6].queries[0],
            QueryKind::Tail { threshold, .. } if (*threshold - 2.5).abs() < 1e-12
        ));
    }

    #[test]
    fn parses_multi_query_requests() {
        let v = Json::parse(
            r#"{"queries": [
                {"kind": "marginal", "fact": "A(x)"},
                {"kind": "expectation", "rel": "A"},
                {"kind": "tail", "rel": "A", "col": 0, "threshold": 1}
            ], "input": "B(x).", "seed": 9}"#,
        )
        .unwrap();
        let req = Request::from_json(&v).unwrap();
        assert_eq!(req.queries.len(), 3);
        assert_eq!(req.input.as_deref(), Some("B(x)."));
        assert_eq!(req.seed, Some(9));
        // Mixing the single- and multi-query forms is ambiguous.
        let both = Json::parse(
            r#"{"kind": "marginal", "fact": "A(x)",
                "queries": [{"kind": "marginals", "rel": "A"}]}"#,
        )
        .unwrap();
        assert!(Request::from_json(&both).is_err());
        // An empty queries array asks nothing — reject it.
        let empty = Json::parse(r#"{"queries": []}"#).unwrap();
        assert!(Request::from_json(&empty).is_err());
    }

    #[test]
    fn evidence_is_a_back_compat_alias_for_input() {
        let legacy =
            Json::parse(r#"{"kind": "marginal", "fact": "A(x)", "evidence": "B(x)."}"#).unwrap();
        let renamed =
            Json::parse(r#"{"kind": "marginal", "fact": "A(x)", "input": "B(x)."}"#).unwrap();
        assert_eq!(
            Request::from_json(&legacy).unwrap(),
            Request::from_json(&renamed).unwrap()
        );
        // Both at once is ambiguous — error, not silent preference.
        let both = Json::parse(
            r#"{"kind": "marginal", "fact": "A(x)", "input": "B(x).", "evidence": "C(x)."}"#,
        )
        .unwrap();
        assert!(Request::from_json(&both).is_err());
        // The Rust builder alias matches the rename too.
        assert_eq!(
            Request::marginal("A(x)").evidence("B(x)."),
            Request::marginal("A(x)").input("B(x).")
        );
    }

    #[test]
    fn parses_mh_and_adaptive_inference_members() {
        let v = Json::parse(
            r#"{"kind": "marginal", "fact": "A(x)", "backend": "mh",
                "runs": 500, "burn_in": 100, "thin": 3}"#,
        )
        .unwrap();
        let req = Request::from_json(&v).unwrap();
        assert_eq!(req.backend, BackendSpec::Mh);
        assert_eq!(req.runs, Some(500));
        assert_eq!(req.burn_in, Some(100));
        assert_eq!(req.thin, Some(3));
        assert_eq!(req, Request::marginal("A(x)").mh(500).burn_in(100).thin(3));

        let v = Json::parse(
            r#"{"kind": "marginal", "fact": "A(x)",
                "infer": {"mode": "ess", "target": 200, "max_runs": 100000}}"#,
        )
        .unwrap();
        let req = Request::from_json(&v).unwrap();
        assert_eq!(req.ess_target, Some(200.0));
        assert_eq!(req.max_runs, Some(100_000));
        assert_eq!(
            req,
            Request::marginal("A(x)")
                .ess_target(200.0)
                .max_runs(100_000)
        );

        // Malformed adaptive specs error instead of degrading to a
        // fixed-run evaluation.
        for bad in [
            r#"{"kind": "marginal", "fact": "A(x)", "infer": {"target": 200}}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "infer": {"mode": "magic", "target": 200}}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "infer": {"mode": "ess"}}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "infer": {"mode": "ess", "target": 0.5}}"#,
            r#"{"kind": "marginal", "fact": "A(x)",
                "infer": {"mode": "ess", "target": 200, "max_runs": -1}}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "burn_in": -3}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "thin": 1.5}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(Request::from_json(&v).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn rejects_unknown_kind_and_backend() {
        let v = Json::parse(r#"{"kind": "zorp"}"#).unwrap();
        assert!(Request::from_json(&v).is_err());
        let v = Json::parse(r#"{"kind": "marginal", "fact": "A(x)", "backend": "gpu"}"#).unwrap();
        assert!(Request::from_json(&v).is_err());
    }

    #[test]
    fn invalid_numeric_members_error_instead_of_degrading() {
        // A present-but-invalid `runs` must not silently fall back to the
        // 10,000-run default.
        for bad in [
            r#"{"kind": "marginal", "fact": "A(x)", "runs": -5}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "runs": 1.5}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "seed": "seven"}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "max_depth": -1}"#,
            r#"{"kind": "histogram", "rel": "A", "col": 0, "lo": 0, "hi": 1, "bins": 2.5}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "evidence": 5}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "input": 5}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "backend": 5}"#,
            r#"{"kind": "expectation", "rel": "A", "agg": 3}"#,
            r#"{"kind": "quantile", "rel": "A", "col": 0}"#,
            r#"{"kind": "tail", "rel": "A", "col": 0}"#,
            r#"{"queries": 5}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(Request::from_json(&v).is_err(), "{bad} should be rejected");
        }
        // Large-but-exact run counts parse instead of being dropped.
        let v = Json::parse(r#"{"kind": "marginal", "fact": "A(x)", "runs": 5000000000}"#).unwrap();
        assert_eq!(Request::from_json(&v).unwrap().runs, Some(5_000_000_000));
    }

    #[test]
    fn responses_render_as_json() {
        let r = Response::Marginal(0.25);
        assert_eq!(r.to_json().render(), r#"{"kind": "marginal", "p": 0.25}"#);
        let e = Response::Expectation(None);
        assert_eq!(
            e.to_json().render(),
            r#"{"kind": "expectation", "empty": true}"#
        );
        let q = Response::Quantile(Some(1.5));
        assert_eq!(
            q.to_json().render(),
            r#"{"kind": "quantile", "value": 1.5}"#
        );
        let t = Response::Tail(0.1);
        assert_eq!(t.to_json().render(), r#"{"kind": "tail", "p": 0.1}"#);
    }

    #[test]
    fn replies_render_flat_single_and_tagged_multi() {
        // Single-query replies keep the old flat shape.
        let single = Reply {
            responses: vec![Response::Marginal(0.25)],
            evidence: None,
        };
        assert_eq!(
            single.to_json().render(),
            r#"{"kind": "marginal", "p": 0.25}"#
        );
        // Conditioned single-query replies gain the diagnostics member.
        let conditioned = Reply {
            responses: vec![Response::Marginal(1.0)],
            evidence: Some(EvidenceSummary {
                mass: 0.06,
                log_mass: -2.5,
                ess: 3.0,
                worlds: 3,
                runs: 8,
                accept_rate: None,
            }),
        };
        assert_eq!(
            conditioned.to_json().render(),
            r#"{"kind": "marginal", "p": 1, "evidence": {"mass": 0.06, "log_mass": -2.5, "ess": 3, "worlds": 3, "runs": 8}}"#
        );
        // An MH pass also reports its chain acceptance rate.
        let mh = Reply {
            responses: vec![Response::Marginal(1.0)],
            evidence: Some(EvidenceSummary {
                mass: 1.0,
                log_mass: 0.0,
                ess: 100.0,
                worlds: 100,
                runs: 100,
                accept_rate: Some(0.5),
            }),
        };
        assert_eq!(
            mh.to_json().render(),
            r#"{"kind": "marginal", "p": 1, "evidence": {"mass": 1, "log_mass": 0, "ess": 100, "worlds": 100, "runs": 100, "accept_rate": 0.5}}"#
        );
        // Multi-query replies are tagged and ordered.
        let multi = Reply {
            responses: vec![Response::Marginal(0.25), Response::Tail(0.5)],
            evidence: None,
        };
        assert_eq!(
            multi.to_json().render(),
            r#"{"kind": "multi", "answers": [{"kind": "marginal", "p": 0.25}, {"kind": "tail", "p": 0.5}]}"#
        );
    }
}
