//! The batch wire format: one [`Request`] per independent query, one
//! [`Response`] per answer.
//!
//! Requests name relations and facts **textually** (`"Alarm(h0)"`) so they
//! can travel as JSON; the executor resolves them against the cached
//! program's catalog at evaluation time. Each request carries its own
//! evidence (ground facts inserted into the pooled session before
//! evaluation), backend choice, and Monte-Carlo configuration — requests
//! in one batch are fully independent, which is what makes batched
//! execution embarrassingly parallel *and* bit-reproducible.
//!
//! ```
//! use gdatalog_serve::{Request, json::Json};
//!
//! let req = Request::marginal("Alarm(h0)").evidence("City(h0, 0.3).").seed(7);
//! let parsed = Request::from_json(&Json::parse(
//!     r#"{"kind": "marginal", "fact": "Alarm(h0)", "evidence": "City(h0, 0.3).", "seed": 7}"#,
//! ).unwrap()).unwrap();
//! assert_eq!(req, parsed);
//! ```

use gdatalog_data::{Catalog, Fact};
use gdatalog_pdb::{AggFun, ColumnHistogram, Moments};

use crate::json::Json;
use crate::ServeError;

/// Which evaluation strategy a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendSpec {
    /// Let the builder pick: exact for discrete programs, Monte-Carlo for
    /// continuous ones.
    #[default]
    Auto,
    /// Exact sequential chase-tree enumeration.
    Exact,
    /// Exact parallel chase enumeration.
    ExactParallel,
    /// Monte-Carlo path sampling.
    Mc,
}

/// The query a request asks, with textual relation/fact references.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// `P(fact ∈ D)` for one fact, e.g. `"Alarm(h0)"`.
    Marginal {
        /// The fact, in program syntax (trailing `.` optional).
        fact: String,
    },
    /// The marginal of every tuple of a relation occurring in some world.
    Marginals {
        /// Relation name.
        rel: String,
    },
    /// Probability that **all** listed facts are present (a conjunctive
    /// event over fact containment, §2.3).
    Probability {
        /// Ground facts in program syntax, e.g. `"Alarm(h0). Alarm(h1)."`.
        facts: String,
    },
    /// Mean/variance of an aggregate over a relation's tuples per world.
    Expectation {
        /// Relation name.
        rel: String,
        /// Aggregate applied per world.
        agg: AggFun,
        /// Column to aggregate (projected to the aggregate position);
        /// `None` aggregates whole tuples (only meaningful for `count`).
        col: Option<usize>,
    },
    /// Probability-weighted fixed-bin histogram of a numeric column.
    Histogram {
        /// Relation name.
        rel: String,
        /// Column index.
        col: usize,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
        /// Number of equal-width bins.
        bins: usize,
    },
}

/// One independent query request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// What to compute.
    pub query: QueryKind,
    /// Ground facts (program syntax) inserted into the session before
    /// evaluation — the request's **input** facts.
    pub evidence: Option<String>,
    /// Observation statements to **condition** on (`@observe` syntax with
    /// the prefix optional): hard ground facts (`"Alarm(h0)."`) and soft
    /// likelihood statements (`"Normal<M, 1.0> == 2.5 :- Mu(M)."`). The
    /// answer is then the posterior given this evidence, self-normalized.
    pub given: Option<String>,
    /// Evaluation strategy.
    pub backend: BackendSpec,
    /// Monte-Carlo run count (applies when the Monte-Carlo backend is
    /// selected or auto-picked).
    pub runs: Option<usize>,
    /// Monte-Carlo master seed.
    pub seed: Option<u64>,
    /// Chase depth/step budget.
    pub max_depth: Option<usize>,
}

impl Request {
    fn new(query: QueryKind) -> Request {
        Request {
            query,
            evidence: None,
            given: None,
            backend: BackendSpec::Auto,
            runs: None,
            seed: None,
            max_depth: None,
        }
    }

    /// A marginal request for one fact, e.g. `"Alarm(h0)"`.
    pub fn marginal(fact: impl Into<String>) -> Request {
        Request::new(QueryKind::Marginal { fact: fact.into() })
    }

    /// An all-fact-marginals request for one relation.
    pub fn marginals(rel: impl Into<String>) -> Request {
        Request::new(QueryKind::Marginals { rel: rel.into() })
    }

    /// A conjunctive event-probability request: all listed facts present.
    pub fn probability(facts: impl Into<String>) -> Request {
        Request::new(QueryKind::Probability {
            facts: facts.into(),
        })
    }

    /// An expectation request over a relation.
    pub fn expectation(rel: impl Into<String>, agg: AggFun) -> Request {
        Request::new(QueryKind::Expectation {
            rel: rel.into(),
            agg,
            col: None,
        })
    }

    /// A histogram request over `rel`'s column `col`.
    pub fn histogram(rel: impl Into<String>, col: usize, lo: f64, hi: f64, bins: usize) -> Request {
        Request::new(QueryKind::Histogram {
            rel: rel.into(),
            col,
            lo,
            hi,
            bins,
        })
    }

    /// Sets the request's input facts.
    pub fn evidence(mut self, facts: impl Into<String>) -> Request {
        self.evidence = Some(facts.into());
        self
    }

    /// Conditions the request on observation statements (the wire
    /// counterpart of `Evaluation::given`).
    pub fn given(mut self, observations: impl Into<String>) -> Request {
        self.given = Some(observations.into());
        self
    }

    /// Forces exact sequential enumeration.
    pub fn exact(mut self) -> Request {
        self.backend = BackendSpec::Exact;
        self
    }

    /// Forces Monte-Carlo sampling with `runs` runs.
    pub fn mc(mut self, runs: usize) -> Request {
        self.backend = BackendSpec::Mc;
        self.runs = Some(runs);
        self
    }

    /// Sets the Monte-Carlo master seed.
    pub fn seed(mut self, seed: u64) -> Request {
        self.seed = Some(seed);
        self
    }

    /// Sets the chase depth/step budget.
    pub fn max_depth(mut self, depth: usize) -> Request {
        self.max_depth = Some(depth);
        self
    }

    /// Parses one request object of the batch wire format.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] on unknown kinds or missing fields.
    pub fn from_json(v: &Json) -> Result<Request, ServeError> {
        let bad = |msg: &str| ServeError::BadRequest(msg.to_string());
        let str_field = |key: &str| -> Result<String, ServeError> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ServeError::BadRequest(format!("request needs a string `{key}`")))
        };
        // Optional members: absent is fine, present-but-invalid (wrong
        // type, negative, fractional, or beyond the exact-f64 range) is
        // an error — never a silent fallback to a default.
        let opt_str = |key: &str| -> Result<Option<String>, ServeError> {
            match v.get(key) {
                None => Ok(None),
                Some(s) => s.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
                    ServeError::BadRequest(format!("`{key}` must be a string, got {}", s.render()))
                }),
            }
        };
        let opt_usize = |key: &str| -> Result<Option<usize>, ServeError> {
            match v.get(key) {
                None => Ok(None),
                Some(n) => n.as_usize().map(Some).ok_or_else(|| {
                    ServeError::BadRequest(format!(
                        "`{key}` must be a non-negative whole number, got {}",
                        n.render()
                    ))
                }),
            }
        };
        let opt_u64 = |key: &str| -> Result<Option<u64>, ServeError> {
            match v.get(key) {
                None => Ok(None),
                Some(n) => n.as_u64().map(Some).ok_or_else(|| {
                    ServeError::BadRequest(format!(
                        "`{key}` must be a whole number in [0, 2^53] — JSON numbers \
                         are f64, so larger values do not survive the wire — got {}",
                        n.render()
                    ))
                }),
            }
        };
        let kind = str_field("kind")?;
        let query = match kind.as_str() {
            "marginal" => QueryKind::Marginal {
                fact: str_field("fact")?,
            },
            "marginals" => QueryKind::Marginals {
                rel: str_field("rel")?,
            },
            "probability" => QueryKind::Probability {
                facts: str_field("facts")?,
            },
            "expectation" => QueryKind::Expectation {
                rel: str_field("rel")?,
                agg: match opt_str("agg")?.as_deref().unwrap_or("count") {
                    "count" => AggFun::Count,
                    "sum" => AggFun::Sum,
                    "avg" => AggFun::Avg,
                    "min" => AggFun::Min,
                    "max" => AggFun::Max,
                    other => {
                        return Err(ServeError::BadRequest(format!(
                            "unknown aggregate `{other}`"
                        )))
                    }
                },
                col: opt_usize("col")?,
            },
            "histogram" => QueryKind::Histogram {
                rel: str_field("rel")?,
                col: opt_usize("col")?.ok_or_else(|| bad("histogram needs an integer `col`"))?,
                lo: v
                    .get("lo")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("histogram needs a numeric `lo`"))?,
                hi: v
                    .get("hi")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("histogram needs a numeric `hi`"))?,
                bins: opt_usize("bins")?.unwrap_or(20),
            },
            other => {
                return Err(ServeError::BadRequest(format!(
                    "unknown request kind `{other}` (expected marginal | marginals | \
                     probability | expectation | histogram)"
                )))
            }
        };
        let backend = match opt_str("backend")?.as_deref().unwrap_or("auto") {
            "auto" => BackendSpec::Auto,
            "exact" => BackendSpec::Exact,
            "exact-parallel" => BackendSpec::ExactParallel,
            "mc" => BackendSpec::Mc,
            other => {
                return Err(ServeError::BadRequest(format!(
                    "unknown backend `{other}` (expected auto | exact | exact-parallel | mc)"
                )))
            }
        };
        Ok(Request {
            query,
            evidence: opt_str("evidence")?,
            given: opt_str("given")?,
            backend,
            runs: opt_usize("runs")?,
            seed: opt_u64("seed")?,
            max_depth: opt_usize("max_depth")?,
        })
    }
}

/// One answered request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A marginal probability.
    Marginal(f64),
    /// A conjunctive event probability.
    Probability(f64),
    /// Moments of an aggregate (`None` when no world mass was observed).
    Expectation(Option<Moments>),
    /// A column histogram.
    Histogram(ColumnHistogram),
    /// All fact marginals of a relation, facts rendered in program syntax.
    Marginals(Vec<(String, f64)>),
}

impl Response {
    /// Renders the response as a JSON object tagged with its kind.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Marginal(p) => Json::Obj(vec![
                ("kind".into(), Json::Str("marginal".into())),
                ("p".into(), Json::Num(*p)),
            ]),
            Response::Probability(p) => Json::Obj(vec![
                ("kind".into(), Json::Str("probability".into())),
                ("p".into(), Json::Num(*p)),
            ]),
            Response::Expectation(None) => Json::Obj(vec![
                ("kind".into(), Json::Str("expectation".into())),
                ("empty".into(), Json::Bool(true)),
            ]),
            Response::Expectation(Some(m)) => Json::Obj(vec![
                ("kind".into(), Json::Str("expectation".into())),
                ("mean".into(), Json::Num(m.mean)),
                ("variance".into(), Json::Num(m.variance)),
                ("mass".into(), Json::Num(m.mass)),
            ]),
            Response::Histogram(h) => Json::Obj(vec![
                ("kind".into(), Json::Str("histogram".into())),
                ("lo".into(), Json::Num(h.lo)),
                ("hi".into(), Json::Num(h.hi)),
                (
                    "bins".into(),
                    Json::Arr(h.bins.iter().map(|c| Json::Num(*c)).collect()),
                ),
                ("underflow".into(), Json::Num(h.underflow)),
                ("overflow".into(), Json::Num(h.overflow)),
                ("nan".into(), Json::Num(h.nan)),
                ("mass".into(), Json::Num(h.mass)),
            ]),
            Response::Marginals(rows) => Json::Obj(vec![
                ("kind".into(), Json::Str("marginals".into())),
                (
                    "marginals".into(),
                    Json::Arr(
                        rows.iter()
                            .map(|(fact, p)| {
                                Json::Obj(vec![
                                    ("fact".into(), Json::Str(fact.clone())),
                                    ("p".into(), Json::Num(*p)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

/// Renders a fact in program syntax against a catalog, e.g. `Alarm(h0)`.
pub fn fact_text(fact: &Fact, catalog: &Catalog) -> String {
    let mut line = format!("{}(", catalog.name(fact.rel));
    for (i, v) in fact.tuple.values().iter().enumerate() {
        if i > 0 {
            line.push_str(", ");
        }
        line.push_str(&format!("{v}"));
    }
    line.push(')');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let reqs = r#"[
            {"kind": "marginal", "fact": "A(x)"},
            {"kind": "marginals", "rel": "A", "backend": "exact-parallel"},
            {"kind": "probability", "facts": "A(x). A(y).", "backend": "mc", "runs": 100},
            {"kind": "expectation", "rel": "A", "agg": "sum", "col": 1},
            {"kind": "histogram", "rel": "A", "col": 0, "lo": 0, "hi": 1, "bins": 4}
        ]"#;
        let parsed: Vec<Request> = Json::parse(reqs)
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| Request::from_json(v).unwrap())
            .collect();
        assert_eq!(parsed.len(), 5);
        assert_eq!(parsed[1].backend, BackendSpec::ExactParallel);
        assert_eq!(parsed[2].runs, Some(100));
        assert!(matches!(
            &parsed[3].query,
            QueryKind::Expectation {
                agg: AggFun::Sum,
                col: Some(1),
                ..
            }
        ));
    }

    #[test]
    fn rejects_unknown_kind_and_backend() {
        let v = Json::parse(r#"{"kind": "zorp"}"#).unwrap();
        assert!(Request::from_json(&v).is_err());
        let v = Json::parse(r#"{"kind": "marginal", "fact": "A(x)", "backend": "gpu"}"#).unwrap();
        assert!(Request::from_json(&v).is_err());
    }

    #[test]
    fn invalid_numeric_members_error_instead_of_degrading() {
        // A present-but-invalid `runs` must not silently fall back to the
        // 10,000-run default.
        for bad in [
            r#"{"kind": "marginal", "fact": "A(x)", "runs": -5}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "runs": 1.5}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "seed": "seven"}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "max_depth": -1}"#,
            r#"{"kind": "histogram", "rel": "A", "col": 0, "lo": 0, "hi": 1, "bins": 2.5}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "evidence": 5}"#,
            r#"{"kind": "marginal", "fact": "A(x)", "backend": 5}"#,
            r#"{"kind": "expectation", "rel": "A", "agg": 3}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(Request::from_json(&v).is_err(), "{bad} should be rejected");
        }
        // Large-but-exact run counts parse instead of being dropped.
        let v = Json::parse(r#"{"kind": "marginal", "fact": "A(x)", "runs": 5000000000}"#).unwrap();
        assert_eq!(Request::from_json(&v).unwrap().runs, Some(5_000_000_000));
    }

    #[test]
    fn responses_render_as_json() {
        let r = Response::Marginal(0.25);
        assert_eq!(r.to_json().render(), r#"{"kind": "marginal", "p": 0.25}"#);
        let e = Response::Expectation(None);
        assert_eq!(
            e.to_json().render(),
            r#"{"kind": "expectation", "empty": true}"#
        );
    }
}
