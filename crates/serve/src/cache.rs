//! The program cache: compile (and plan) each distinct program **once**,
//! no matter how many requests carry it.
//!
//! Compilation — parse, validate, translate to the associated Datalog∃
//! program Ĝ, plan every rule body and intern every index the chase will
//! probe — is a pure function of `(source text, semantics mode)`, so the
//! cache keys entries by the [`source_fingerprint`] content hash. A hit
//! returns the **same** [`Arc`] as every previous hit: plan reuse is
//! pointer identity, not structural re-derivation.
//!
//! ```
//! use gdatalog_serve::ProgramCache;
//! use gdatalog_lang::SemanticsMode;
//! use std::sync::Arc;
//!
//! let cache = ProgramCache::new();
//! let a = cache.get_or_compile("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
//! let b = cache.get_or_compile("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
//! assert!(Arc::ptr_eq(&a, &b), "second request hits the cache");
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().misses, 1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use gdatalog_core::fingerprint::source_fingerprint;
use gdatalog_core::{Engine, EngineError, PreparedProgram, Session};
use gdatalog_lang::{CompiledProgram, SemanticsMode};

/// A compiled program plus its chase plans, ready to serve: the unit the
/// [`ProgramCache`] memoizes and the [`SessionPool`](crate::SessionPool)
/// spawns sessions from.
pub struct PreparedModel {
    fingerprint: u64,
    /// The exact source text compiled, kept so a cache probe can verify a
    /// fingerprint hit against the real key — a 64-bit hash alone would
    /// let a (constructible) collision serve the wrong program.
    source: String,
    mode: SemanticsMode,
    engine: Engine,
}

impl PreparedModel {
    /// Compiles `src` and eagerly builds the chase plans (the point of the
    /// cache is to pay parse+plan once, so the plan cost belongs to the
    /// miss, not to the first request that evaluates).
    ///
    /// # Errors
    /// Syntax/validation/translation errors.
    pub fn compile(src: &str, mode: SemanticsMode) -> Result<PreparedModel, EngineError> {
        let engine = Engine::from_source(src, mode)?;
        engine.prepared();
        Ok(PreparedModel {
            fingerprint: source_fingerprint(src, mode),
            source: src.to_string(),
            mode,
            engine,
        })
    }

    /// The content hash of `(source, mode)` this model was compiled from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The exact source text this model was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The semantics the model was compiled under.
    pub fn mode(&self) -> SemanticsMode {
        self.mode
    }

    /// The compiled engine (shared program + plans).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The compiled program (catalog, rules, analyses).
    pub fn program(&self) -> &CompiledProgram {
        self.engine.program()
    }

    /// The shared chase plans; every session spawned from this model
    /// evaluates against this very allocation.
    pub fn plans(&self) -> &Arc<PreparedProgram> {
        self.engine.prepared()
    }

    /// A fresh [`Session`] over this model. Cheap: the engine clone shares
    /// the compiled program and plans; only the extensional database is
    /// per-session state.
    pub fn session(&self) -> Session {
        Session::new(self.engine.clone())
    }
}

/// Cache observability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from an existing entry (including compile races
    /// lost to a concurrent caller of the same program).
    pub hits: u64,
    /// Requests whose answer was a freshly compiled model. Failed
    /// compiles count as neither.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// Number of independently locked cache shards, selected by fingerprint
/// bits. A power of two so shard selection is a mask; sized comfortably
/// above realistic worker counts so two workers serving *different*
/// programs virtually never contend on a lock.
pub const CACHE_SHARDS: usize = 16;

/// A concurrent memo table `content hash → Arc<PreparedModel>`, sharded
/// by content hash.
///
/// Lookups hold only their shard's lock, and only for the probe;
/// compilation happens outside it, and when two threads race to compile
/// the same program the first insert wins — both callers get the same
/// `Arc`, preserving the plans-are-pointer-identical invariant. Distinct
/// programs land on distinct shards (with probability
/// `1 − 1/CACHE_SHARDS`), so a multi-tenant serving loop does not
/// serialize its cache probes on one mutex.
pub struct ProgramCache {
    shards: Vec<Mutex<HashMap<u64, Arc<PreparedModel>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The shard holding fingerprint `key`.
    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, Arc<PreparedModel>>> {
        &self.shards[(key as usize) & (CACHE_SHARDS - 1)]
    }

    /// The cached model for `(src, mode)`, compiling on first sight.
    ///
    /// # Errors
    /// Compilation errors (not cached: a failing program re-reports its
    /// error on every request).
    pub fn get_or_compile(
        &self,
        src: &str,
        mode: SemanticsMode,
    ) -> Result<Arc<PreparedModel>, EngineError> {
        let key = source_fingerprint(src, mode);
        if let Some(hit) = self.shard(key).lock().expect("cache poisoned").get(&key) {
            // A hit must match the real key, not just its hash: on a
            // fingerprint collision the probe falls through and compiles.
            if hit.source == src && hit.mode == mode {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(hit));
            }
        }
        let fresh = Arc::new(PreparedModel::compile(src, mode)?);
        let mut entries = self.shard(key).lock().expect("cache poisoned");
        match entries.get(&key) {
            // A racing caller inserted the same program while we
            // compiled: keep pointer identity by serving their entry, and
            // count ourselves as a hit — the cache did answer us from an
            // existing entry, our compile was wasted work, not a miss.
            Some(existing) if existing.source == src && existing.mode == mode => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::clone(existing))
            }
            // Fingerprint collision: the resident entry is a *different*
            // program. The loser stays uncached (correctness over reuse
            // in that pathological case) and counts as a miss.
            Some(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok(fresh)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                entries.insert(key, Arc::clone(&fresh));
                Ok(fresh)
            }
        }
    }

    /// Hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (sessions already spawned keep their shared
    /// program alive through their own `Arc`s).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache poisoned").clear();
        }
    }
}

impl Default for ProgramCache {
    fn default() -> Self {
        ProgramCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "R(Flip<0.5>) :- true. S(X) :- R(X).";

    #[test]
    fn hit_returns_identical_plan_pointer() {
        let cache = ProgramCache::new();
        let a = cache.get_or_compile(SRC, SemanticsMode::Grohe).unwrap();
        let b = cache.get_or_compile(SRC, SemanticsMode::Grohe).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "model is shared");
        assert!(Arc::ptr_eq(a.plans(), b.plans()), "plans are shared");
        assert!(
            Arc::ptr_eq(a.engine().program_shared(), b.engine().program_shared()),
            "compiled program is shared"
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn distinct_sources_and_modes_get_distinct_entries() {
        let cache = ProgramCache::new();
        let a = cache.get_or_compile(SRC, SemanticsMode::Grohe).unwrap();
        let b = cache
            .get_or_compile("R(Flip<0.25>) :- true.", SemanticsMode::Grohe)
            .unwrap();
        let c = cache.get_or_compile(SRC, SemanticsMode::Barany).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = ProgramCache::new();
        assert!(cache
            .get_or_compile("R(X :-", SemanticsMode::Grohe)
            .is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn concurrent_requests_share_one_model() {
        let cache = Arc::new(ProgramCache::new());
        let models: Vec<Arc<PreparedModel>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    scope.spawn(move || cache.get_or_compile(SRC, SemanticsMode::Grohe).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for m in &models[1..] {
            assert!(Arc::ptr_eq(&models[0], m), "all callers share one entry");
        }
        assert_eq!(cache.len(), 1);
    }
}
