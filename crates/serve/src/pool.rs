//! The session pool: warm [`Session`]s checked out per request and reset
//! on return.
//!
//! A session over a cached model is cheap to create (the compiled program
//! and chase plans are shared), but not free: the extensional database is
//! cloned from the program's ground facts, and a busy serving loop would
//! otherwise re-clone it per request. The pool keeps finished sessions
//! warm: [`SessionPool::checkout`] hands out an idle session (or creates
//! one when all are busy), and dropping the [`PooledSession`] guard
//! [`reset`](Session::reset)s the per-request fact delta and returns the
//! session to the idle list — the next checkout starts from a clean base.
//!
//! ```
//! use gdatalog_serve::{PreparedModel, SessionPool};
//! use gdatalog_lang::SemanticsMode;
//! use std::sync::Arc;
//!
//! let model = Arc::new(PreparedModel::compile(
//!     "rel City(symbol) input. Quake(C, Flip<0.4>) :- City(C).",
//!     SemanticsMode::Grohe,
//! ).unwrap());
//! let pool = SessionPool::new(model);
//! {
//!     let mut session = pool.checkout();
//!     session.insert_facts_text("City(gotham).").unwrap();
//!     assert_eq!(session.eval().worlds().unwrap().len(), 2);
//! } // drop: reset + returned to the pool
//! let session = pool.checkout();
//! assert_eq!(session.facts().len(), 0, "no residual facts");
//! assert_eq!(pool.created(), 1, "the warm session was reused");
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use gdatalog_core::Session;

use crate::cache::PreparedModel;

/// Default [`SessionPool::max_idle`]: enough warm sessions for any
/// realistic worker count while bounding a bursty pool's steady-state
/// footprint.
pub const DEFAULT_MAX_IDLE: usize = 64;

/// A pool of warm sessions over one prepared model.
///
/// The idle list is **capped**: a burst of concurrent checkouts may create
/// many sessions, but on return only up to [`max_idle`](SessionPool::max_idle)
/// are retained — surplus sessions are dropped, so the pool shrinks back
/// to its cap instead of pinning the burst's peak memory forever.
pub struct SessionPool {
    model: Arc<PreparedModel>,
    idle: Mutex<Vec<Session>>,
    created: AtomicUsize,
    max_idle: usize,
}

impl SessionPool {
    /// An empty pool over `model` (sessions are created on demand), with
    /// the default idle cap [`DEFAULT_MAX_IDLE`].
    pub fn new(model: Arc<PreparedModel>) -> SessionPool {
        SessionPool::with_max_idle(model, DEFAULT_MAX_IDLE)
    }

    /// An empty pool retaining at most `max_idle` warm sessions (0 means
    /// never retain — every checkout creates a fresh session).
    pub fn with_max_idle(model: Arc<PreparedModel>, max_idle: usize) -> SessionPool {
        SessionPool {
            model,
            idle: Mutex::new(Vec::new()),
            created: AtomicUsize::new(0),
            max_idle,
        }
    }

    /// The maximum number of idle sessions retained on return.
    pub fn max_idle(&self) -> usize {
        self.max_idle
    }

    /// The model the pool serves.
    pub fn model(&self) -> &Arc<PreparedModel> {
        &self.model
    }

    /// Checks out a warm session, creating one when none is idle. The
    /// returned guard derefs to [`Session`]; dropping it resets the
    /// session's fact delta and returns it to the pool.
    pub fn checkout(&self) -> PooledSession<'_> {
        let session = self.idle.lock().expect("pool poisoned").pop();
        let session = session.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            self.model.session()
        });
        PooledSession {
            pool: self,
            session: Some(session),
        }
    }

    /// Number of idle sessions currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.idle.lock().expect("pool poisoned").len()
    }

    /// Total sessions ever created by this pool (peak concurrency
    /// watermark).
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    fn give_back(&self, mut session: Session) {
        session.reset();
        let mut idle = self.idle.lock().expect("pool poisoned");
        // Enforce the idle cap on return: dropping the surplus session here
        // (rather than refusing checkouts) keeps bursts fully served while
        // guaranteeing the pool shrinks back afterwards.
        if idle.len() < self.max_idle {
            idle.push(session);
        }
    }
}

/// A checked-out session; derefs to [`Session`]. On drop the session is
/// reset and returned to its pool.
pub struct PooledSession<'p> {
    pool: &'p SessionPool,
    session: Option<Session>,
}

impl PooledSession<'_> {
    /// Takes the session out of pool management permanently (it will not
    /// be reset or returned).
    pub fn detach(mut self) -> Session {
        self.session.take().expect("session present until drop")
    }
}

impl Deref for PooledSession<'_> {
    type Target = Session;
    fn deref(&self) -> &Session {
        self.session.as_ref().expect("session present until drop")
    }
}

impl DerefMut for PooledSession<'_> {
    fn deref_mut(&mut self) -> &mut Session {
        self.session.as_mut().expect("session present until drop")
    }
}

impl Drop for PooledSession<'_> {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            self.pool.give_back(session);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_lang::SemanticsMode;

    fn pool() -> SessionPool {
        let model = Arc::new(
            PreparedModel::compile(
                "rel City(symbol) input. Quake(C, Flip<0.4>) :- City(C).",
                SemanticsMode::Grohe,
            )
            .unwrap(),
        );
        SessionPool::new(model)
    }

    #[test]
    fn return_resets_fact_delta() {
        let pool = pool();
        {
            let mut s = pool.checkout();
            s.insert_facts_text("City(gotham). City(metropolis).")
                .unwrap();
            assert_eq!(s.facts().len(), 2);
        }
        assert_eq!(pool.idle(), 1);
        let s = pool.checkout();
        assert_eq!(s.facts().len(), 0, "no residual facts after return");
        assert_eq!(s.inserted_facts(), 0);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_sessions() {
        let pool = pool();
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(pool.created(), 2);
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.checkout();
        assert_eq!(pool.created(), 2, "warm session reused");
    }

    #[test]
    fn bursty_checkout_shrinks_back_to_max_idle() {
        let model = Arc::new(
            PreparedModel::compile(
                "rel City(symbol) input. Quake(C, Flip<0.4>) :- City(C).",
                SemanticsMode::Grohe,
            )
            .unwrap(),
        );
        let pool = SessionPool::with_max_idle(model, 2);
        // A burst of 5 concurrent checkouts creates 5 sessions …
        let burst: Vec<_> = (0..5).map(|_| pool.checkout()).collect();
        assert_eq!(pool.created(), 5);
        drop(burst);
        // … but only max_idle survive the return.
        assert_eq!(pool.idle(), 2, "surplus sessions dropped on return");
        // Subsequent traffic reuses the retained sessions.
        drop(pool.checkout());
        assert_eq!(pool.created(), 5, "no new session needed");
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn zero_max_idle_disables_retention() {
        let model = Arc::new(
            PreparedModel::compile("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap(),
        );
        let pool = SessionPool::with_max_idle(model, 0);
        drop(pool.checkout());
        assert_eq!(pool.idle(), 0);
        drop(pool.checkout());
        assert_eq!(pool.created(), 2, "every checkout is fresh");
    }

    #[test]
    fn sessions_share_the_model_plans() {
        let pool = pool();
        let s = pool.checkout().detach();
        assert!(Arc::ptr_eq(
            s.engine().program_shared(),
            pool.model().engine().program_shared()
        ));
        assert!(Arc::ptr_eq(s.engine().prepared(), pool.model().plans()));
        assert_eq!(pool.idle(), 0, "detached sessions do not come back");
    }
}
