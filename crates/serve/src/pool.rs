//! The session pool: warm [`Session`]s checked out per request and reset
//! on return, **sharded** so concurrent workers do not serialize on one
//! lock.
//!
//! A session over a cached model is cheap to create (the compiled program
//! and chase plans are shared), but not free: the extensional database is
//! cloned from the program's ground facts, and a busy serving loop would
//! otherwise re-clone it per request. The pool keeps finished sessions
//! warm: [`SessionPool::checkout`] hands out an idle session (or creates
//! one when all are busy), and dropping the [`PooledSession`] guard
//! [`reset`](Session::reset)s the per-request fact delta and returns the
//! session to the idle list — the next checkout starts from a clean base.
//!
//! The idle list is split into [`POOL_SHARDS`] independently locked
//! shards. A worker passes its index to
//! [`checkout_for`](SessionPool::checkout_for): checkouts and returns with
//! the same hint touch the same shard, so under steady load each worker
//! keeps reusing *its own* warm session (cache-friendly affinity) and two
//! workers never contend on a lock. A worker whose home shard is empty
//! steals from the others before creating a fresh session, so the pool
//! never over-allocates just because traffic is skewed.
//!
//! ```
//! use gdatalog_serve::{PreparedModel, SessionPool};
//! use gdatalog_lang::SemanticsMode;
//! use std::sync::Arc;
//!
//! let model = Arc::new(PreparedModel::compile(
//!     "rel City(symbol) input. Quake(C, Flip<0.4>) :- City(C).",
//!     SemanticsMode::Grohe,
//! ).unwrap());
//! let pool = SessionPool::new(model);
//! {
//!     let mut session = pool.checkout();
//!     session.insert_facts_text("City(gotham).").unwrap();
//!     assert_eq!(session.eval().worlds().unwrap().len(), 2);
//! } // drop: reset + returned to the pool
//! let session = pool.checkout();
//! assert_eq!(session.facts().len(), 0, "no residual facts");
//! assert_eq!(pool.created(), 1, "the warm session was reused");
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use gdatalog_core::Session;

use crate::cache::PreparedModel;

/// Default [`SessionPool::max_idle`]: enough warm sessions for any
/// realistic worker count while bounding a bursty pool's steady-state
/// footprint.
pub const DEFAULT_MAX_IDLE: usize = 64;

/// Number of independently locked idle-list shards. A power of two so the
/// worker-index mapping is a mask; 8 comfortably exceeds the core counts
/// this engine is deployed on while keeping an empty pool's footprint
/// trivial.
pub const POOL_SHARDS: usize = 8;

/// One idle-list shard: its own lock, its own slice of the idle cap. The
/// retain-or-drop decision on return happens **under this lock** — there
/// is no separate "check then push" window in which concurrent returns
/// could both observe spare capacity and overfill the pool.
struct Shard {
    idle: Mutex<Vec<Session>>,
    cap: usize,
}

/// Pool observability counters (a point-in-time snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total checkouts served (warm or fresh).
    pub checkouts: u64,
    /// Sessions ever created (peak-concurrency watermark).
    pub created: usize,
    /// Sessions dropped on return because every shard was at capacity.
    pub dropped: u64,
    /// Idle sessions currently parked across all shards.
    pub idle: usize,
    /// The configured idle cap.
    pub max_idle: usize,
}

/// A pool of warm sessions over one prepared model.
///
/// The idle capacity is **capped**: a burst of concurrent checkouts may
/// create many sessions, but on return only up to
/// [`max_idle`](SessionPool::max_idle) are retained — surplus sessions are
/// dropped, so the pool shrinks back to its cap instead of pinning the
/// burst's peak memory forever. The cap is partitioned across the shards
/// and each shard enforces its slice atomically under its own lock, so the
/// total number of idle sessions never exceeds `max_idle`, even
/// momentarily, under any interleaving of concurrent returns.
pub struct SessionPool {
    model: Arc<PreparedModel>,
    shards: Vec<Shard>,
    created: AtomicUsize,
    checkouts: AtomicUsize,
    dropped: AtomicUsize,
    max_idle: usize,
}

impl SessionPool {
    /// An empty pool over `model` (sessions are created on demand), with
    /// the default idle cap [`DEFAULT_MAX_IDLE`].
    pub fn new(model: Arc<PreparedModel>) -> SessionPool {
        SessionPool::with_max_idle(model, DEFAULT_MAX_IDLE)
    }

    /// An empty pool retaining at most `max_idle` warm sessions (0 means
    /// never retain — every checkout creates a fresh session).
    pub fn with_max_idle(model: Arc<PreparedModel>, max_idle: usize) -> SessionPool {
        // Partition the cap across shards; the first `max_idle % SHARDS`
        // shards take the remainder, so the per-shard caps sum to exactly
        // `max_idle`.
        let shards = (0..POOL_SHARDS)
            .map(|i| Shard {
                idle: Mutex::new(Vec::new()),
                cap: max_idle / POOL_SHARDS + usize::from(i < max_idle % POOL_SHARDS),
            })
            .collect();
        SessionPool {
            model,
            shards,
            created: AtomicUsize::new(0),
            checkouts: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
            max_idle,
        }
    }

    /// The maximum number of idle sessions retained on return.
    pub fn max_idle(&self) -> usize {
        self.max_idle
    }

    /// The model the pool serves.
    pub fn model(&self) -> &Arc<PreparedModel> {
        &self.model
    }

    /// Checks out a warm session, creating one when none is idle. The
    /// returned guard derefs to [`Session`]; dropping it resets the
    /// session's fact delta and returns it to the pool.
    ///
    /// Workers in a serving loop should prefer
    /// [`checkout_for`](SessionPool::checkout_for) with their worker index
    /// — this entry point is the affinity-free equivalent.
    pub fn checkout(&self) -> PooledSession<'_> {
        self.checkout_for(0)
    }

    /// Checks out a warm session with **shard affinity**: `worker` maps to
    /// a home shard probed first on checkout and offered first on return,
    /// so a stable worker keeps getting the session it just warmed. When
    /// the home shard is empty the checkout steals from the other shards
    /// before creating a fresh session.
    pub fn checkout_for(&self, worker: usize) -> PooledSession<'_> {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        let home = worker % POOL_SHARDS;
        for probe in 0..POOL_SHARDS {
            let ix = (home + probe) % POOL_SHARDS;
            let popped = self.shards[ix].idle.lock().expect("pool poisoned").pop();
            if let Some(session) = popped {
                return PooledSession {
                    pool: self,
                    session: Some(session),
                    home,
                };
            }
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        PooledSession {
            pool: self,
            session: Some(self.model.session()),
            home,
        }
    }

    /// Number of idle sessions currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.idle.lock().expect("pool poisoned").len())
            .sum()
    }

    /// Total sessions ever created by this pool (peak concurrency
    /// watermark).
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Observability counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            checkouts: self.checkouts.load(Ordering::Relaxed) as u64,
            created: self.created(),
            dropped: self.dropped.load(Ordering::Relaxed) as u64,
            idle: self.idle(),
            max_idle: self.max_idle,
        }
    }

    fn give_back(&self, mut session: Session, home: usize) {
        session.reset();
        // Offer the session to the home shard first (affinity), then to
        // any shard with spare capacity. Each shard's retain-or-drop
        // decision is taken while holding that shard's lock, so the
        // per-shard cap — and therefore the global `max_idle` — cannot be
        // exceeded by racing returns.
        for probe in 0..POOL_SHARDS {
            let shard = &self.shards[(home + probe) % POOL_SHARDS];
            let mut idle = shard.idle.lock().expect("pool poisoned");
            if idle.len() < shard.cap {
                idle.push(session);
                return;
            }
        }
        // Every shard at capacity: drop the surplus session so the pool
        // shrinks back to its cap after a burst.
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }
}

/// A checked-out session; derefs to [`Session`]. On drop the session is
/// reset and returned to its pool.
pub struct PooledSession<'p> {
    pool: &'p SessionPool,
    session: Option<Session>,
    home: usize,
}

impl PooledSession<'_> {
    /// Takes the session out of pool management permanently (it will not
    /// be reset or returned).
    pub fn detach(mut self) -> Session {
        self.session.take().expect("session present until drop")
    }
}

impl Deref for PooledSession<'_> {
    type Target = Session;
    fn deref(&self) -> &Session {
        self.session.as_ref().expect("session present until drop")
    }
}

impl DerefMut for PooledSession<'_> {
    fn deref_mut(&mut self) -> &mut Session {
        self.session.as_mut().expect("session present until drop")
    }
}

impl Drop for PooledSession<'_> {
    fn drop(&mut self) {
        if let Some(session) = self.session.take() {
            self.pool.give_back(session, self.home);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_lang::SemanticsMode;

    fn model() -> Arc<PreparedModel> {
        Arc::new(
            PreparedModel::compile(
                "rel City(symbol) input. Quake(C, Flip<0.4>) :- City(C).",
                SemanticsMode::Grohe,
            )
            .unwrap(),
        )
    }

    fn pool() -> SessionPool {
        SessionPool::new(model())
    }

    #[test]
    fn return_resets_fact_delta() {
        let pool = pool();
        {
            let mut s = pool.checkout();
            s.insert_facts_text("City(gotham). City(metropolis).")
                .unwrap();
            assert_eq!(s.facts().len(), 2);
        }
        assert_eq!(pool.idle(), 1);
        let s = pool.checkout();
        assert_eq!(s.facts().len(), 0, "no residual facts after return");
        assert_eq!(s.inserted_facts(), 0);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_sessions() {
        let pool = pool();
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(pool.created(), 2);
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.checkout();
        assert_eq!(pool.created(), 2, "warm session reused");
    }

    #[test]
    fn bursty_checkout_shrinks_back_to_max_idle() {
        let pool = SessionPool::with_max_idle(model(), 2);
        // A burst of 5 concurrent checkouts creates 5 sessions …
        let burst: Vec<_> = (0..5).map(|_| pool.checkout()).collect();
        assert_eq!(pool.created(), 5);
        drop(burst);
        // … but only max_idle survive the return.
        assert_eq!(pool.idle(), 2, "surplus sessions dropped on return");
        assert_eq!(pool.stats().dropped, 3);
        // Subsequent traffic reuses the retained sessions.
        drop(pool.checkout());
        assert_eq!(pool.created(), 5, "no new session needed");
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn zero_max_idle_disables_retention() {
        let pool = SessionPool::with_max_idle(model(), 0);
        drop(pool.checkout());
        assert_eq!(pool.idle(), 0);
        drop(pool.checkout());
        assert_eq!(pool.created(), 2, "every checkout is fresh");
        assert_eq!(pool.stats().dropped, 2);
    }

    #[test]
    fn sessions_share_the_model_plans() {
        let pool = pool();
        let s = pool.checkout().detach();
        assert!(Arc::ptr_eq(
            s.engine().program_shared(),
            pool.model().engine().program_shared()
        ));
        assert!(Arc::ptr_eq(s.engine().prepared(), pool.model().plans()));
        assert_eq!(pool.idle(), 0, "detached sessions do not come back");
    }

    #[test]
    fn worker_affinity_reuses_the_same_shard() {
        let pool = pool();
        // Worker 3 warms a session, returns it, and checks out again: it
        // gets a warm session back without creating a second one.
        drop(pool.checkout_for(3));
        drop(pool.checkout_for(3));
        assert_eq!(pool.created(), 1);
        // A different worker steals the idle session rather than creating.
        drop(pool.checkout_for(5));
        assert_eq!(pool.created(), 1, "steal instead of create");
    }

    /// The satellite-1 regression: hammer returns from many threads
    /// against a tiny cap and assert the idle total **never** exceeds
    /// `max_idle`. Before the shard-atomic drop decision, concurrent
    /// returns could both pass the capacity check and overfill the pool.
    #[test]
    fn concurrent_returns_never_exceed_max_idle() {
        let pool = Arc::new(SessionPool::with_max_idle(model(), 3));
        std::thread::scope(|scope| {
            for worker in 0..8 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for round in 0..50 {
                        let guards: Vec<_> = (0..4)
                            .map(|i| pool.checkout_for(worker + i + round))
                            .collect();
                        drop(guards);
                        let idle = pool.idle();
                        assert!(idle <= 3, "idle {idle} exceeds max_idle under load");
                    }
                });
            }
        });
        assert!(pool.idle() <= 3);
        assert!(pool.stats().dropped > 0, "the cap was actually exercised");
    }
}
