//! Serving observability: lock-free counters and a per-request latency
//! histogram, snapshotted as [`Metrics`].
//!
//! Every counter is a relaxed atomic — recording sits on the request fast
//! path of the batch executor and the HTTP front end, so a snapshot is
//! allowed to be *approximately* consistent (it may straddle an in-flight
//! request) but recording must never contend. Latencies go into
//! power-of-two microsecond buckets; percentile reads report the upper
//! bound of the bucket holding the target rank, i.e. p50/p99 are
//! conservative to within a factor of two — the right fidelity for a
//! saturation dashboard, at the cost of one `fetch_add` per request.
//!
//! ```
//! use gdatalog_serve::MetricsRecorder;
//! use std::time::Duration;
//!
//! let recorder = MetricsRecorder::new();
//! recorder.record_request(Duration::from_micros(120), true);
//! recorder.record_request(Duration::from_micros(90), true);
//! recorder.record_request(Duration::from_micros(3_000), false);
//! let m = recorder.snapshot();
//! assert_eq!(m.requests, 3);
//! assert_eq!(m.errors, 1);
//! assert!(m.p50_us >= 90 && m.p50_us <= 256);
//! assert!(m.p99_us >= 3_000);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` covers
/// `[2^i, 2^(i+1))` microseconds, so the top bucket absorbs anything from
/// ~17 minutes up.
const BUCKETS: usize = 30;

/// Lock-free serving counters, shared by reference between the batch
/// executor, the HTTP front end, and the stats endpoint.
#[derive(Debug)]
pub struct MetricsRecorder {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: [AtomicU64; BUCKETS],
    latency_sum_us: AtomicU64,
    deadline_rejections: AtomicU64,
    admission_rejections: AtomicU64,
    // Inference-quality counters. Means are accumulated as micro-unit
    // integer sums (value × 1e6, saturating) so recording stays a relaxed
    // fetch_add — the same discipline as the latency histogram.
    conditioned_passes: AtomicU64,
    ess_micro_sum: AtomicU64,
    mh_passes: AtomicU64,
    accept_micro_sum: AtomicU64,
}

/// One point-in-time reading of a [`MetricsRecorder`] (plus, at the
/// serving surface, the cache/pool counters it is reported next to).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metrics {
    /// Requests whose evaluation finished (successfully or not).
    pub requests: u64,
    /// Requests that finished with an error (bad request, engine error,
    /// deadline).
    pub errors: u64,
    /// Requests aborted by a cooperative evaluation deadline (a subset of
    /// `errors`).
    pub deadline_rejections: u64,
    /// Requests refused up front by admission control (never evaluated;
    /// *not* counted in `requests`).
    pub admission_rejections: u64,
    /// Mean request latency in microseconds (0 when no requests yet).
    pub mean_us: u64,
    /// Median request latency, rounded up to its bucket boundary.
    pub p50_us: u64,
    /// 99th-percentile request latency, rounded up to its bucket boundary.
    pub p99_us: u64,
    /// Conditioned evaluation passes that reported an evidence summary.
    pub conditioned_passes: u64,
    /// Mean effective sample size of conditioned passes, in micro-units
    /// (ESS × 1e6; divide by 1e6 to read). 0 when none yet.
    pub mean_ess_micro: u64,
    /// Conditioned passes answered by the Metropolis-Hastings backend.
    pub mh_passes: u64,
    /// Mean MH chain acceptance rate, in micro-units (rate × 1e6).
    pub mean_accept_micro: u64,
}

impl MetricsRecorder {
    /// A recorder with every counter at zero.
    pub fn new() -> MetricsRecorder {
        MetricsRecorder {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency: [const { AtomicU64::new(0) }; BUCKETS],
            latency_sum_us: AtomicU64::new(0),
            deadline_rejections: AtomicU64::new(0),
            admission_rejections: AtomicU64::new(0),
            conditioned_passes: AtomicU64::new(0),
            ess_micro_sum: AtomicU64::new(0),
            mh_passes: AtomicU64::new(0),
            accept_micro_sum: AtomicU64::new(0),
        }
    }

    /// Records the diagnostics of one conditioned evaluation pass: its
    /// achieved effective sample size and, for MH passes, the chain
    /// acceptance rate. Non-finite values are dropped rather than
    /// poisoning the running means.
    pub fn record_inference(&self, ess: f64, accept_rate: Option<f64>) {
        if ess.is_finite() && ess >= 0.0 {
            self.conditioned_passes.fetch_add(1, Ordering::Relaxed);
            self.ess_micro_sum
                .fetch_add((ess * 1e6).min(u64::MAX as f64) as u64, Ordering::Relaxed);
        }
        if let Some(rate) = accept_rate {
            if rate.is_finite() && (0.0..=1.0).contains(&rate) {
                self.mh_passes.fetch_add(1, Ordering::Relaxed);
                self.accept_micro_sum
                    .fetch_add((rate * 1e6) as u64, Ordering::Relaxed);
            }
        }
    }

    /// Records one finished request: its wall-clock latency and whether it
    /// succeeded.
    pub fn record_request(&self, elapsed: Duration, ok: bool) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request aborted by its evaluation deadline (callers also
    /// [`record_request`](Self::record_request) it with `ok = false`).
    pub fn record_deadline_rejection(&self) {
        self.deadline_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request refused by admission control before evaluation.
    pub fn record_admission_rejection(&self) {
        self.admission_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> Metrics {
        let requests = self.requests.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .latency
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // The histogram total is the rank base: it can trail `requests` by
        // in-flight recordings, which keeps percentiles self-consistent.
        let total: u64 = buckets.iter().sum();
        Metrics {
            requests,
            errors: self.errors.load(Ordering::Relaxed),
            deadline_rejections: self.deadline_rejections.load(Ordering::Relaxed),
            admission_rejections: self.admission_rejections.load(Ordering::Relaxed),
            mean_us: self
                .latency_sum_us
                .load(Ordering::Relaxed)
                .checked_div(total)
                .unwrap_or(0),
            p50_us: percentile(&buckets, total, 0.50),
            p99_us: percentile(&buckets, total, 0.99),
            conditioned_passes: self.conditioned_passes.load(Ordering::Relaxed),
            mean_ess_micro: self
                .ess_micro_sum
                .load(Ordering::Relaxed)
                .checked_div(self.conditioned_passes.load(Ordering::Relaxed))
                .unwrap_or(0),
            mh_passes: self.mh_passes.load(Ordering::Relaxed),
            mean_accept_micro: self
                .accept_micro_sum
                .load(Ordering::Relaxed)
                .checked_div(self.mh_passes.load(Ordering::Relaxed))
                .unwrap_or(0),
        }
    }
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        MetricsRecorder::new()
    }
}

/// The bucket index of a latency: `floor(log2(us))`, clamped to the table.
fn bucket_of(us: u64) -> usize {
    let log2 = 63 - us.max(1).leading_zeros() as usize;
    log2.min(BUCKETS - 1)
}

/// The upper bound of the bucket containing rank `ceil(q · total)`.
fn percentile(buckets: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let target = ((q * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, count) in buckets.iter().enumerate() {
        seen += count;
        if seen >= target {
            return 1u64 << (i + 1).min(63);
        }
    }
    1u64 << BUCKETS.min(63)
}

impl Metrics {
    /// Renders the snapshot as a JSON object (the body core of
    /// `GET /v1/stats`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"errors\":{},\"deadline_rejections\":{},\
             \"admission_rejections\":{},\"latency_us\":{{\"mean\":{},\
             \"p50\":{},\"p99\":{}}},\"inference\":{{\
             \"conditioned_passes\":{},\"mean_ess\":{},\
             \"mh_passes\":{},\"mean_accept_rate\":{}}}}}",
            self.requests,
            self.errors,
            self.deadline_rejections,
            self.admission_rejections,
            self.mean_us,
            self.p50_us,
            self.p99_us,
            self.conditioned_passes,
            self.mean_ess_micro as f64 / 1e6,
            self.mh_passes,
            self.mean_accept_micro as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_snapshots_zeros() {
        let m = MetricsRecorder::new().snapshot();
        assert_eq!(m.requests, 0);
        assert_eq!(m.p50_us, 0);
        assert_eq!(m.p99_us, 0);
        assert_eq!(m.mean_us, 0);
    }

    #[test]
    fn percentiles_bracket_the_distribution() {
        let r = MetricsRecorder::new();
        // 99 fast requests and one slow outlier.
        for _ in 0..99 {
            r.record_request(Duration::from_micros(100), true);
        }
        r.record_request(Duration::from_millis(50), true);
        let m = r.snapshot();
        assert_eq!(m.requests, 100);
        // p50 lands in the [64, 128) bucket → reported as 128.
        assert_eq!(m.p50_us, 128);
        // p99 is still in the fast bucket (rank 99 of 100) …
        assert_eq!(m.p99_us, 128);
        // … and the mean is pulled up by the outlier.
        assert!(m.mean_us > 500);
    }

    #[test]
    fn rejection_counters_are_independent() {
        let r = MetricsRecorder::new();
        r.record_admission_rejection();
        r.record_deadline_rejection();
        r.record_request(Duration::from_micros(10), false);
        let m = r.snapshot();
        assert_eq!(m.admission_rejections, 1);
        assert_eq!(m.deadline_rejections, 1);
        assert_eq!(m.requests, 1, "admission rejections never evaluated");
        assert_eq!(m.errors, 1);
    }

    #[test]
    fn bucket_of_is_monotone_and_clamped() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn inference_counters_average_in_micro_units() {
        let r = MetricsRecorder::new();
        r.record_inference(100.0, None);
        r.record_inference(300.0, Some(0.25));
        r.record_inference(f64::NAN, Some(2.0)); // both dropped
        let m = r.snapshot();
        assert_eq!(m.conditioned_passes, 2);
        assert_eq!(m.mean_ess_micro, 200_000_000);
        assert_eq!(m.mh_passes, 1);
        assert_eq!(m.mean_accept_micro, 250_000);
        let parsed = crate::json::Json::parse(&m.to_json()).unwrap();
        let inference = parsed.get("inference").unwrap();
        assert_eq!(
            inference.get("mean_ess").and_then(|v| v.as_f64()),
            Some(200.0)
        );
        assert_eq!(
            inference.get("mean_accept_rate").and_then(|v| v.as_f64()),
            Some(0.25)
        );
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let r = MetricsRecorder::new();
        r.record_request(Duration::from_micros(5), true);
        let json = r.snapshot().to_json();
        let parsed = crate::json::Json::parse(&json).unwrap();
        assert_eq!(parsed.get("requests").and_then(|v| v.as_u64()), Some(1));
        assert!(parsed.get("latency_us").is_some());
    }
}
