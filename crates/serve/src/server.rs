//! Batched query execution: schedule independent requests across pooled
//! sessions with deterministic **work-stealing** parallelism.
//!
//! [`BatchExecutor`] is the scheduling core: workers claim requests one at
//! a time off a shared atomic cursor, each holding one pooled session
//! (checked out with shard affinity, reset between requests), and every
//! answer is scattered back into its **request-index slot** — so answers
//! land in request order no matter which worker computed them or when.
//! Because every request is evaluated independently — its own evidence,
//! its own seed, thread-count 1 inside the evaluation — the batch answers
//! are bit-identical to evaluating each request alone, regardless of
//! worker count.
//!
//! Work stealing replaced the earlier contiguous-chunk schedule: with
//! chunks, one slow request at the head of a chunk idled that worker's
//! whole remainder while other workers finished, and on skewed batches
//! the makespan was the slowest *chunk*, not the slowest *request*.
//! Claiming one request at a time keeps every worker busy until the
//! global queue drains; determinism is unaffected because ordering is
//! restored by slot index, not by completion order.
//!
//! [`Server`] ties the pieces together for one program: a
//! [`SessionPool`] over a cached [`PreparedModel`] plus an executor and a
//! [`MetricsRecorder`] capturing per-request timings.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gdatalog_core::{Answer, EngineError, QueryIr, QuerySet, Session};
use gdatalog_lang::{parse_facts, CompiledProgram, SemanticsMode};
use gdatalog_pdb::{Event, Query};

use crate::cache::PreparedModel;
use crate::metrics::{Metrics, MetricsRecorder};
use crate::pool::SessionPool;
use crate::request::{fact_text, BackendSpec, QueryKind, Reply, Request, Response};
use crate::ServeError;

/// Resolves one wire query against the program catalog into the core
/// query IR — name resolution and spec validation happen here, once,
/// before any backend work.
///
/// # Errors
/// [`ServeError::BadRequest`] for unresolvable names or malformed specs.
fn compile_query(kind: &QueryKind, program: &CompiledProgram) -> Result<QueryIr, ServeError> {
    let resolve = |name: &str| {
        program
            .catalog
            .require(name)
            .map_err(|e| ServeError::BadRequest(format!("{e}")))
    };
    // Resolves the relation and checks the column in one step, so the
    // quantile/tail/histogram arms resolve each name exactly once.
    let resolve_col = |name: &str, col: usize| -> Result<gdatalog_data::RelId, ServeError> {
        let rel = resolve(name)?;
        let arity = program.catalog.decl(rel).arity();
        if col >= arity {
            return Err(ServeError::BadRequest(format!(
                "column {col} out of range (arity {arity})"
            )));
        }
        Ok(rel)
    };
    match kind {
        QueryKind::Marginal { fact } => {
            let parsed = parse_facts(&ensure_dot(fact), &program.catalog)?;
            let mut facts = parsed.facts();
            let (Some(fact), None) = (facts.next(), facts.next()) else {
                return Err(ServeError::BadRequest(format!(
                    "marginal expects exactly one fact, got `{fact}`"
                )));
            };
            Ok(QueryIr::Marginal { fact })
        }
        QueryKind::Marginals { rel } => Ok(QueryIr::Marginals { rel: resolve(rel)? }),
        QueryKind::Probability { facts } => {
            let parsed = parse_facts(&ensure_dot(facts), &program.catalog)?;
            let mut event: Option<Event> = None;
            for fact in parsed.facts() {
                let clause = Event::contains_fact(&fact);
                event = Some(match event {
                    None => clause,
                    Some(e) => e.and(clause),
                });
            }
            let Some(event) = event else {
                return Err(ServeError::BadRequest(
                    "probability needs at least one fact".to_string(),
                ));
            };
            Ok(QueryIr::Probability { event })
        }
        QueryKind::Expectation { rel, agg, col } => {
            let rel = resolve(rel)?;
            let arity = program.catalog.decl(rel).arity();
            let query = Query::Rel(rel);
            let query = match col {
                Some(c) if *c < arity => query.project(vec![*c]),
                Some(c) => {
                    return Err(ServeError::BadRequest(format!(
                        "column {c} out of range (arity {arity})"
                    )))
                }
                None => query,
            };
            Ok(QueryIr::Expectation { query, agg: *agg })
        }
        QueryKind::Histogram {
            rel,
            col,
            lo,
            hi,
            bins,
        } => {
            let rel = resolve_col(rel, *col)?;
            // Finiteness required: JSON can smuggle ±∞ in via `1e999`, and
            // an infinite range breaks the bin-width arithmetic. NaN fails
            // `is_finite` too.
            if !lo.is_finite() || !hi.is_finite() || lo >= hi || *bins == 0 {
                return Err(ServeError::BadRequest(format!(
                    "invalid histogram spec: need finite lo < hi and bins > 0 \
                     (got lo {lo}, hi {hi}, bins {bins})"
                )));
            }
            Ok(QueryIr::Histogram {
                rel,
                col: *col,
                lo: *lo,
                hi: *hi,
                bins: *bins,
            })
        }
        QueryKind::Quantile { rel, col, q } => {
            let rel = resolve_col(rel, *col)?;
            if !(0.0..=1.0).contains(q) {
                return Err(ServeError::BadRequest(format!(
                    "invalid quantile spec: need q in [0, 1], got {q}"
                )));
            }
            Ok(QueryIr::Quantile {
                rel,
                col: *col,
                q: *q,
            })
        }
        QueryKind::Tail {
            rel,
            col,
            threshold,
        } => {
            let rel = resolve_col(rel, *col)?;
            if threshold.is_nan() {
                return Err(ServeError::BadRequest(
                    "invalid tail spec: threshold must not be NaN".to_string(),
                ));
            }
            Ok(QueryIr::Tail {
                rel,
                col: *col,
                threshold: *threshold,
            })
        }
    }
}

/// Renders one typed core answer back into its wire response.
fn render_answer(answer: Answer, program: &CompiledProgram) -> Response {
    match answer {
        Answer::Marginal(p) => Response::Marginal(p),
        Answer::Probability(p) => Response::Probability(p),
        Answer::Expectation(m) => Response::Expectation(m),
        Answer::Histogram(h) => Response::Histogram(h),
        Answer::Marginals(rows) => Response::Marginals(
            rows.into_iter()
                .map(|(fact, p)| (fact_text(&fact, &program.catalog), p))
                .collect(),
        ),
        Answer::Quantile(v) => Response::Quantile(v),
        Answer::Tail(p) => Response::Tail(p),
    }
}

/// Evaluates one request on a (clean) session: the session's extensional
/// database is extended with the request's input facts, **all** of the
/// request's queries are compiled against the catalog, and a single
/// backend pass answers every one of them (the multiplexed
/// `Evaluation::answer` path — a K-query request costs one
/// chase/enumeration/Monte-Carlo pass, not K). The caller is responsible
/// for [`Session::reset`] afterwards (the pool and executor do this
/// automatically).
///
/// # Errors
/// [`ServeError::BadRequest`] for unresolvable names/malformed specs or
/// an empty query list, engine errors from evaluation.
pub fn execute_on(session: &mut Session, request: &Request) -> Result<Reply, ServeError> {
    if let Some(input) = &request.input {
        session.insert_facts_text(input)?;
    }
    let program = session.program();
    if request.queries.is_empty() {
        return Err(ServeError::BadRequest(
            "request asks no queries".to_string(),
        ));
    }
    let mut queries = QuerySet::new();
    for kind in &request.queries {
        queries.push(compile_query(kind, program)?);
    }
    // Backend selection mirrors the CLI: an explicit choice wins, auto
    // picks Monte-Carlo exactly when the program samples a continuous
    // distribution. An `infer` member (ESS-adaptive run control) rides on
    // the Monte-Carlo path only — pairing it with an exact or MH backend
    // is a contradiction the client should hear about.
    let mc = match request.backend {
        BackendSpec::Mc => true,
        BackendSpec::Exact | BackendSpec::ExactParallel | BackendSpec::Mh => false,
        BackendSpec::Auto => !program.all_discrete(),
    };
    if request.ess_target.is_some() && !mc && request.backend != BackendSpec::Auto {
        return Err(ServeError::BadRequest(format!(
            "`infer` (ESS-adaptive run control) requires the Monte-Carlo \
             backend, but the request asks for `{:?}`",
            request.backend
        )));
    }
    let mut eval = session.eval();
    if let Some(seed) = request.seed {
        eval = eval.seed(seed);
    }
    if let Some(depth) = request.max_depth {
        eval = eval.max_depth(depth);
    }
    if let Some(given) = &request.given {
        eval = eval.given(given.clone());
    }
    if let Some(deadline) = request.deadline {
        eval = eval.deadline(deadline);
    }
    eval = if request.backend == BackendSpec::Mh {
        let mut eval = eval.mh(request.runs.unwrap_or(10_000));
        if let Some(steps) = request.burn_in {
            eval = eval.burn_in(steps);
        }
        if let Some(every) = request.thin {
            eval = eval.thin(every);
        }
        eval
    } else if let Some(target) = request.ess_target {
        let mut target = gdatalog_core::EssTarget::new(target);
        if let Some(cap) = request.max_runs {
            target = target.max_runs(cap);
        }
        if let Some(batch) = request.runs {
            target = target.initial_batch(batch);
        }
        eval.sample_until(target)
    } else if mc {
        eval.sample(request.runs.unwrap_or(10_000))
    } else {
        match request.backend {
            BackendSpec::ExactParallel => eval.exact_parallel(),
            BackendSpec::Exact => eval.exact(),
            _ => eval,
        }
    };
    let answers = eval.answer(&queries)?;
    // Conditioning diagnostics ride along instead of being discarded: the
    // pass's evidence mass and effective sample size, computed once for
    // the whole query set.
    let evidence = answers.conditioned().then(|| answers.evidence());
    let responses = answers
        .into_iter()
        .map(|answer| render_answer(answer, program))
        .collect();
    Ok(Reply {
        responses,
        evidence,
    })
}

fn ensure_dot(text: &str) -> String {
    let trimmed = text.trim();
    if trimmed.ends_with('.') {
        trimmed.to_string()
    } else {
        format!("{trimmed}.")
    }
}

/// Deterministic work-stealing scheduling of independent requests over a
/// [`SessionPool`].
#[derive(Debug, Clone, Copy)]
pub struct BatchExecutor {
    threads: usize,
}

/// Executes one request on a pooled-and-reset session, recording its
/// wall-clock latency (and a deadline rejection, when that is how it
/// ended) into `recorder`.
fn execute_recorded(
    session: &mut Session,
    request: &Request,
    recorder: Option<&MetricsRecorder>,
) -> Result<Reply, ServeError> {
    let started = Instant::now();
    let out = execute_on(session, request);
    session.reset();
    if let Some(recorder) = recorder {
        recorder.record_request(started.elapsed(), out.is_ok());
        if matches!(out, Err(ServeError::Engine(EngineError::DeadlineExceeded))) {
            recorder.record_deadline_rejection();
        }
        if let Ok(reply) = &out {
            if let Some(ev) = &reply.evidence {
                recorder.record_inference(ev.ess, ev.accept_rate);
            }
        }
    }
    out
}

impl BatchExecutor {
    /// An executor with `threads` workers (1 = run on the calling thread).
    pub fn new(threads: usize) -> BatchExecutor {
        BatchExecutor {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluates every request, answers in request order. Each worker
    /// checks out one session and resets it between requests, so no
    /// request observes another's evidence. One failing request yields an
    /// `Err` in its slot without sinking the batch.
    pub fn execute(
        &self,
        pool: &SessionPool,
        requests: &[Request],
    ) -> Vec<Result<Reply, ServeError>> {
        self.execute_metered(pool, requests, None)
    }

    /// [`execute`](Self::execute), recording per-request timings into a
    /// [`MetricsRecorder`].
    pub fn execute_metered(
        &self,
        pool: &SessionPool,
        requests: &[Request],
        recorder: Option<&MetricsRecorder>,
    ) -> Vec<Result<Reply, ServeError>> {
        let n = requests.len();
        let threads = self.threads.min(n.max(1));
        if threads <= 1 {
            let mut session = pool.checkout_for(0);
            return requests
                .iter()
                .map(|request| execute_recorded(&mut session, request, recorder))
                .collect();
        }
        // Work stealing over a shared cursor: each worker claims one
        // request at a time and tags its answer with the request index, so
        // no worker idles while requests remain and the scatter below
        // restores request order exactly.
        let next = AtomicUsize::new(0);
        type Tagged = (usize, Result<Reply, ServeError>);
        let per_worker: Vec<Vec<Tagged>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut session = pool.checkout_for(worker);
                        let mut local: Vec<Tagged> = Vec::new();
                        loop {
                            let ix = next.fetch_add(1, Ordering::Relaxed);
                            if ix >= n {
                                return local;
                            }
                            let out = execute_recorded(&mut session, &requests[ix], recorder);
                            local.push((ix, out));
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect()
        });
        // Scatter into request-order slots. Every index in [0, n) was
        // claimed by exactly one worker, so every slot fills.
        let mut slots: Vec<Option<Result<Reply, ServeError>>> = (0..n).map(|_| None).collect();
        for (ix, out) in per_worker.into_iter().flatten() {
            debug_assert!(slots[ix].is_none(), "request {ix} claimed twice");
            slots[ix] = Some(out);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every request claimed exactly once"))
            .collect()
    }
}

impl Default for BatchExecutor {
    fn default() -> Self {
        BatchExecutor::new(1)
    }
}

/// The serving surface for one program: a session pool over a cached
/// model plus a batch executor.
///
/// ```
/// use gdatalog_serve::{Request, Response, Server};
/// use gdatalog_lang::SemanticsMode;
///
/// let server = Server::from_source(
///     "rel City(symbol, real) input.
///      Quake(C, Flip<R>) :- City(C, R).",
///     SemanticsMode::Grohe,
/// ).unwrap().threads(4);
/// let requests: Vec<Request> = (0..8)
///     .map(|i| {
///         Request::marginal(format!("Quake(c{i}, 1)"))
///             .evidence(format!("City(c{i}, 0.25)."))
///             .exact()
///     })
///     .collect();
/// let answers = server.batch(&requests);
/// for answer in answers {
///     assert_eq!(answer.unwrap().single(), &Response::Marginal(0.25));
/// }
/// ```
pub struct Server {
    pool: SessionPool,
    executor: BatchExecutor,
    metrics: Arc<MetricsRecorder>,
}

impl Server {
    /// A server over an already-prepared (typically cached) model.
    pub fn new(model: Arc<PreparedModel>) -> Server {
        Server {
            pool: SessionPool::new(model),
            executor: BatchExecutor::default(),
            metrics: Arc::new(MetricsRecorder::new()),
        }
    }

    /// Compiles `src` and serves it (going through a
    /// [`ProgramCache`](crate::ProgramCache) instead amortizes this across
    /// servers).
    ///
    /// # Errors
    /// Compilation errors.
    pub fn from_source(src: &str, mode: SemanticsMode) -> Result<Server, EngineError> {
        Ok(Server::new(Arc::new(PreparedModel::compile(src, mode)?)))
    }

    /// Sets the batch worker count. Answers do not depend on it.
    pub fn threads(mut self, threads: usize) -> Server {
        self.executor = BatchExecutor::new(threads);
        self
    }

    /// The served model.
    pub fn model(&self) -> &Arc<PreparedModel> {
        self.pool.model()
    }

    /// The underlying session pool.
    pub fn pool(&self) -> &SessionPool {
        &self.pool
    }

    /// The server's metrics recorder (shared so an HTTP front end can
    /// report the same counters at its stats endpoint).
    pub fn metrics_recorder(&self) -> &Arc<MetricsRecorder> {
        &self.metrics
    }

    /// A point-in-time metrics snapshot (per-request timings, error and
    /// rejection counters).
    pub fn metrics(&self) -> Metrics {
        self.metrics.snapshot()
    }

    /// Answers one request (equivalent to a batch of one).
    ///
    /// # Errors
    /// Bad request specs or evaluation errors.
    pub fn execute(&self, request: &Request) -> Result<Reply, ServeError> {
        self.execute_for(0, request)
    }

    /// [`execute`](Self::execute) with **worker affinity**: the session is
    /// checked out from (and returned to) the pool shard of `worker`, so a
    /// long-lived serving worker keeps reusing the session it warmed
    /// instead of contending with its peers on one shard.
    ///
    /// # Errors
    /// Bad request specs or evaluation errors.
    pub fn execute_for(&self, worker: usize, request: &Request) -> Result<Reply, ServeError> {
        let mut session = self.pool.checkout_for(worker);
        execute_recorded(&mut session, request, Some(&self.metrics))
    }

    /// Answers a batch of independent requests, in request order —
    /// bit-identical to answering each alone, for any worker count.
    pub fn batch(&self, requests: &[Request]) -> Vec<Result<Reply, ServeError>> {
        self.executor
            .execute_metered(&self.pool, requests, Some(&self.metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_pdb::AggFun;

    const SRC: &str = "rel City(symbol, real) input.
        Earthquake(C, Flip<R>) :- City(C, R).
        Alarm(C) :- Earthquake(C, 1).";

    #[test]
    fn batch_answers_land_in_request_order() {
        let server = Server::from_source(SRC, SemanticsMode::Grohe)
            .unwrap()
            .threads(3);
        let rates = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
        let requests: Vec<Request> = rates
            .iter()
            .enumerate()
            .map(|(i, r)| {
                Request::marginal(format!("Alarm(c{i})"))
                    .evidence(format!("City(c{i}, {r})."))
                    .exact()
            })
            .collect();
        for (i, answer) in server.batch(&requests).into_iter().enumerate() {
            let Response::Marginal(p) = answer.unwrap().single().clone() else {
                panic!("marginal response expected");
            };
            assert!((p - rates[i]).abs() < 1e-12, "slot {i}");
        }
        assert!(server.pool().created() <= 3);
    }

    #[test]
    fn evidence_does_not_leak_between_requests() {
        let server = Server::from_source(SRC, SemanticsMode::Grohe).unwrap();
        let with = Request::marginals("Alarm").input("City(a, 1.0).").exact();
        let without = Request::marginals("Alarm").exact();
        let answers = server.batch(&[with, without]);
        let Response::Marginals(first) = answers[0].as_ref().unwrap().single() else {
            panic!()
        };
        assert_eq!(first.len(), 1);
        let Response::Marginals(second) = answers[1].as_ref().unwrap().single() else {
            panic!()
        };
        assert!(second.is_empty(), "no residual evidence from request 0");
    }

    #[test]
    fn one_bad_request_does_not_sink_the_batch() {
        let server = Server::from_source(SRC, SemanticsMode::Grohe).unwrap();
        let answers = server.batch(&[
            Request::marginals("NoSuchRel"),
            Request::expectation("Alarm", AggFun::Count).exact(),
        ]);
        assert!(answers[0].is_err());
        assert!(answers[1].is_ok());
    }

    #[test]
    fn all_query_kinds_execute() {
        let server = Server::from_source(SRC, SemanticsMode::Grohe).unwrap();
        let evidence = "City(a, 0.5). City(b, 0.5).";
        let answers = server.batch(&[
            Request::marginal("Alarm(a)").evidence(evidence).exact(),
            Request::probability("Alarm(a). Alarm(b).")
                .evidence(evidence)
                .exact(),
            Request::expectation("Alarm", AggFun::Count)
                .evidence(evidence)
                .exact(),
            Request::histogram("Earthquake", 1, 0.0, 2.0, 2)
                .evidence(evidence)
                .exact(),
            Request::marginals("Alarm").evidence(evidence).exact(),
            Request::quantile("Earthquake", 1, 0.75)
                .evidence(evidence)
                .exact(),
            Request::tail("Earthquake", 1, 1.0)
                .evidence(evidence)
                .exact(),
        ]);
        assert_eq!(
            answers[0].as_ref().unwrap().single(),
            &Response::Marginal(0.5)
        );
        assert_eq!(
            answers[1].as_ref().unwrap().single(),
            &Response::Probability(0.25)
        );
        let Response::Expectation(Some(m)) = answers[2].as_ref().unwrap().single() else {
            panic!()
        };
        assert!((m.mean - 1.0).abs() < 1e-12);
        let Response::Histogram(h) = answers[3].as_ref().unwrap().single() else {
            panic!()
        };
        assert!((h.bins[1] - 1.0).abs() < 1e-12, "E[#quake=1] = 1");
        let Response::Marginals(rows) = answers[4].as_ref().unwrap().single() else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "Alarm(a)");
        let Response::Quantile(Some(v)) = answers[5].as_ref().unwrap().single() else {
            panic!()
        };
        // Indicator values 0 and 1 carry weight 1.0 each; the 0.75
        // quantile (target 1.5 of 2.0) lands on 1.
        assert!((v - 1.0).abs() < 1e-12);
        let Response::Tail(p) = answers[6].as_ref().unwrap().single() else {
            panic!()
        };
        assert!((p - 0.75).abs() < 1e-12, "P(some quake indicator >= 1)");
    }

    #[test]
    fn conditional_requests_answer_the_posterior() {
        // P(Earthquake=1 | Alarm) = 1 under this program: alarms only
        // fire on earthquakes.
        let server = Server::from_source(SRC, SemanticsMode::Grohe)
            .unwrap()
            .threads(2);
        let prior = Request::marginal("Earthquake(a, 1)")
            .evidence("City(a, 0.3).")
            .exact();
        let posterior = Request::marginal("Earthquake(a, 1)")
            .evidence("City(a, 0.3).")
            .given("Alarm(a).")
            .exact();
        let answers = server.batch(&[prior.clone(), posterior.clone()]);
        assert_eq!(
            answers[0].as_ref().unwrap().single(),
            &Response::Marginal(0.3)
        );
        assert_eq!(
            answers[1].as_ref().unwrap().single(),
            &Response::Marginal(1.0)
        );
        // The conditioned reply surfaces the pass's evidence diagnostics
        // (mass = P(Alarm(a)) = 0.3) instead of discarding them.
        assert!(answers[0].as_ref().unwrap().evidence.is_none());
        let ev = answers[1].as_ref().unwrap().evidence.expect("diagnostics");
        assert!((ev.mass - 0.3).abs() < 1e-12);
        assert!(ev.ess >= 1.0);
        // Batched conditional answers are identical to the single-request
        // path (the acceptance criterion for serving-layer conditioning).
        let single = server.execute(&posterior).unwrap();
        assert_eq!(&single, answers[1].as_ref().unwrap());
    }

    #[test]
    fn conditional_mc_requests_are_deterministic_and_batch_equals_single() {
        let server1 = Server::from_source(SRC, SemanticsMode::Grohe).unwrap();
        let server4 = Server::from_source(SRC, SemanticsMode::Grohe)
            .unwrap()
            .threads(4);
        let requests: Vec<Request> = (0..6)
            .map(|i| {
                Request::marginal(format!("Earthquake(c{i}, 1)"))
                    .evidence(format!("City(c{i}, 0.3)."))
                    .given(format!("Alarm(c{i})."))
                    .mc(4_000)
                    .seed(i as u64)
            })
            .collect();
        let a = server1.batch(&requests);
        let b = server4.batch(&requests);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            let (Response::Marginal(p), Response::Marginal(q)) =
                (x.as_ref().unwrap().single(), y.as_ref().unwrap().single())
            else {
                panic!()
            };
            assert_eq!(p.to_bits(), q.to_bits(), "slot {i}");
            assert!((p - 1.0).abs() < 1e-12, "posterior is 1 here");
            // Single-request path bit-identical to the batch slot.
            let single = server1.execute(&requests[i]).unwrap();
            assert_eq!(&single, x.as_ref().unwrap());
        }
    }

    /// Satellite 3: work stealing preserves request-order answers and
    /// bit-identity at 1/2/4/8 workers, for exact and Monte-Carlo
    /// backends alike, on a batch with deliberately skewed per-request
    /// cost (so stealing actually reorders completion).
    #[test]
    fn work_stealing_is_bit_identical_at_1_2_4_8_workers() {
        let requests: Vec<Request> = (0..24)
            .map(|i| {
                // Vary the evidence size so request costs are skewed.
                let cities: String = (0..=(i % 5))
                    .map(|j| format!("City(c{i}_{j}, 0.{}).", (i % 9) + 1))
                    .collect();
                let r = Request::marginals("Alarm").input(cities);
                if i % 2 == 0 {
                    r.exact()
                } else {
                    r.mc(500).seed(i as u64)
                }
            })
            .collect();
        let reference: Vec<Result<Reply, ServeError>> = {
            let server = Server::from_source(SRC, SemanticsMode::Grohe).unwrap();
            requests.iter().map(|r| server.execute(r)).collect()
        };
        for workers in [1usize, 2, 4, 8] {
            let server = Server::from_source(SRC, SemanticsMode::Grohe)
                .unwrap()
                .threads(workers);
            let batch = server.batch(&requests);
            for (i, (got, want)) in batch.iter().zip(&reference).enumerate() {
                assert_eq!(
                    got.as_ref().unwrap(),
                    want.as_ref().unwrap(),
                    "slot {i} diverges at {workers} workers"
                );
            }
        }
    }

    /// An expired deadline surfaces as `EngineError::DeadlineExceeded`
    /// and is counted by the server's metrics.
    #[test]
    fn expired_deadline_rejects_request_and_is_counted() {
        let server = Server::from_source(SRC, SemanticsMode::Grohe).unwrap();
        let request = Request::marginal("Alarm(a)")
            .input("City(a, 0.3).")
            .exact()
            .deadline(std::time::Instant::now());
        let err = server.execute(&request).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Engine(EngineError::DeadlineExceeded)
        ));
        let m = server.metrics();
        assert_eq!(m.deadline_rejections, 1);
        assert_eq!(m.errors, 1);
        // A generous deadline changes nothing.
        let ok = server
            .execute(
                &Request::marginal("Alarm(a)")
                    .input("City(a, 0.3).")
                    .exact()
                    .deadline(Instant::now() + std::time::Duration::from_secs(3600)),
            )
            .unwrap();
        assert_eq!(ok.single(), &Response::Marginal(0.3));
        assert_eq!(server.metrics().requests, 2);
    }

    /// The batch path records one timing per request.
    #[test]
    fn batch_records_per_request_metrics() {
        let server = Server::from_source(SRC, SemanticsMode::Grohe)
            .unwrap()
            .threads(4);
        let requests: Vec<Request> = (0..10)
            .map(|i| {
                Request::marginal(format!("Alarm(c{i})"))
                    .input(format!("City(c{i}, 0.2)."))
                    .exact()
            })
            .collect();
        let answers = server.batch(&requests);
        assert!(answers.iter().all(|a| a.is_ok()));
        let m = server.metrics();
        assert_eq!(m.requests, 10);
        assert_eq!(m.errors, 0);
        assert!(m.p99_us > 0);
    }

    #[test]
    fn mc_requests_are_deterministic_across_worker_counts() {
        let server1 = Server::from_source(SRC, SemanticsMode::Grohe).unwrap();
        let server4 = Server::from_source(SRC, SemanticsMode::Grohe)
            .unwrap()
            .threads(4);
        let requests: Vec<Request> = (0..6)
            .map(|i| {
                Request::marginal(format!("Alarm(c{i})"))
                    .evidence(format!("City(c{i}, 0.3)."))
                    .mc(2_000)
                    .seed(i as u64)
            })
            .collect();
        let a = server1.batch(&requests);
        let b = server4.batch(&requests);
        for (x, y) in a.iter().zip(&b) {
            let (Response::Marginal(p), Response::Marginal(q)) =
                (x.as_ref().unwrap().single(), y.as_ref().unwrap().single())
            else {
                panic!()
            };
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }
}
