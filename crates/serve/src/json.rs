//! A minimal, dependency-free JSON reader/writer for the batch wire
//! format.
//!
//! The workspace is deliberately offline (no serde); this module parses
//! exactly the JSON subset the serving layer needs — objects, arrays,
//! strings with escapes, f64 numbers, booleans, null — and renders
//! responses back out. Object member order is preserved, so rendered
//! output is deterministic.
//!
//! ```
//! use gdatalog_serve::json::Json;
//!
//! let v = Json::parse(r#"{"kind": "marginal", "fact": "Alarm(h0)", "runs": 500}"#).unwrap();
//! assert_eq!(v.get("kind").and_then(Json::as_str), Some("marginal"));
//! assert_eq!(v.get("runs").and_then(Json::as_usize), Some(500));
//! assert!(v.get("seed").is_none());
//! ```

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in member order.
    Obj(Vec<(String, Json)>),
}

/// A parse error with a byte offset into the source.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).
    ///
    /// # Errors
    /// [`JsonError`] on malformed input.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object member lookup (`None` for absent keys and non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if this is a whole number
    /// that fits both `f64`'s exact-integer range (2⁵³) and `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                usize::try_from(*x as u64).ok()
            }
            _ => None,
        }
    }

    /// The payload as a `u64`, if this is a whole non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (deterministic member order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) if x.is_finite() => out.push_str(&format!("{x}")),
            // JSON has no Infinity/NaN; deficits and failed statistics
            // degrade to null rather than emitting invalid documents.
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\": ");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Maximum container nesting the parser accepts. The reader is
/// recursive-descent, so each `[`/`{` level consumes a stack frame; an
/// adversarial batch request (`[[[[…`) must hit a parse error, not
/// overflow the serving process's stack. 128 levels is far beyond any
/// legitimate batch document while keeping recursion bounded at a few
/// kilobytes of stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting level (see [`MAX_DEPTH`]).
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    /// Enters one container level, erroring out at [`MAX_DEPTH`].
    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!(
                "nesting deeper than {MAX_DEPTH} levels is not accepted"
            )));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => {
                self.descend()?;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.descend()?;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let code = u16::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a real low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err(
                                            "high surrogate not followed by a low surrogate",
                                        ));
                                    }
                                    let combined = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(u32::from(hi))
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; find the scalar's width).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("source was a &str"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let src = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\"y\n"}"#;
        let v = Json::parse(src).unwrap();
        let again = Json::parse(&v.render()).unwrap();
        assert_eq!(v, again);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\"y\n"));
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        // Unescaped multi-byte UTF-8 passes through.
        let v = Json::parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo"));
        // A proper surrogate pair decodes …
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // … while a high surrogate followed by a non-low escape is an
        // error, not an overflow or a silently wrong character.
        assert!(
            Json::parse("\"\\uD800\\u0041\"").is_err(),
            "high surrogate + non-low \\u escape (the overflow repro)"
        );
        assert!(Json::parse("\"\\uD800x\"").is_err(), "lone high surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "tru", "\"abc", "{\"a\" 1}", "1 2", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_round_trip_exactly() {
        let v = Json::parse("{\"n\": 1000000}").unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(1_000_000));
        assert_eq!(v.render(), "{\"n\": 1000000}");
        // Whole numbers up to 2^53 convert exactly (a 5e9-run request
        // must not silently degrade to a default).
        let v = Json::parse("5000000000").unwrap();
        assert_eq!(v.as_usize(), Some(5_000_000_000));
        assert_eq!(Json::Num(1.5).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Num(2f64.powi(54)).as_usize(), None);
    }

    #[test]
    fn depth_cap_rejects_adversarial_nesting() {
        // An adversarial batch body like `[[[[…` must produce a parse
        // error, not a stack overflow in the serving process.
        // 100 levels: fine.
        let ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        // 1 million levels: a clean error (would overflow without the cap).
        let deep = "[".repeat(1_000_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Objects are capped too.
        let deep_obj = "{\"k\":".repeat(200) + "0" + &"}".repeat(200);
        assert!(Json::parse(&deep_obj).is_err());
        // Exactly at the cap parses; one past it does not.
        let at = format!("{}0{}", "[".repeat(128), "]".repeat(128));
        assert!(Json::parse(&at).is_ok());
        let past = format!("{}0{}", "[".repeat(129), "]".repeat(129));
        assert!(Json::parse(&past).is_err());
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
