#![warn(missing_docs)]

//! # gdatalog-serve
//!
//! The request-serving layer: compile a generative-Datalog program
//! **once**, keep warm sessions over it, and answer batches of
//! independent queries with deterministic parallelism.
//!
//! The paper's framing (and that of its PPDL ancestor, Bárány et al.)
//! treats a program as a reusable statistical *model* queried many times
//! over varying evidence. This crate is that workload's fast path, in
//! three composable pieces:
//!
//! * [`ProgramCache`] — memoizes parse+validate+translate+plan per
//!   distinct `(source, semantics)` pair, keyed by a content hash
//!   ([`gdatalog_core::fingerprint`]); a hit returns the *same*
//!   [`PreparedModel`] allocation, so plans are shared by pointer, never
//!   re-derived.
//! * [`SessionPool`] — checks out warm [`gdatalog_core::Session`]s and
//!   resets each request's fact delta on return, so the per-request cost
//!   is evidence insertion plus evaluation, nothing else.
//! * [`BatchExecutor`] / [`Server`] — schedules a batch of independent
//!   [`Request`]s across pooled sessions by **work stealing** (workers
//!   claim one request at a time off a shared cursor) and scatters
//!   answers back into request-order slots. Batch answers are
//!   bit-identical to evaluating each request alone, for any worker
//!   count. Per-request timings and rejection counters are captured by a
//!   [`MetricsRecorder`] and snapshotted as [`Metrics`].
//!
//! A request may bundle **several queries** (`Request::query` /
//! the `"queries"` wire member): the executor compiles them into one
//! `gdatalog_core::QuerySet` and answers all of them in a **single**
//! backend pass, so a K-statistics dashboard request costs one chase
//! instead of K. The [`Reply`] carries one [`Response`] per query in
//! query order, plus the evidence diagnostics (mass, effective sample
//! size) when the request was conditioned.
//!
//! ```
//! use gdatalog_serve::{ProgramCache, Request, Response, Server};
//! use gdatalog_lang::SemanticsMode;
//!
//! // One cache for the process; each distinct program compiles once.
//! let cache = ProgramCache::new();
//! let model = cache.get_or_compile(
//!     "rel City(symbol, real) input.
//!      Earthquake(C, Flip<R>) :- City(C, R).
//!      Alarm(C) :- Earthquake(C, 1).",
//!     SemanticsMode::Grohe,
//! ).unwrap();
//!
//! // A server = session pool + batch executor over the cached model.
//! let server = Server::new(model).threads(4);
//! let requests: Vec<Request> = (0..16)
//!     .map(|i| Request::marginal(format!("Alarm(city{i})"))
//!         .input(format!("City(city{i}, 0.3)."))
//!         .exact())
//!     .collect();
//! for answer in server.batch(&requests) {
//!     assert_eq!(answer.unwrap().single(), &Response::Marginal(0.3));
//! }
//! assert_eq!(cache.stats().misses, 1);
//! ```
//!
//! The same surface drives `gdl batch <requests.json>`; the wire format
//! lives in [`request`] and the dependency-free JSON reader in [`json`].

use std::fmt;

use gdatalog_core::EngineError;
use gdatalog_lang::LangError;

pub mod cache;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod request;
pub mod server;

pub use cache::{CacheStats, PreparedModel, ProgramCache, CACHE_SHARDS};
pub use metrics::{Metrics, MetricsRecorder};
pub use pool::{PoolStats, PooledSession, SessionPool, DEFAULT_MAX_IDLE, POOL_SHARDS};
pub use request::{fact_text, query_from_json, BackendSpec, QueryKind, Reply, Request, Response};
pub use server::{execute_on, BatchExecutor, Server};

/// Errors of the serving layer.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// Compilation or evaluation failed in the engine.
    Engine(EngineError),
    /// The request itself is malformed (unknown relation, bad spec, …).
    BadRequest(String),
    /// The batch document is not valid JSON / not the expected shape.
    Json(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Engine(e) => write!(f, "{e}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Json(msg) => write!(f, "bad batch document: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<LangError> for ServeError {
    fn from(e: LangError) -> Self {
        ServeError::Engine(EngineError::Lang(e))
    }
}

impl From<json::JsonError> for ServeError {
    fn from(e: json::JsonError) -> Self {
        ServeError::Json(e.to_string())
    }
}
