//! Kolmogorov–Smirnov tests: one-sample (against a CDF) and two-sample.
//!
//! p-values use the asymptotic Kolmogorov distribution with the standard
//! finite-sample correction `λ = (√n + 0.12 + 0.11/√n)·D` (Stephens).

/// Outcome of a KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup |F̂ − F|`.
    pub statistic: f64,
    /// Asymptotic p-value for the null "samples follow the distribution".
    pub p_value: f64,
    /// Effective sample size used for the p-value.
    pub effective_n: f64,
}

impl KsResult {
    /// Whether the null hypothesis survives at significance `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Kolmogorov's asymptotic survival function
/// `Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda < 1e-8 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        if term < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample KS test of `samples` against the continuous CDF `cdf`.
///
/// # Panics
/// Panics if `samples` is empty.
pub fn ks_one_sample(samples: &[f64], cdf: impl Fn(f64) -> f64) -> KsResult {
    assert!(!samples.is_empty(), "KS test needs at least one sample");
    let mut xs = samples.to_vec();
    xs.sort_by(f64::total_cmp);
    let n = xs.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    let sqrt_n = n.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        effective_n: n,
    }
}

/// Two-sample KS test: are `a` and `b` draws from the same distribution?
///
/// # Panics
/// Panics if either sample is empty.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS test needs samples");
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    xs.sort_by(f64::total_cmp);
    ys.sort_by(f64::total_cmp);
    let (na, nb) = (xs.len() as f64, ys.len() as f64);
    let mut d: f64 = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < xs.len() && j < ys.len() {
        let x = xs[i].min(ys[j]);
        while i < xs.len() && xs[i] <= x {
            i += 1;
        }
        while j < ys.len() && ys[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    let ne = na * nb / (na + nb);
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        effective_n: ne,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-uniform sequence (Weyl sequence) — low
    /// discrepancy, so it passes KS against U(0,1) easily.
    fn weyl(n: usize) -> Vec<f64> {
        let alpha = 0.618_033_988_749_894_9_f64;
        (1..=n).map(|i| (i as f64 * alpha).fract()).collect()
    }

    #[test]
    fn uniform_sequence_passes_against_uniform_cdf() {
        let xs = weyl(2000);
        let r = ks_one_sample(&xs, |x| x.clamp(0.0, 1.0));
        assert!(r.passes(0.01), "D = {}, p = {}", r.statistic, r.p_value);
    }

    #[test]
    fn shifted_sequence_fails() {
        let xs: Vec<f64> = weyl(2000).iter().map(|x| x * 0.5).collect();
        let r = ks_one_sample(&xs, |x| x.clamp(0.0, 1.0));
        assert!(!r.passes(0.01), "should reject, p = {}", r.p_value);
        assert!(r.statistic > 0.4);
    }

    #[test]
    fn two_sample_same_distribution_passes() {
        let a = weyl(1500);
        let b: Vec<f64> = weyl(3001).into_iter().skip(1501).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.passes(0.01), "D = {}, p = {}", r.statistic, r.p_value);
    }

    #[test]
    fn two_sample_different_distributions_fail() {
        let a = weyl(1000);
        let b: Vec<f64> = weyl(1000).iter().map(|x| x.powi(2)).collect();
        let r = ks_two_sample(&a, &b);
        assert!(!r.passes(0.01), "should reject, p = {}", r.p_value);
    }

    #[test]
    fn kolmogorov_q_boundaries() {
        assert!((kolmogorov_q(0.0) - 1.0).abs() < 1e-9);
        assert!(kolmogorov_q(3.0) < 1e-6);
        // Known value: Q(1.0) ≈ 0.27.
        assert!((kolmogorov_q(1.0) - 0.27).abs() < 0.01);
    }
}
