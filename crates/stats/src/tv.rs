//! Total variation distance between discrete (sub-)distributions.

use std::collections::BTreeMap;

/// Total variation distance
/// `TV(p, q) = ½ Σ_x |p(x) − q(x)|`
/// between two discrete (sub-)probability maps keyed by any ordered key.
///
/// Keys absent from one map count as probability 0 there. For
/// sub-probability inputs (masses < 1) the missing mass is treated as
/// belonging to a shared "error" outcome only if *both* are deficient by
/// the same amount; otherwise the deficit difference contributes, which is
/// the right notion when comparing SPDB world-tables (Def. 2.7).
pub fn total_variation<K: Ord>(p: &BTreeMap<K, f64>, q: &BTreeMap<K, f64>) -> f64 {
    let mut acc = 0.0;
    for (k, &pv) in p {
        let qv = q.get(k).copied().unwrap_or(0.0);
        acc += (pv - qv).abs();
    }
    for (k, &qv) in q {
        if !p.contains_key(k) {
            acc += qv;
        }
    }
    // Deficit difference (mass assigned to the implicit error outcome).
    let mp: f64 = p.values().sum();
    let mq: f64 = q.values().sum();
    acc += ((1.0 - mp) - (1.0 - mq)).abs();
    acc / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn identical_distributions_have_zero_tv() {
        let p = map(&[("a", 0.5), ("b", 0.5)]);
        assert!(total_variation(&p, &p) < 1e-15);
    }

    #[test]
    fn disjoint_distributions_have_tv_one() {
        let p = map(&[("a", 1.0)]);
        let q = map(&[("b", 1.0)]);
        assert!((total_variation(&p, &q) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn simple_shift() {
        let p = map(&[("a", 0.5), ("b", 0.5)]);
        let q = map(&[("a", 0.25), ("b", 0.75)]);
        assert!((total_variation(&p, &q) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn subprobability_deficit_counts() {
        // p puts 0.9 mass on "a" (0.1 deficit), q puts 1.0 on "a".
        let p = map(&[("a", 0.9)]);
        let q = map(&[("a", 1.0)]);
        assert!((total_variation(&p, &q) - 0.1).abs() < 1e-15);
    }

    #[test]
    fn symmetric() {
        let p = map(&[("a", 0.2), ("b", 0.3), ("c", 0.5)]);
        let q = map(&[("b", 0.6), ("c", 0.2), ("d", 0.2)]);
        assert!((total_variation(&p, &q) - total_variation(&q, &p)).abs() < 1e-15);
    }
}
