//! Chi-square goodness-of-fit test for discrete distributions.

use crate::special_min::reg_gamma_upper;

/// Outcome of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareResult {
    /// The X² statistic.
    pub statistic: f64,
    /// Degrees of freedom used.
    pub dof: usize,
    /// p-value `P(χ²_dof ≥ statistic)`.
    pub p_value: f64,
}

impl ChiSquareResult {
    /// Whether the null hypothesis survives at significance `alpha`.
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Chi-square GOF: `observed[i]` counts vs expected probabilities
/// `expected_probs[i]` (which are normalized internally). Cells whose
/// expected count is below `min_expected` (commonly 5) are pooled into the
/// last viable cell to keep the asymptotics honest.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or the total observed
/// count is zero.
pub fn chi_square_gof(
    observed: &[u64],
    expected_probs: &[f64],
    min_expected: f64,
) -> ChiSquareResult {
    assert_eq!(observed.len(), expected_probs.len(), "length mismatch");
    assert!(!observed.is_empty(), "empty test");
    let n: u64 = observed.iter().sum();
    assert!(n > 0, "no observations");
    let total_p: f64 = expected_probs.iter().sum();
    assert!(total_p > 0.0, "expected probabilities sum to zero");

    // Pool small-expectation cells.
    let mut pooled: Vec<(f64, f64)> = Vec::new(); // (observed, expected)
    let mut acc_obs = 0.0;
    let mut acc_exp = 0.0;
    for (&o, &p) in observed.iter().zip(expected_probs) {
        acc_obs += o as f64;
        acc_exp += p / total_p * n as f64;
        if acc_exp >= min_expected {
            pooled.push((acc_obs, acc_exp));
            acc_obs = 0.0;
            acc_exp = 0.0;
        }
    }
    if acc_exp > 0.0 || acc_obs > 0.0 {
        if let Some(last) = pooled.last_mut() {
            last.0 += acc_obs;
            last.1 += acc_exp;
        } else {
            pooled.push((acc_obs, acc_exp));
        }
    }

    let statistic: f64 = pooled
        .iter()
        .map(|(o, e)| {
            let d = o - e;
            d * d / e
        })
        .sum();
    let dof = pooled.len().saturating_sub(1).max(1);
    let p_value = reg_gamma_upper(dof as f64 / 2.0, statistic / 2.0);
    ChiSquareResult {
        statistic,
        dof,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fit_has_high_p() {
        let observed = [250u64, 250, 250, 250];
        let probs = [0.25, 0.25, 0.25, 0.25];
        let r = chi_square_gof(&observed, &probs, 5.0);
        assert!(r.statistic < 1e-9);
        assert!(r.passes(0.05));
        assert_eq!(r.dof, 3);
    }

    #[test]
    fn biased_counts_reject() {
        let observed = [400u64, 100, 250, 250];
        let probs = [0.25, 0.25, 0.25, 0.25];
        let r = chi_square_gof(&observed, &probs, 5.0);
        assert!(!r.passes(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn unnormalized_probs_accepted() {
        let observed = [300u64, 700];
        let r1 = chi_square_gof(&observed, &[0.3, 0.7], 5.0);
        let r2 = chi_square_gof(&observed, &[3.0, 7.0], 5.0);
        assert!((r1.statistic - r2.statistic).abs() < 1e-12);
    }

    #[test]
    fn small_cells_get_pooled() {
        // Last cells have tiny expectation; pooling keeps dof meaningful.
        let observed = [500u64, 490, 8, 2];
        let probs = [0.5, 0.49, 0.008, 0.002];
        let r = chi_square_gof(&observed, &probs, 5.0);
        assert!(r.dof <= 2);
        assert!(r.passes(0.01), "p = {}", r.p_value);
    }

    #[test]
    fn chi_square_p_value_reference() {
        // For dof = 1, X² = 3.841 gives p ≈ 0.05.
        let r = ChiSquareResult {
            statistic: 3.841,
            dof: 1,
            p_value: reg_gamma_upper(0.5, 3.841 / 2.0),
        };
        assert!((r.p_value - 0.05).abs() < 0.001, "p = {}", r.p_value);
    }
}
