//! Quantiles and confidence intervals.

/// Empirical quantile (type-7 / linear interpolation, the R default) of a
/// sample, `q ∈ [0, 1]`.
///
/// # Panics
/// Panics on an empty sample or `q` outside `[0, 1]`.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q out of range: {q}");
    let mut xs = samples.to_vec();
    xs.sort_by(f64::total_cmp);
    let h = (xs.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        xs[lo] + (h - lo as f64) * (xs[hi] - xs[lo])
    }
}

/// Median (the 0.5 quantile).
pub fn median(samples: &[f64]) -> f64 {
    quantile(samples, 0.5)
}

/// Wilson score interval for a binomial proportion: the interval for the
/// true probability after observing `successes` out of `trials`, at the
/// given z-score (1.96 ≈ 95%).
///
/// Used to attach honest error bars to Monte-Carlo marginal estimates.
///
/// # Panics
/// Panics if `trials` is 0 or `successes > trials`.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "no trials");
    assert!(successes <= trials, "more successes than trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_sample() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(median(&xs), 3.0);
        assert!((quantile(&xs, 0.25) - 2.0).abs() < 1e-12);
        // Interpolation between order statistics.
        assert!((quantile(&xs, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        let xs = [1.0, 2.0, 3.0, 10.0];
        assert!((median(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let (lo, hi) = wilson_interval(30, 100, 1.96);
        assert!(lo < 0.3 && 0.3 < hi);
        assert!(lo > 0.2 && hi < 0.42, "({lo}, {hi})");
        // Degenerate edges stay within [0, 1].
        let (lo0, _) = wilson_interval(0, 10, 1.96);
        assert_eq!(lo0, 0.0);
        let (_, hi1) = wilson_interval(10, 10, 1.96);
        assert_eq!(hi1, 1.0);
    }

    #[test]
    fn wilson_narrows_with_more_trials() {
        let (lo1, hi1) = wilson_interval(50, 100, 1.96);
        let (lo2, hi2) = wilson_interval(5_000, 10_000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }
}
