//! Fixed-width histograms for experiment reports.

/// A fixed-bin histogram over `[lo, hi)` with under/overflow buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(lo < hi && bins > 0, "invalid histogram spec");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Bin counts (excludes under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `[lo, hi)` midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// A compact one-line ASCII rendering (for experiment logs).
    pub fn render(&self, width: usize) -> String {
        const GLYPHS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1) as f64;
        let step = (self.bins.len() as f64 / width.max(1) as f64).max(1.0);
        let mut out = String::new();
        let mut i = 0.0;
        while (i as usize) < self.bins.len() && out.chars().count() < width {
            let j = ((i + step) as usize).min(self.bins.len());
            let chunk_max = self.bins[i as usize..j].iter().copied().max().unwrap_or(0);
            let level = ((chunk_max as f64 / max) * 8.0).round() as usize;
            out.push(GLYPHS[level.min(8)]);
            i += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.5, 9.99, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
        assert_eq!(h.counts()[0], 2); // 0.0 and 0.5
        assert_eq!(h.counts()[5], 1); // 5.5
        assert_eq!(h.counts()[9], 1); // 9.99
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn render_is_nonempty_and_bounded() {
        let mut h = Histogram::new(0.0, 1.0, 50);
        for i in 0..1000 {
            h.push((i % 50) as f64 / 50.0);
        }
        let r = h.render(20);
        assert!(!r.is_empty());
        assert!(r.chars().count() <= 20);
    }
}
