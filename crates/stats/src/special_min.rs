//! Minimal private special functions for p-values (log-gamma and the
//! regularized incomplete gamma function). A fuller treatment lives in
//! `gdatalog-dist::special`; this copy keeps `gdatalog-stats` free of
//! dependencies so every other crate can use it in tests.

#[allow(clippy::excessive_precision)]
pub(crate) fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires x > 0");
    if x < 0.5 {
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized upper incomplete gamma `Q(a, x)`.
pub(crate) fn reg_gamma_upper(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_fraction(a, x)
    }
}

fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cont_fraction(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = f64::MIN_POSITIVE / f64::EPSILON;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_of_one_is_exp() {
        for &x in &[0.5, 1.0, 3.0] {
            assert!((reg_gamma_upper(1.0, x) - (-x).exp()).abs() < 1e-12);
        }
    }
}
