//! Streaming summary statistics (Welford's algorithm).

/// Running count/mean/variance/min/max accumulator.
///
/// Uses Welford's numerically stable update, so it can absorb millions of
/// Monte-Carlo samples without catastrophic cancellation.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Summary {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice.
    pub fn of(xs: &[f64]) -> Summary {
        let mut s = Summary::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (divides by n − 1).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sample_variance() / self.n as f64).sqrt()
        }
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_direct_formulas() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let s = Summary::of(&xs);
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        let var: f64 = xs.iter().map(|x| (x - 4.0) * (x - 4.0)).sum::<f64>() / 5.0;
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 5.0).collect();
        let whole = Summary::of(&xs);
        let mut left = Summary::of(&xs[..37]);
        let right = Summary::of(&xs[37..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }
}
