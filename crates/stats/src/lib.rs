#![warn(missing_docs)]

//! # gdatalog-stats
//!
//! Statistical testing substrate used throughout the reproduction to *verify*
//! distributional claims: Kolmogorov–Smirnov tests (one- and two-sample),
//! chi-square goodness of fit, running moments, total-variation distance and
//! histograms.
//!
//! This crate is deliberately dependency-free (it carries a small private
//! copy of `ln Γ` / the regularized incomplete gamma so that chi-square
//! p-values are exact) — it sits below every other crate in the workspace
//! and is usable from their dev-dependencies without cycles.

pub mod chisq;
pub mod histogram;
pub mod ks;
pub mod quantile;
pub mod summary;
pub mod tv;

mod special_min;

pub use chisq::{chi_square_gof, ChiSquareResult};
pub use histogram::Histogram;
pub use ks::{ks_one_sample, ks_two_sample, KsResult};
pub use quantile::{median, quantile, wilson_interval};
pub use summary::Summary;
pub use tv::total_variation;
