//! Chase policies: concrete counterparts of the paper's *measurable
//! selections* `app` of the multifunction `App` (Lemma 3.6(ii)).
//!
//! Since [`crate::applicable_pairs`] returns `App(D)` in a canonical order
//! that depends only on `D`, any index choice that is a function of the
//! returned list is a genuine selection (a function of the instance).
//! The `Random` policy is *not* a function of `D` — it consumes PRNG state
//! — which makes it an even stronger stress test of Theorem 6.1 (the
//! theorem's proof never uses that `app` is the same selection at every
//! tree level).

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

use crate::applicability::AppPair;

/// Declarative description of a policy (serializable into configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Always the canonically first applicable pair.
    Canonical,
    /// Always the canonically last applicable pair.
    Reverse,
    /// Uniformly random among applicable pairs (seeded).
    Random {
        /// PRNG seed for the policy's own randomness.
        seed: u64,
    },
    /// Cycle through rule ids across steps.
    RoundRobin,
    /// Prefer deterministic rules (saturate logic before sampling).
    DeterministicFirst,
}

/// A chase policy: selects one applicable pair per step. `Clone`
/// duplicates the policy state (including any PRNG state), which the
/// batched executor uses when a lane group forks.
#[derive(Debug, Clone)]
pub enum ChasePolicy {
    /// See [`PolicyKind::Canonical`].
    Canonical,
    /// See [`PolicyKind::Reverse`].
    Reverse,
    /// See [`PolicyKind::Random`].
    Random(StdRng),
    /// See [`PolicyKind::RoundRobin`].
    RoundRobin {
        /// Rule id to prefer next.
        next: usize,
    },
    /// See [`PolicyKind::DeterministicFirst`].
    DeterministicFirst {
        /// Rule ids that are existential (sampled) rules.
        existential_rules: Vec<usize>,
    },
}

impl ChasePolicy {
    /// Instantiates a policy from its description.
    ///
    /// `existential_rules` lists the rule ids that sample (needed by
    /// [`PolicyKind::DeterministicFirst`]).
    pub fn new(kind: PolicyKind, existential_rules: &[usize]) -> ChasePolicy {
        match kind {
            PolicyKind::Canonical => ChasePolicy::Canonical,
            PolicyKind::Reverse => ChasePolicy::Reverse,
            PolicyKind::Random { seed } => ChasePolicy::Random(StdRng::seed_from_u64(seed)),
            PolicyKind::RoundRobin => ChasePolicy::RoundRobin { next: 0 },
            PolicyKind::DeterministicFirst => ChasePolicy::DeterministicFirst {
                existential_rules: existential_rules.to_vec(),
            },
        }
    }

    /// Selects the index of the pair to fire from a non-empty `App(D)`.
    ///
    /// # Panics
    /// Panics if `pairs` is empty.
    pub fn select(&mut self, pairs: &[AppPair]) -> usize {
        assert!(!pairs.is_empty(), "select on empty App(D)");
        match self {
            ChasePolicy::Canonical => 0,
            ChasePolicy::Reverse => pairs.len() - 1,
            ChasePolicy::Random(rng) => (rng.next_u64() % pairs.len() as u64) as usize,
            ChasePolicy::RoundRobin { next } => {
                // First pair whose rule id is >= next (cyclically).
                let chosen = pairs.iter().position(|p| p.rule >= *next).unwrap_or(0);
                *next = pairs[chosen].rule + 1;
                chosen
            }
            ChasePolicy::DeterministicFirst { existential_rules } => pairs
                .iter()
                .position(|p| !existential_rules.contains(&p.rule))
                .unwrap_or(0),
        }
    }

    /// Human-readable name (for reports).
    pub fn name(&self) -> &'static str {
        match self {
            ChasePolicy::Canonical => "canonical",
            ChasePolicy::Reverse => "reverse",
            ChasePolicy::Random(_) => "random",
            ChasePolicy::RoundRobin { .. } => "round-robin",
            ChasePolicy::DeterministicFirst { .. } => "deterministic-first",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::{tuple, Tuple};

    fn pairs(rules: &[usize]) -> Vec<AppPair> {
        rules
            .iter()
            .enumerate()
            .map(|(i, &r)| AppPair {
                rule: r,
                valuation: tuple![i as i64],
            })
            .collect()
    }

    #[test]
    fn canonical_and_reverse() {
        let ps = pairs(&[0, 1, 2]);
        assert_eq!(ChasePolicy::Canonical.select(&ps), 0);
        assert_eq!(ChasePolicy::Reverse.select(&ps), 2);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let ps = pairs(&[0, 1, 2, 3, 4]);
        let mut a = ChasePolicy::new(PolicyKind::Random { seed: 9 }, &[]);
        let mut b = ChasePolicy::new(PolicyKind::Random { seed: 9 }, &[]);
        for _ in 0..20 {
            assert_eq!(a.select(&ps), b.select(&ps));
        }
    }

    #[test]
    fn round_robin_cycles_rules() {
        let ps = pairs(&[0, 1, 2]);
        let mut p = ChasePolicy::new(PolicyKind::RoundRobin, &[]);
        assert_eq!(ps[p.select(&ps)].rule, 0);
        assert_eq!(ps[p.select(&ps)].rule, 1);
        assert_eq!(ps[p.select(&ps)].rule, 2);
        // Wraps around.
        assert_eq!(ps[p.select(&ps)].rule, 0);
    }

    #[test]
    fn deterministic_first_prefers_non_sampling() {
        let ps = pairs(&[0, 1, 2]);
        let mut p = ChasePolicy::new(PolicyKind::DeterministicFirst, &[0, 1]);
        // Rules 0 and 1 are existential; rule 2 is deterministic.
        assert_eq!(ps[p.select(&ps)].rule, 2);
        // All-existential fallback: first.
        let ps2 = pairs(&[0, 1]);
        assert_eq!(ps2[p.select(&ps2)].rule, 0);
        let _ = Tuple::empty();
    }
}
