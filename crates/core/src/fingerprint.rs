//! Content fingerprints for compiled programs: the cache keys of the
//! serving layer.
//!
//! A program's compile+plan artifacts ([`crate::Engine`] and its shared
//! [`crate::applicability::PreparedProgram`]) are pure functions of the
//! source text, the [`SemanticsMode`], and the distribution family, so a
//! cache may key them by a **content hash** of those inputs: two requests
//! carrying byte-identical sources under the same mode hit the same
//! compiled entry and share the very same plan allocation.
//!
//! ```
//! use gdatalog_core::fingerprint::source_fingerprint;
//! use gdatalog_lang::SemanticsMode;
//!
//! let a = source_fingerprint("R(Flip<0.5>) :- true.", SemanticsMode::Grohe);
//! let b = source_fingerprint("R(Flip<0.5>) :- true.", SemanticsMode::Grohe);
//! assert_eq!(a, b, "same source, same mode: same key");
//! let c = source_fingerprint("R(Flip<0.5>) :- true.", SemanticsMode::Barany);
//! assert_ne!(a, c, "the semantics mode is part of the key");
//! ```

use gdatalog_lang::SemanticsMode;

/// 64-bit FNV-1a over a byte stream — stable across platforms and runs
/// (unlike `std`'s randomized hasher), which is what a cache key persisted
/// into reports and logs needs.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher in its initial state.
    pub fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }

    /// Folds `bytes` into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// The content fingerprint of `(src, mode)`: the cache key under which the
/// serving layer memoizes compilation and planning. Byte-exact on the
/// source — whitespace and comments count, because the compiled artifact
/// is a function of the exact text.
pub fn source_fingerprint(src: &str, mode: SemanticsMode) -> u64 {
    let mut h = Fnv1a::new();
    h.write(match mode {
        SemanticsMode::Grohe => b"grohe\0",
        SemanticsMode::Barany => b"barany\0",
    });
    h.write(src.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let a = source_fingerprint("R(Flip<0.5>) :- true.", SemanticsMode::Grohe);
        assert_eq!(
            a,
            source_fingerprint("R(Flip<0.5>) :- true.", SemanticsMode::Grohe)
        );
        assert_ne!(
            a,
            source_fingerprint("R(Flip<0.6>) :- true.", SemanticsMode::Grohe),
            "different source"
        );
        assert_ne!(
            a,
            source_fingerprint("R(Flip<0.5>) :- true.", SemanticsMode::Barany),
            "different mode"
        );
        // Whitespace is significant: the key is byte-exact.
        assert_ne!(
            a,
            source_fingerprint("R(Flip<0.5>) :- true. ", SemanticsMode::Grohe)
        );
    }

    #[test]
    fn fnv_reference_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
