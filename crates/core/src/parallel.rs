//! Parallel chase steps and runs (Defs. 5.1/5.2 of the paper): in each
//! round, **all** applicable pairs fire simultaneously, their distributions
//! sampled independently (the product measure of Def. 5.1).
//!
//! One subtlety beyond the paper: under the Bárány-style translation, two
//! distinct applicable pairs can demand the *same experiment* (same shared
//! auxiliary relation and key). Firing both independently would violate the
//! induced FD. We therefore group applicable existential pairs by
//! `(aux relation, key)` and sample once per group — which is exactly the
//! semantics of "one experiment per (distribution, parameters)". Under the
//! paper's own (Grohe) translation every pair has a distinct key, so the
//! grouping is a no-op and the step is precisely Def. 5.1.

use std::collections::HashMap;

use gdatalog_data::{Instance, RelId, Value};
use gdatalog_dist::DistError;
use gdatalog_lang::{CompiledProgram, RuleKind};
use rand::Rng;

use crate::applicability::{eval_terms, PreparedProgram};
use crate::sequential::{fire, ChaseRun, RunOutcome, TraceStep};

/// Performs one parallel chase step. Returns `None` when `App(D)` is empty
/// (the instance is absorbing), otherwise the follow-up instance and the
/// number of pairs fired.
///
/// # Errors
/// Propagates runtime distribution-parameter failures.
pub fn parallel_step(
    program: &CompiledProgram,
    instance: &Instance,
    rng: &mut dyn Rng,
    trace: Option<&mut Vec<TraceStep>>,
) -> Result<Option<(Instance, usize)>, DistError> {
    let prepared = PreparedProgram::new(program);
    parallel_step_prepared(program, &prepared, instance, rng, trace)
}

/// [`parallel_step`] on a pre-planned program (no per-call replanning).
///
/// # Errors
/// Propagates runtime distribution-parameter failures.
pub fn parallel_step_prepared(
    program: &CompiledProgram,
    prepared: &PreparedProgram,
    instance: &Instance,
    rng: &mut dyn Rng,
    trace: Option<&mut Vec<TraceStep>>,
) -> Result<Option<(Instance, usize)>, DistError> {
    let index = prepared.new_index(instance);
    let app = prepared.applicable_pairs(program, instance, &index);
    if app.is_empty() {
        return Ok(None);
    }
    let mut next = instance.clone();
    let mut fired_count = 0usize;
    let mut local_trace = Vec::new();
    // Experiments demanded this round, keyed by (aux relation, key tuple):
    // sample once per distinct experiment.
    let mut experiments_done: HashMap<(RelId, Vec<Value>), ()> = HashMap::new();

    for pair in &app {
        let rule = &program.rules[pair.rule];
        if let RuleKind::Existential(e) = &rule.kind {
            let key = eval_terms(&e.key_terms, &pair.valuation);
            if experiments_done.contains_key(&(e.aux_rel, key.clone())) {
                continue;
            }
            experiments_done.insert((e.aux_rel, key), ());
        }
        let fired = fire(program, rule, &pair.valuation, rng)?;
        next.insert_fact(fired.fact);
        fired_count += 1;
        local_trace.push(TraceStep {
            rule: pair.rule,
            valuation: pair.valuation.clone(),
            sampled: fired.sampled,
            log_density: fired.log_density,
        });
    }
    if let Some(t) = trace {
        t.extend(local_trace);
    }
    Ok(Some((next, fired_count)))
}

/// Runs the parallel chase until no rule is applicable or `max_rounds`
/// parallel steps have been performed.
///
/// # Errors
/// Propagates runtime distribution-parameter failures.
pub fn run_parallel(
    program: &CompiledProgram,
    input: &Instance,
    rng: &mut dyn Rng,
    max_rounds: usize,
    record_trace: bool,
) -> Result<ChaseRun, DistError> {
    let prepared = PreparedProgram::new(program);
    run_parallel_prepared(program, &prepared, input, rng, max_rounds, record_trace)
}

/// [`run_parallel`] on a pre-planned program: the instance is mutated in
/// place round over round and one incrementally maintained index follows
/// it — no per-round instance clone or index rebuild.
///
/// # Errors
/// Propagates runtime distribution-parameter failures.
pub fn run_parallel_prepared(
    program: &CompiledProgram,
    prepared: &PreparedProgram,
    input: &Instance,
    rng: &mut dyn Rng,
    max_rounds: usize,
    record_trace: bool,
) -> Result<ChaseRun, DistError> {
    let mut instance = input.clone();
    let mut index = prepared.new_index(&instance);
    let mut rounds = 0usize;
    let mut log_weight = 0.0;
    let mut trace = Vec::new();
    let mut experiments_done: HashMap<(RelId, Vec<Value>), ()> = HashMap::new();
    loop {
        if rounds >= max_rounds {
            return Ok(ChaseRun {
                outcome: RunOutcome::BudgetExhausted,
                instance,
                steps: rounds,
                log_weight,
                trace,
            });
        }
        let app = prepared.applicable_pairs(program, &instance, &index);
        if app.is_empty() {
            return Ok(ChaseRun {
                outcome: RunOutcome::Terminated,
                instance,
                steps: rounds,
                log_weight,
                trace,
            });
        }
        // Fire every applicable pair of this round, sampling each distinct
        // experiment once (see module docs).
        experiments_done.clear();
        for pair in &app {
            let rule = &program.rules[pair.rule];
            if let RuleKind::Existential(e) = &rule.kind {
                let key = eval_terms(&e.key_terms, &pair.valuation);
                if experiments_done.contains_key(&(e.aux_rel, key.clone())) {
                    continue;
                }
                experiments_done.insert((e.aux_rel, key), ());
            }
            let fired = fire(program, rule, &pair.valuation, rng)?;
            let rel = fired.fact.rel;
            let tuple = fired.fact.tuple;
            if instance.insert(rel, tuple.clone()) {
                index.absorb(rel, &tuple);
            }
            log_weight += fired.log_density;
            if record_trace {
                trace.push(TraceStep {
                    rule: pair.rule,
                    valuation: pair.valuation.clone(),
                    sampled: fired.sampled,
                    log_density: fired.log_density,
                });
            }
        }
        rounds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;
    use gdatalog_dist::Registry;
    use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn compile(src: &str, mode: SemanticsMode) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, mode).unwrap()
    }

    #[test]
    fn parallel_rounds_fire_everything_at_once() {
        let prog = compile(
            r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            City(metropolis, 0.2).
            Earthquake(C, Flip<0.1>) :- City(C, R).
        "#,
            SemanticsMode::Grohe,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut trace = Vec::new();
        let (d1, fired) = parallel_step(&prog, &prog.initial_instance, &mut rng, Some(&mut trace))
            .unwrap()
            .unwrap();
        assert_eq!(fired, 2, "both cities sampled in one round");
        assert_eq!(trace.len(), 2);
        // Second round: two delivery rules.
        let (d2, fired2) = parallel_step(&prog, &d1, &mut rng, None).unwrap().unwrap();
        assert_eq!(fired2, 2);
        // Third round: nothing.
        assert!(parallel_step(&prog, &d2, &mut rng, None).unwrap().is_none());
    }

    #[test]
    fn run_parallel_terminates_and_satisfies_fds() {
        let prog = compile(
            r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            Earthquake(C, Flip<0.1>) :- City(C, R).
            Trig(X, Flip<0.6>) :- Earthquake(X, 1).
        "#,
            SemanticsMode::Grohe,
        );
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let run = run_parallel(&prog, &prog.initial_instance, &mut rng, 100, false).unwrap();
            assert_eq!(run.outcome, RunOutcome::Terminated);
            for fd in &prog.fds {
                assert!(fd.check(&run.instance).is_ok(), "seed {seed}");
            }
        }
    }

    #[test]
    fn barany_shared_experiments_sampled_once_per_round() {
        // Two rules demanding the same (Flip, 0.5) experiment; the parallel
        // step must sample it once, so R and S always coincide.
        let prog = compile(
            "R(Flip<0.5>) :- true. S(Flip<0.5>) :- true.",
            SemanticsMode::Barany,
        );
        let r = prog.catalog.require("R").unwrap();
        let s = prog.catalog.require("S").unwrap();
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let run = run_parallel(&prog, &prog.initial_instance, &mut rng, 100, false).unwrap();
            assert_eq!(run.outcome, RunOutcome::Terminated);
            let rv: Vec<_> = run.instance.relation(r).iter().cloned().collect();
            let sv: Vec<_> = run.instance.relation(s).iter().cloned().collect();
            assert_eq!(rv.len(), 1);
            assert_eq!(sv.len(), 1);
            assert_eq!(rv[0], sv[0], "Bárány semantics correlates R and S");
            for fd in &prog.fds {
                assert!(fd.check(&run.instance).is_ok());
            }
        }
    }

    #[test]
    fn grohe_two_rules_stay_independent() {
        let prog = compile(
            "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
            SemanticsMode::Grohe,
        );
        let r = prog.catalog.require("R").unwrap();
        let mut both_seen = false;
        for seed in 0..50 {
            let mut rng = StdRng::seed_from_u64(seed);
            let run = run_parallel(&prog, &prog.initial_instance, &mut rng, 100, false).unwrap();
            if run.instance.contains(r, &tuple![0i64]) && run.instance.contains(r, &tuple![1i64]) {
                both_seen = true;
            }
        }
        assert!(both_seen, "independent flips must sometimes disagree");
    }
}
