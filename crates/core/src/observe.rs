//! Evidence weighting: the per-world likelihood of a set of compiled
//! observations.
//!
//! Conditioning follows the evidence semantics of Bárány et al.'s PPDL
//! (TODS 2017) and the conditional event probabilities of the companion
//! PPDB paper: the posterior over worlds is the prior re-weighted by
//!
//! * an **indicator** per hard observation (`@observe R(c̄).` — the world
//!   must contain the fact), and
//! * a **likelihood** per soft observation
//!   (`@observe ψ⟨θ̄⟩ == v :- body.` — for every valuation of `body` over
//!   the world, the density of `v` under `ψ⟨θ̄⟩`),
//!
//! renormalized over the surviving mass. This module computes the
//! log-weight of one world; the backends multiply it into the stream
//! weights (exact enumeration and Monte-Carlo alike), and the evaluation
//! terminals self-normalize.

use gdatalog_data::{Instance, Value};
use gdatalog_datalog::{Atom as DlAtom, Term as DlTerm};
use gdatalog_lang::CompiledObserve;

use crate::EngineError;

/// Evaluates a term under a (possibly partial) binding; `None` if the term
/// is a still-unbound variable.
fn term_value<'a>(term: &'a DlTerm, binding: &'a [Option<Value>]) -> Option<&'a Value> {
    match term {
        DlTerm::Const(c) => Some(c),
        DlTerm::Var(v) => binding[*v].as_ref(),
    }
}

/// A visitor over complete observation-body valuations.
type MatchVisitor<'a> = dyn FnMut(&[Option<Value>]) -> Result<(), EngineError> + 'a;

/// Backtracking conjunctive matching of `body` over `world`, invoking `f`
/// on every complete valuation. Observation bodies are tiny (a handful of
/// atoms over one materialized world), so a nested-loop join is the right
/// tool — no index, no planning.
fn for_each_match(
    world: &Instance,
    body: &[DlAtom],
    binding: &mut [Option<Value>],
    f: &mut MatchVisitor<'_>,
) -> Result<(), EngineError> {
    let Some(atom) = body.first() else {
        return f(binding);
    };
    'tuples: for tuple in world.relation(atom.rel) {
        if tuple.arity() != atom.args.len() {
            continue;
        }
        // Unify the atom against the tuple, remembering what we bind so the
        // bindings can be undone before trying the next tuple.
        let mut bound_here: Vec<usize> = Vec::new();
        for (term, value) in atom.args.iter().zip(tuple.values()) {
            match term {
                DlTerm::Const(c) => {
                    if c != value {
                        for v in bound_here.drain(..) {
                            binding[v] = None;
                        }
                        continue 'tuples;
                    }
                }
                DlTerm::Var(v) => match &binding[*v] {
                    Some(existing) if existing != value => {
                        for v in bound_here.drain(..) {
                            binding[v] = None;
                        }
                        continue 'tuples;
                    }
                    Some(_) => {}
                    None => {
                        binding[*v] = Some(value.clone());
                        bound_here.push(*v);
                    }
                },
            }
        }
        for_each_match(world, &body[1..], binding, f)?;
        for v in bound_here {
            binding[v] = None;
        }
    }
    Ok(())
}

/// The log-weight of `world` under `observes`: `−∞` if a hard observation
/// fails, else the summed log-densities of all soft observations (one term
/// per valuation of each observation body). An empty observation set gives
/// log-weight 0 (weight 1).
///
/// # Errors
/// [`EngineError::Dist`] when a soft observation's parameters (flowing
/// from the world) are inadmissible for its distribution.
pub fn log_weight(observes: &[CompiledObserve], world: &Instance) -> Result<f64, EngineError> {
    let mut total = 0.0;
    for obs in observes {
        match obs {
            CompiledObserve::Hard { fact } => {
                if !world.contains(fact.rel, &fact.tuple) {
                    return Ok(f64::NEG_INFINITY);
                }
            }
            CompiledObserve::Soft {
                body,
                n_vars,
                sample,
                value_term,
            } => {
                let mut binding: Vec<Option<Value>> = vec![None; *n_vars];
                let mut acc = 0.0;
                for_each_match(world, body, &mut binding, &mut |binding| {
                    let params: Vec<Value> = sample
                        .param_terms
                        .iter()
                        .map(|t| {
                            term_value(t, binding)
                                .expect("observation variables bound by the body (validated)")
                                .clone()
                        })
                        .collect();
                    let value = term_value(value_term, binding)
                        .expect("observation variables bound by the body (validated)")
                        .clone();
                    acc += sample
                        .dist
                        .log_density(&params, &value)
                        .map_err(EngineError::Dist)?;
                    Ok(())
                })?;
                total += acc;
            }
        }
    }
    Ok(total)
}

/// The multiplicative weight of `world`: `exp` of [`log_weight`] (0 for a
/// failed hard observation).
///
/// This linear-space convenience **underflows to 0** once the
/// log-likelihood drops below ≈ −745. The engine's backends therefore
/// weigh worlds with [`log_weight`] directly, emitted via
/// `WorldSink::observe_log` into a streaming log-sum-exp accumulator
/// (`gdatalog_pdb::NormalizingSink::log_space`), so posteriors stay
/// correct in the underflow regime; use this function only where a plain
/// linear weight is known to be representable.
///
/// # Errors
/// Same as [`log_weight`].
pub fn weight(observes: &[CompiledObserve], world: &Instance) -> Result<f64, EngineError> {
    Ok(log_weight(observes, world)?.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;
    use gdatalog_dist::Registry;
    use gdatalog_lang::{compile_observations, parse_program, translate, validate, SemanticsMode};
    use std::sync::Arc;

    fn compile(src: &str) -> gdatalog_lang::CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, SemanticsMode::Grohe).unwrap()
    }

    #[test]
    fn hard_observation_is_an_indicator() {
        let prog = compile("rel Alarm(symbol) input. R(Flip<0.5>) :- true.");
        let obs = compile_observations(&prog, "Alarm(h1).").unwrap();
        let alarm = prog.catalog.require("Alarm").unwrap();
        let mut world = Instance::new();
        assert_eq!(log_weight(&obs, &world).unwrap(), f64::NEG_INFINITY);
        world.insert(alarm, tuple!["h1"]);
        assert_eq!(log_weight(&obs, &world).unwrap(), 0.0);
    }

    #[test]
    fn soft_observation_sums_log_densities_over_matches() {
        let prog = compile("rel Mu(symbol, real) input. H(S, Normal<M, 1.0>) :- Mu(S, M).");
        let obs = compile_observations(&prog, "Normal<M, 1.0> == 0.0 :- Mu(S, M).").unwrap();
        let mu = prog.catalog.require("Mu").unwrap();
        let mut world = Instance::new();
        world.insert(mu, tuple!["a", 0.0]);
        world.insert(mu, tuple!["b", 1.0]);
        let lw = log_weight(&obs, &world).unwrap();
        let ln_norm = |x: f64| -0.5 * (x * x + (2.0 * std::f64::consts::PI).ln());
        assert!((lw - (ln_norm(0.0) + ln_norm(1.0))).abs() < 1e-12);
        // No matches → weight 1 (the likelihood statement is vacuous).
        assert_eq!(log_weight(&obs, &Instance::new()).unwrap(), 0.0);
    }

    #[test]
    fn soft_observation_with_constant_terms_needs_no_body() {
        let prog = compile("R(Flip<0.25>) :- true.");
        let obs = compile_observations(&prog, "Flip<0.25> == 1.").unwrap();
        let w = weight(&obs, &Instance::new()).unwrap();
        assert!((w - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bad_parameters_surface_as_dist_errors() {
        let prog = compile("rel P(real) input. R(Flip<X>) :- P(X).");
        let obs = compile_observations(&prog, "Flip<X> == 1 :- P(X).").unwrap();
        let p = prog.catalog.require("P").unwrap();
        let mut world = Instance::new();
        world.insert(p, tuple![1.5]);
        assert!(matches!(
            log_weight(&obs, &world).unwrap_err(),
            EngineError::Dist(_)
        ));
    }
}
